// Concurrent query engine over immutable snapshots.
//
// The single-writer/many-reader split of core/database.h made the whole
// read path (Annotation, TrimmedIndex, ResumableIndex, the enumerators)
// free of lazy work; this engine is the scheduling layer on top:
//
//  - InstallSnapshot() publishes the Snapshot queries run against; the
//    control thread owns mutation and freezing, workers only ever see
//    sealed snapshots. Installing also invalidates the plan cache's
//    entries from older generations.
//  - Prepare() resolves a query's prepared structure (Annotation +
//    ResumableIndex) through the shared PlanCache (engine/plan_cache.h):
//    repeated (automaton, source, target) shapes hit the cached
//    structure with zero annotate/trim work; misses build once —
//    concurrent misses on one key build once total (single-flight) —
//    and the result is shared (read-only) by every session and worker.
//  - PrepareBatch() prepares one query from MANY sources via a single
//    block-replicated multi-source product BFS (AnnotateMultiSource),
//    so the per-source plans share one annotate run's work.
//  - PrepareRegex() goes in at the source level: parse, canonicalize
//    (regex/canonical.h), pick Thompson vs Glushkov per query from the
//    E9 size heuristic (automaton/frontend.h), then Prepare — so
//    textually different but equivalent patterns hit one cache entry.
//  - OpenSession()/Pump() run enumeration in batches on the worker
//    pool. A session is a *parked memoryless cursor*: between pumps the
//    engine stores only (prepared query, last answer) — Theorem 18's
//    SeekAfter recomputes the position from the last answer alone, so a
//    session can resume on ANY worker thread, not just the one that
//    produced the previous batch.
//  - Installing a new snapshot retires the sessions (and prepared
//    queries) pinned to an older generation: their next pump returns
//    PumpStatus::kRetired without touching the stale index — the loud
//    generation assert stays as the misuse backstop, the engine's
//    version check is the graceful path.
//  - Stats() exposes the cache and scheduling counters (hits, misses,
//    evictions, single-flight waits, session retirements, front-end
//    choices) for tests and benchmarks to assert on.
//
// Workers keep a small per-thread LRU cache of ResumableEnumerators
// keyed by prepared query (EngineOptions::worker_cache_entries), so
// steady-state pumping over the hot query set allocates nothing: a
// fresh session Rewind()s the cached enumerator, a parked one
// SeekAfter()s. Sessions are memoryless, so an evicted enumerator costs
// only a rebuild on the next pump, never a wrong resume.
//
// Thread-safety: every public method is safe to call from any thread.
// The Database itself must only be mutated while no Prepare/Pump runs
// against its current snapshot (mutate, Freeze(), InstallSnapshot() is
// the intended sequence, all on the control thread).

#ifndef DSW_ENGINE_ENGINE_H_
#define DSW_ENGINE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "automaton/frontend.h"
#include "core/annotate.h"
#include "core/database.h"
#include "core/nfa.h"
#include "core/resumable_index.h"
#include "core/walk.h"
#include "engine/plan_cache.h"

namespace dsw {

using QueryId = uint32_t;
using SessionId = uint32_t;

enum class PumpStatus : uint8_t {
  kOk,         // batch filled; more answers may remain
  kExhausted,  // enumeration complete (this batch may still hold walks)
  kRetired,    // pinned to a retired snapshot generation; no walks
  kBusy,       // a pump for this session is already in flight
};

struct PumpResult {
  PumpStatus status = PumpStatus::kOk;
  std::vector<Walk> walks;
};

struct EngineOptions {
  uint32_t num_threads = 1;
  /// Plan cache byte budget (approximate, PreparedQuery::ApproxBytes).
  /// 0 disables cross-query caching: every Prepare builds from scratch
  /// — the benchmark's cold arm.
  size_t plan_cache_bytes = size_t{64} << 20;
  /// Per-worker enumerator LRU capacity (clamped to >= 1). Bounds the
  /// per-thread memory across distinct prepared queries; evicted
  /// enumerators are rebuilt on demand (sessions are memoryless).
  uint32_t worker_cache_entries = 8;
  /// When true (the default), InstallSnapshot upgrades same-database
  /// plan-cache entries across an insert-only delta by delta repair
  /// (core/delta_annotate.h) instead of dropping them, and parked
  /// sessions whose enumeration order survived (lambda unchanged)
  /// resume via SeekAfter rather than being retired. False restores the
  /// drop-everything behavior — the bench's comparison arm and the
  /// kill-switch if a repair bug is ever suspected in production.
  bool incremental_install = true;
};

/// Observability counters; a consistent point-in-time copy via Stats().
struct EngineStats {
  PlanCacheStats plan_cache;
  uint64_t sessions_retired = 0;        // pumps rejected on stale snapshots
  uint64_t plans_upgraded = 0;          // plans delta-repaired at install
  uint64_t sessions_upgraded = 0;       // parked sessions that survived one
  uint64_t worker_cache_evictions = 0;  // enumerators dropped by the LRU cap
  uint64_t frontend_thompson = 0;       // PrepareRegex picks, per front-end
  uint64_t frontend_glushkov = 0;
  // Execution tier of each resolved Prepare/PrepareBatch plan
  // (core/query_traits.h) — cache hits count too, so the three sum to
  // the number of plans handed out, not the number built.
  uint64_t tier_simple = 0;
  uint64_t tier_single_word = 0;
  uint64_t tier_general = 0;
};

/// Status-or result of PrepareRegex.
struct PrepareRegexResult {
  bool ok = false;
  QueryId id = 0;
  Frontend frontend = Frontend::kThompson;
  std::string error;  // parse failure; set iff !ok
};

class QueryEngine {
 public:
  explicit QueryEngine(const EngineOptions& options);
  /// Starts \p num_threads workers (>= 1 enforced); defaults otherwise.
  explicit QueryEngine(uint32_t num_threads)
      : QueryEngine(EngineOptions{.num_threads = num_threads}) {}
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Publishes the snapshot subsequent Prepare() calls build against,
  /// and invalidates plan cache entries of any other (db, generation).
  /// Sessions and prepared queries of any older install are retired:
  /// their next pump returns PumpStatus::kRetired.
  ///
  /// Incremental path (EngineOptions::incremental_install): when the new
  /// snapshot is a later generation of the SAME database and its delta
  /// against the previous install is a known insert-only suffix
  /// (Snapshot::DeltaFrom), the previous generation's plan-cache entries
  /// are *upgraded* — annotation repaired by the bounded re-relaxation
  /// wave, trimmed/B-list structure patched, queues re-laid — and
  /// re-inserted under the new generation's keys instead of dropped.
  /// Prepared queries and sessions are re-pointed at the upgraded plans;
  /// a parked session survives when its plan's enumeration order is an
  /// anchor across the delta (lambda unchanged: old answers keep their
  /// relative order, so one SeekAfter on the parked walk resumes the
  /// correct suffix of the NEW answer order). Plans whose lambda shrank
  /// still upgrade — new sessions enumerate the new order — but their
  /// parked sessions retire lazily as before. Repairs run on the calling
  /// (control) thread.
  void InstallSnapshot(Snapshot snap);

  /// Resolves the prepared structure for (query, source, target)
  /// against the installed snapshot through the plan cache: a warm hit
  /// returns the shared structure with no annotate/trim work; a miss
  /// builds once on the calling thread (concurrent misses on the same
  /// key wait for the one build). Requires a snapshot to be installed.
  /// \p opts opts a cold build into the sharded preprocessing path
  /// (AnnotateOptions::num_shards > 1); the index is identical either
  /// way, so cached entries are shared across opts values.
  QueryId Prepare(const Nfa& query, uint32_t source, uint32_t target,
                  const AnnotateOptions& opts = {});

  /// Prepares (query, s, target) for every s in \p sources. Cached
  /// sources hit; all missing sources are built by ONE block-replicated
  /// multi-source product BFS (core/annotate.h AnnotateMultiSource) and
  /// sliced into per-source prepared structures bit-identical to what
  /// per-source Prepare would build. Returns one QueryId per source, in
  /// order (duplicates allowed; they share the cache entry).
  std::vector<QueryId> PrepareBatch(const Nfa& query,
                                    const std::vector<uint32_t>& sources,
                                    uint32_t target,
                                    const AnnotateOptions& opts = {});

  /// Source-level Prepare: parses \p pattern, canonicalizes, picks the
  /// front-end per the E9 size heuristic (recorded in Stats()), and
  /// resolves through the cache. Labels are interned via \p dict —
  /// normally the engine database's mutable_dict(); interning does not
  /// perturb the adjacency or the generation. Parse failures are
  /// reported in the result, not thrown.
  PrepareRegexResult PrepareRegex(std::string_view pattern,
                                  LabelDictionary* dict, uint32_t source,
                                  uint32_t target,
                                  const AnnotateOptions& opts = {});

  /// Opens a parked cursor over a prepared query. Cheap; many sessions
  /// may share one prepared query.
  SessionId OpenSession(QueryId query);

  /// Schedules up to \p max_answers further answers for \p session on
  /// the worker pool. At most one pump per session may be in flight
  /// (kBusy otherwise). The future's PumpResult holds the batch; the
  /// session re-parks on its last answer when the batch fills.
  std::future<PumpResult> PumpAsync(SessionId session, uint32_t max_answers);

  /// Blocking convenience wrapper around PumpAsync.
  PumpResult Pump(SessionId session, uint32_t max_answers);

  /// Pumps \p session in batches of \p batch until exhausted (or
  /// retired); returns everything collected with the final status.
  PumpResult Drain(SessionId session, uint32_t batch = 64);

  /// Nanoseconds from pump enqueue to the batch's first answer being
  /// available, one sample per non-empty batch — the engine's
  /// first-answer latency distribution (p99 is the bench headline).
  std::vector<int64_t> FirstAnswerLatenciesNs() const;

  /// Point-in-time observability snapshot (plan cache + scheduling).
  EngineStats Stats() const;

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

 private:
  enum class SessionState : uint8_t { kParked, kQueued, kExhausted, kRetired };

  struct Session {
    std::shared_ptr<const PreparedQuery> query;
    Walk last;                  // the parked cursor: last emitted answer
    bool started = false;       // false until the first batch ran
    SessionState state = SessionState::kParked;
  };

  struct Job {
    SessionId session = 0;
    uint32_t max_answers = 0;
    std::promise<PumpResult> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  // Per-worker bounded enumerator LRU (defined in engine.cc): one
  // ResumableEnumerator per hot prepared query per worker, reused
  // across batches so steady-state pumping performs no allocation.
  struct WorkerCache;

  // Registers a cache-resolved prepared query in the session-facing
  // query table; returns its QueryId.
  QueryId RegisterLocked(std::shared_ptr<const PreparedQuery> prepared);

  void WorkerLoop();
  // Runs one batch against the prepared query, entirely outside the
  // engine lock (the prepared structures are read-only). Writes the
  // enqueue-to-first-answer latency into *first_answer_ns (-1 when the
  // batch produced nothing).
  PumpResult RunBatch(WorkerCache& cache,
                      const std::shared_ptr<const PreparedQuery>& query,
                      const Walk& last, bool started, uint32_t max_answers,
                      std::chrono::steady_clock::time_point enqueued,
                      int64_t* first_answer_ns);

  const uint32_t worker_cache_entries_;
  const bool incremental_install_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::deque<Job> queue_;

  // The installed snapshot and its identity; (db, generation) pairs are
  // compared so generations of different Database objects never alias.
  Snapshot snapshot_;
  const Database* installed_db_ = nullptr;
  uint64_t installed_gen_ = 0;

  std::vector<std::shared_ptr<const PreparedQuery>> queries_;
  std::vector<Session> sessions_;
  std::vector<int64_t> first_answer_ns_;
  uint64_t sessions_retired_ = 0;   // guarded by mu_
  uint64_t plans_upgraded_ = 0;     // guarded by mu_
  uint64_t sessions_upgraded_ = 0;  // guarded by mu_

  // Own lock discipline: never held together with mu_ (Prepare resolves
  // through the cache before taking mu_; InstallSnapshot invalidates
  // after releasing it).
  PlanCache cache_;

  // Lock-free counters: bumped outside mu_ (workers, PrepareRegex).
  std::atomic<uint64_t> worker_cache_evictions_{0};
  std::atomic<uint64_t> frontend_thompson_{0};
  std::atomic<uint64_t> frontend_glushkov_{0};
  std::atomic<uint64_t> tier_simple_{0};
  std::atomic<uint64_t> tier_single_word_{0};
  std::atomic<uint64_t> tier_general_{0};

  void BumpTier(ExecTier tier);

  std::vector<std::thread> workers_;
};

}  // namespace dsw

#endif  // DSW_ENGINE_ENGINE_H_
