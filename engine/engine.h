// Concurrent query engine over immutable snapshots.
//
// The single-writer/many-reader split of core/database.h made the whole
// read path (Annotation, TrimmedIndex, ResumableIndex, the enumerators)
// free of lazy work; this engine is the scheduling layer on top:
//
//  - InstallSnapshot() publishes the Snapshot queries run against; the
//    control thread owns mutation and freezing, workers only ever see
//    sealed snapshots.
//  - Prepare() builds a query's Annotation + ResumableIndex exactly once
//    against the installed snapshot; the prepared structure is shared
//    (read-only) by every session and every worker thread.
//  - OpenSession()/Pump() run enumeration in batches on the worker
//    pool. A session is a *parked memoryless cursor*: between pumps the
//    engine stores only (prepared query, last answer) — Theorem 18's
//    SeekAfter recomputes the position from the last answer alone, so a
//    session can resume on ANY worker thread, not just the one that
//    produced the previous batch.
//  - Installing a new snapshot retires the sessions (and prepared
//    queries) pinned to an older generation: their next pump returns
//    PumpStatus::kRetired without touching the stale index — the loud
//    generation assert stays as the misuse backstop, the engine's
//    version check is the graceful path.
//
// Workers keep a small per-thread cache of ResumableEnumerators keyed by
// prepared query, so steady-state pumping allocates nothing: a fresh
// session Rewind()s the cached enumerator, a parked one SeekAfter()s.
//
// Thread-safety: every public method is safe to call from any thread.
// The Database itself must only be mutated while no Prepare/Pump runs
// against its current snapshot (mutate, Freeze(), InstallSnapshot() is
// the intended sequence, all on the control thread).

#ifndef DSW_ENGINE_ENGINE_H_
#define DSW_ENGINE_ENGINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/annotate.h"
#include "core/database.h"
#include "core/nfa.h"
#include "core/resumable_index.h"
#include "core/walk.h"

namespace dsw {

using QueryId = uint32_t;
using SessionId = uint32_t;

enum class PumpStatus : uint8_t {
  kOk,         // batch filled; more answers may remain
  kExhausted,  // enumeration complete (this batch may still hold walks)
  kRetired,    // pinned to a retired snapshot generation; no walks
  kBusy,       // a pump for this session is already in flight
};

struct PumpResult {
  PumpStatus status = PumpStatus::kOk;
  std::vector<Walk> walks;
};

class QueryEngine {
 public:
  /// Starts \p num_threads workers (>= 1 enforced).
  explicit QueryEngine(uint32_t num_threads);
  ~QueryEngine();

  QueryEngine(const QueryEngine&) = delete;
  QueryEngine& operator=(const QueryEngine&) = delete;

  /// Publishes the snapshot subsequent Prepare() calls build against.
  /// Sessions and prepared queries of any older install are retired:
  /// their next pump returns PumpStatus::kRetired.
  void InstallSnapshot(Snapshot snap);

  /// Builds Annotation + ResumableIndex for (query, source, target)
  /// against the installed snapshot, once, on the calling thread.
  /// Requires a snapshot to be installed. \p opts opts the build into
  /// the sharded preprocessing path (AnnotateOptions::num_shards > 1);
  /// the resulting index is identical either way.
  QueryId Prepare(const Nfa& query, uint32_t source, uint32_t target,
                  const AnnotateOptions& opts = {});

  /// Opens a parked cursor over a prepared query. Cheap; many sessions
  /// may share one prepared query.
  SessionId OpenSession(QueryId query);

  /// Schedules up to \p max_answers further answers for \p session on
  /// the worker pool. At most one pump per session may be in flight
  /// (kBusy otherwise). The future's PumpResult holds the batch; the
  /// session re-parks on its last answer when the batch fills.
  std::future<PumpResult> PumpAsync(SessionId session, uint32_t max_answers);

  /// Blocking convenience wrapper around PumpAsync.
  PumpResult Pump(SessionId session, uint32_t max_answers);

  /// Pumps \p session in batches of \p batch until exhausted (or
  /// retired); returns everything collected with the final status.
  PumpResult Drain(SessionId session, uint32_t batch = 64);

  /// Nanoseconds from pump enqueue to the batch's first answer being
  /// available, one sample per non-empty batch — the engine's
  /// first-answer latency distribution (p99 is the bench headline).
  std::vector<int64_t> FirstAnswerLatenciesNs() const;

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

 private:
  // Everything a query needs at run time, built once and then strictly
  // read-only — the snapshot copy keeps the frozen LabelIndex alive and
  // carries the generation this query is pinned to.
  struct PreparedQuery {
    PreparedQuery(Snapshot s, const Nfa& query, uint32_t src, uint32_t tgt,
                  const AnnotateOptions& opts)
        : snap(std::move(s)),
          ann(Annotate(snap, query, src, tgt, opts)),
          index(snap, ann, opts),
          source(src),
          target(tgt) {}
    Snapshot snap;
    Annotation ann;
    ResumableIndex index;
    uint32_t source;
    uint32_t target;
  };

  enum class SessionState : uint8_t { kParked, kQueued, kExhausted, kRetired };

  struct Session {
    std::shared_ptr<const PreparedQuery> query;
    Walk last;                  // the parked cursor: last emitted answer
    bool started = false;       // false until the first batch ran
    SessionState state = SessionState::kParked;
  };

  struct Job {
    SessionId session = 0;
    uint32_t max_answers = 0;
    std::promise<PumpResult> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  // Per-worker enumerator cache (defined in engine.cc): one
  // ResumableEnumerator per prepared query per worker, reused across
  // batches so steady-state pumping performs no allocation.
  struct WorkerCache;

  void WorkerLoop();
  // Runs one batch against the prepared query, entirely outside the
  // engine lock (the prepared structures are read-only). Writes the
  // enqueue-to-first-answer latency into *first_answer_ns (-1 when the
  // batch produced nothing).
  PumpResult RunBatch(WorkerCache& cache,
                      const std::shared_ptr<const PreparedQuery>& query,
                      const Walk& last, bool started, uint32_t max_answers,
                      std::chrono::steady_clock::time_point enqueued,
                      int64_t* first_answer_ns);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::deque<Job> queue_;

  // The installed snapshot and its identity; (db, generation) pairs are
  // compared so generations of different Database objects never alias.
  Snapshot snapshot_;
  const Database* installed_db_ = nullptr;
  uint64_t installed_gen_ = 0;

  std::vector<std::shared_ptr<const PreparedQuery>> queries_;
  std::vector<Session> sessions_;
  std::vector<int64_t> first_answer_ns_;

  std::vector<std::thread> workers_;
};

}  // namespace dsw

#endif  // DSW_ENGINE_ENGINE_H_
