#include "engine/plan_cache.h"

#include <cassert>

namespace dsw {

// ---------------------------------------------------------------- locked
// helpers. The building-marker lifecycle: ClaimLocked inserts (or
// repurposes) a valueless entry stamped with a fresh ticket; the claim
// is later resolved by exactly one of FillLocked (success — the ticket
// still matches, so the value lands and joins the LRU) or
// EraseClaimLocked (failure). A claim whose entry was erased or
// re-claimed in the meantime (Invalidate does both) resolves to a
// no-op: the builder's value goes to its callers but not the cache.

uint64_t PlanCache::ClaimLocked(Map::iterator it) {
  uint64_t ticket = ++next_ticket_;
  it->second.value = nullptr;
  it->second.bytes = 0;
  it->second.ticket = ticket;
  ++stats_.misses;
  return ticket;
}

void PlanCache::FillLocked(const PlanKey& key, uint64_t ticket,
                           const Value& value) {
  auto it = map_.find(key);
  if (it == map_.end() || !it->second.building() ||
      it->second.ticket != ticket)
    return;  // claim was invalidated mid-build; value stays uncached
  Entry& e = it->second;
  e.value = value;
  e.bytes = value->ApproxBytes();
  lru_.push_front(&it->first);
  e.lru_it = lru_.begin();
  stats_.bytes_used += e.bytes;
  ++stats_.entries;
  EvictOverBudgetLocked(&it->first);
}

void PlanCache::EraseClaimLocked(const PlanKey& key, uint64_t ticket) {
  auto it = map_.find(key);
  if (it != map_.end() && it->second.building() &&
      it->second.ticket == ticket)
    map_.erase(it);
}

void PlanCache::EvictOverBudgetLocked(const PlanKey* protect) {
  while (stats_.bytes_used > byte_budget_ && !lru_.empty()) {
    const PlanKey* victim = lru_.back();
    if (victim == protect) break;  // an oversized entry lives alone
    auto it = map_.find(*victim);
    assert(it != map_.end() && !it->second.building());
    stats_.bytes_used -= it->second.bytes;
    --stats_.entries;
    ++stats_.evictions;
    lru_.pop_back();
    map_.erase(it);
  }
}

// ------------------------------------------------------------ public API

PlanCache::Value PlanCache::GetOrBuild(const PlanKey& key,
                                       const Builder& build) {
  if (byte_budget_ == 0) {  // caching disabled: every call builds
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.misses;
    }
    return build();
  }

  uint64_t ticket;
  {
    std::unique_lock<std::mutex> lock(mu_);
    bool waited = false;
    for (;;) {
      auto it = map_.find(key);
      if (it == map_.end()) {
        ticket = ClaimLocked(map_.emplace(key, Entry{}).first);
        break;
      }
      if (!it->second.building()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);  // touch
        return it->second.value;
      }
      if (!waited) {
        waited = true;
        ++stats_.single_flight_waits;
      }
      cv_.wait(lock);  // wake on fill, erase, or invalidate; re-check
    }
  }

  Value value;
  try {
    value = build();
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      EraseClaimLocked(key, ticket);
    }
    cv_.notify_all();
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    FillLocked(key, ticket, value);
  }
  cv_.notify_all();
  return value;
}

std::vector<PlanCache::Value> PlanCache::GetOrBuildBatch(
    const std::vector<PlanKey>& keys, const BatchBuilder& build_many) {
  std::vector<Value> out(keys.size());
  if (keys.empty()) return out;

  if (byte_budget_ == 0) {  // caching disabled: one batch build of all
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.misses += keys.size();
    }
    std::vector<size_t> all(keys.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = i;
    return build_many(all);
  }

  // Phase 1 (one lock hold): resolve hits, claim every absent key, and
  // bucket the rest. Duplicate keys within the batch alias their first
  // occurrence so we never wait on our own claim.
  std::vector<size_t> claimed;           // indices this thread builds
  std::vector<uint64_t> tickets;         // parallel to `claimed`
  std::vector<size_t> waiting;           // keys being built elsewhere
  std::vector<std::pair<size_t, size_t>> aliases;  // (dup, first occurrence)
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Dedup within the batch: hash/compare through the pointed-to key.
    struct DerefHash {
      size_t operator()(const PlanKey* k) const { return PlanKeyHash{}(*k); }
    };
    struct DerefEq {
      bool operator()(const PlanKey* a, const PlanKey* b) const {
        return *a == *b;
      }
    };
    std::unordered_map<const PlanKey*, size_t, DerefHash, DerefEq> seen;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (auto dup = seen.find(&keys[i]); dup != seen.end()) {
        aliases.emplace_back(i, dup->second);
        continue;
      }
      seen.emplace(&keys[i], i);
      auto it = map_.find(keys[i]);
      if (it == map_.end()) {
        tickets.push_back(ClaimLocked(map_.emplace(keys[i], Entry{}).first));
        claimed.push_back(i);
      } else if (!it->second.building()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        out[i] = it->second.value;
      } else {
        ++stats_.single_flight_waits;
        waiting.push_back(i);
      }
    }
  }

  // Phase 2: one build call covers every claimed key — the engine runs
  // a single multi-source annotate here.
  if (!claimed.empty()) {
    std::vector<Value> built;
    try {
      built = build_many(claimed);
      assert(built.size() == claimed.size() &&
             "BatchBuilder returned the wrong number of values");
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        for (size_t c = 0; c < claimed.size(); ++c)
          EraseClaimLocked(keys[claimed[c]], tickets[c]);
      }
      cv_.notify_all();
      throw;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t c = 0; c < claimed.size(); ++c) {
        out[claimed[c]] = built[c];
        FillLocked(keys[claimed[c]], tickets[c], built[c]);
      }
    }
    cv_.notify_all();
  }

  // Phase 3: collect the keys other threads were building. A key that
  // vanished mid-wait (failed or invalidated claim) is re-claimed and
  // built individually.
  for (size_t i : waiting) {
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t ticket = 0;
    bool claimed_here = false;
    for (;;) {
      auto it = map_.find(keys[i]);
      if (it == map_.end()) {
        ticket = ClaimLocked(map_.emplace(keys[i], Entry{}).first);
        claimed_here = true;
        break;
      }
      if (!it->second.building()) {
        ++stats_.hits;
        lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        out[i] = it->second.value;
        break;
      }
      cv_.wait(lock);
    }
    if (!claimed_here) continue;
    lock.unlock();
    Value value;
    try {
      std::vector<Value> built = build_many({i});
      assert(built.size() == 1);
      value = std::move(built.front());
    } catch (...) {
      {
        std::lock_guard<std::mutex> relock(mu_);
        EraseClaimLocked(keys[i], ticket);
      }
      cv_.notify_all();
      throw;
    }
    out[i] = value;
    {
      std::lock_guard<std::mutex> relock(mu_);
      FillLocked(keys[i], ticket, value);
    }
    cv_.notify_all();
  }

  for (const auto& [dup, first] : aliases) out[dup] = out[first];
  return out;
}

std::vector<std::pair<PlanKey, PlanCache::Value>> PlanCache::TakeGeneration(
    const Database* db, uint64_t generation) {
  std::vector<std::pair<PlanKey, Value>> out;
  if (byte_budget_ == 0) return out;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.db != db || it->first.generation != generation ||
        it->second.building()) {
      ++it;
      continue;
    }
    stats_.bytes_used -= it->second.bytes;
    --stats_.entries;
    lru_.erase(it->second.lru_it);
    out.emplace_back(it->first, std::move(it->second.value));
    it = map_.erase(it);
  }
  return out;
}

void PlanCache::InsertUpgraded(PlanKey key, Value value) {
  if (byte_budget_ == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      it = map_.emplace(std::move(key), Entry{}).first;
    } else if (!it->second.building()) {
      return;  // a concurrent Prepare already built this key; keep it
    }
    // Filling a building claim in place resolves it: the claimant's
    // eventual FillLocked sees a completed entry and no-ops, exactly as
    // if it had been invalidated — but its waiters are released now,
    // by the upgraded value.
    Entry& e = it->second;
    e.value = std::move(value);
    e.bytes = e.value->ApproxBytes();
    lru_.push_front(&it->first);
    e.lru_it = lru_.begin();
    stats_.bytes_used += e.bytes;
    ++stats_.entries;
    ++stats_.upgrades;
    EvictOverBudgetLocked(&it->first);
  }
  cv_.notify_all();
}

void PlanCache::Invalidate(const Database* db, uint64_t generation) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = map_.begin(); it != map_.end();) {
      const PlanKey& k = it->first;
      if (k.db == db && k.generation == generation) {
        ++it;
        continue;
      }
      if (!it->second.building()) {
        stats_.bytes_used -= it->second.bytes;
        --stats_.entries;
        lru_.erase(it->second.lru_it);
      }
      // Erasing a building entry orphans its claim: the builder's
      // FillLocked ticket check turns into a no-op, and any waiters
      // wake below, find the key vacant, and re-claim against whatever
      // snapshot *they* hold.
      ++stats_.invalidations;
      it = map_.erase(it);
    }
  }
  cv_.notify_all();
}

PlanCacheStats PlanCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dsw
