// Cross-query plan cache: prepared structures keyed by what they are a
// pure function of. The paper's preprocessing/enumeration split makes a
// PreparedQuery (Annotation + ResumableIndex) fully determined by
// (graph snapshot, automaton, source, target) — nothing else — so it is
// safely shareable across every client that asks the same shape, and
// "millions of users, a handful of query shapes" stops paying the
// O(|D| x |A|) annotate + trim cost per Prepare.
//
// Key design: the cache key carries the snapshot identity as a
// (Database*, generation) pair — generations of different Database
// objects never alias, mirroring the engine's session retirement check —
// plus the *canonical automaton serialization* from
// automaton/canonical_hash.h and the (source, target) endpoints. The
// serialization's FNV hash buckets the entry; equality compares the
// bytes exactly, so a 64-bit hash collision costs one string compare,
// never a wrong plan. Textually different but equivalent regexes reach
// the same bytes through regex/canonical.h + the deterministic
// front-end, and therefore the same entry. (The ISSUE names the key as
// (generation, automaton hash, source); target joins them because the
// annotation prunes by target — two targets genuinely are two plans.)
//
// Concurrency: single-flight build dedup. The first thread to miss on a
// key claims it (a "building" marker entry) and builds OUTSIDE the
// cache lock; concurrent requests for the same key block on a condvar
// until the value lands, instead of burning cores on identical builds.
// Requests for other keys proceed unhindered. If a claim dies (builder
// exception) or is invalidated mid-build, waiters wake, find the key
// vacant, and re-claim — no request is ever lost or served a stale
// marker.
//
// Budget: completed entries sit on an LRU list charged with
// PreparedQuery::ApproxBytes(); inserting past the byte budget evicts
// from the cold end. Building markers and the entry being inserted are
// never evicted. Eviction only drops the cache's reference — sessions
// holding the shared_ptr keep their prepared structure alive for as
// long as they need it. A byte_budget of 0 disables caching entirely
// (every call builds; the bench's cold arm), and a single entry larger
// than the whole budget is kept alone rather than thrashed.
//
// Invalidation: InstallSnapshot forwards the new (db, generation) to
// Invalidate(), which drops every entry built against anything else.
// In-flight builds for dropped keys complete, hand their value to their
// waiting callers, and are discarded rather than cached.

#ifndef DSW_ENGINE_PLAN_CACHE_H_
#define DSW_ENGINE_PLAN_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/annotate.h"
#include "core/database.h"
#include "core/nfa.h"
#include "core/query_traits.h"
#include "core/resumable_index.h"

namespace dsw {

/// Everything a query needs at run time, built once and then strictly
/// read-only — the snapshot copy keeps the frozen LabelIndex alive and
/// carries the generation this query is pinned to. Shared by the plan
/// cache, the engine's query table, and every session.
struct PreparedQuery {
  /// Builds from scratch: one single-source annotate + trim. The
  /// execution tier (core/query_traits.h) is classified here, at
  /// prepare time — the cached plan carries it for the engine's
  /// per-tier stats and for tooling; the kernels themselves dispatch on
  /// words-per-set independently, so the label is observability, not
  /// control flow.
  PreparedQuery(Snapshot s, const Nfa& query, uint32_t src, uint32_t tgt,
                const AnnotateOptions& opts)
      : snap(std::move(s)),
        ann(Annotate(snap, query, src, tgt, opts)),
        index(snap, ann, opts),
        source(src),
        target(tgt),
        tier(ClassifyQuery(snap, query).tier) {}

  /// Builds on a ready-made annotation — the multi-source prefix-sharing
  /// path hands each source its MultiSourceAnnotation::Slice here, so
  /// one product BFS serves many prepared views. \p tier is classified
  /// once per batch by the caller (it depends only on (snap, query),
  /// not the source).
  PreparedQuery(Snapshot s, Annotation a, const AnnotateOptions& opts,
                ExecTier query_tier = ExecTier::kGeneral)
      : snap(std::move(s)),
        ann(std::move(a)),
        index(snap, ann, opts),
        source(ann.source),
        target(ann.target),
        tier(query_tier) {}

  /// Builds on repaired structures — the incremental InstallSnapshot
  /// path: \p a and \p trimmed were patched by core/delta_annotate
  /// against an insert-only edge delta, so only the resumable queue
  /// layout is rebuilt here; no product BFS, no backward sweep. \p tier
  /// is the upgraded plan's tier, re-derived by the caller (the delta
  /// may have added a second label, demoting a kSimple plan).
  PreparedQuery(Snapshot s, Annotation a, TrimmedIndex trimmed,
                ExecTier query_tier = ExecTier::kGeneral)
      : snap(std::move(s)),
        ann(std::move(a)),
        index(snap, ann, std::move(trimmed)),
        source(ann.source),
        target(ann.target),
        tier(query_tier) {}

  Snapshot snap;
  Annotation ann;
  ResumableIndex index;
  uint32_t source;
  uint32_t target;
  ExecTier tier = ExecTier::kGeneral;

  /// Heap footprint estimate — the plan cache's byte-budget charge.
  size_t ApproxBytes() const {
    return sizeof(PreparedQuery) + ann.ApproxBytes() + index.ApproxBytes();
  }
};

struct PlanKey {
  const Database* db = nullptr;
  uint64_t generation = 0;
  uint64_t automaton_hash = 0;   // bucketing only
  std::string automaton_bytes;   // canonical serialization; equality key
  uint32_t source = 0;
  uint32_t target = 0;

  friend bool operator==(const PlanKey& a, const PlanKey& b) {
    return a.db == b.db && a.generation == b.generation &&
           a.automaton_hash == b.automaton_hash && a.source == b.source &&
           a.target == b.target && a.automaton_bytes == b.automaton_bytes;
  }
};

struct PlanKeyHash {
  size_t operator()(const PlanKey& k) const {
    // The canonical bytes are already FNV-hashed; fold in the rest.
    uint64_t h = k.automaton_hash;
    auto mix = [&h](uint64_t v) {
      h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    };
    mix(reinterpret_cast<uintptr_t>(k.db));
    mix(k.generation);
    mix((static_cast<uint64_t>(k.source) << 32) | k.target);
    return static_cast<size_t>(h);
  }
};

struct PlanCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;                // each miss is one build claimed
  uint64_t evictions = 0;             // budget-driven LRU drops
  uint64_t invalidations = 0;         // entries dropped by Invalidate()
  uint64_t single_flight_waits = 0;   // calls that blocked on a peer build
  uint64_t upgrades = 0;              // entries re-keyed by InsertUpgraded
  size_t bytes_used = 0;
  size_t entries = 0;                 // completed entries resident
};

class PlanCache {
 public:
  using Value = std::shared_ptr<const PreparedQuery>;
  using Builder = std::function<Value()>;
  /// Batch builder: receives the indices (into the batch's key vector)
  /// this thread must build, returns their values in the same order.
  using BatchBuilder =
      std::function<std::vector<Value>(const std::vector<size_t>&)>;

  /// \p byte_budget bounds the resident completed entries (approximate,
  /// see header comment); 0 disables caching.
  explicit PlanCache(size_t byte_budget) : byte_budget_(byte_budget) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the cached value for \p key, or claims the key and calls
  /// \p build (outside the lock) to fill it. Concurrent calls for the
  /// same key build once; the rest wait. \p build must not re-enter the
  /// cache. Never returns null (assuming \p build doesn't).
  Value GetOrBuild(const PlanKey& key, const Builder& build);

  /// Batch variant for multi-source prefix sharing: resolves hits,
  /// claims every absent key, and calls \p build_many ONCE with the
  /// claimed indices — so one multi-source annotate run can serve all
  /// of them. Keys being built by other threads are waited on; a waited
  /// key that vanishes (failed or invalidated build) is re-claimed and
  /// built via build_many({i}). Duplicate keys within the batch
  /// resolve to one build. Returns one value per key, in order.
  std::vector<Value> GetOrBuildBatch(const std::vector<PlanKey>& keys,
                                     const BatchBuilder& build_many);

  /// Drops every entry not built against (\p db, \p generation) — the
  /// InstallSnapshot hook. In-flight builds for dropped keys complete
  /// for their callers but are not cached.
  void Invalidate(const Database* db, uint64_t generation);

  /// Removes and returns every *completed* entry built against
  /// (\p db, \p generation) — the incremental InstallSnapshot path
  /// extracts the old generation's plans for delta repair instead of
  /// letting Invalidate drop them. Building markers stay (their claims
  /// resolve against Invalidate as usual); extraction is not counted as
  /// invalidation. Empty in pass-through (byte_budget 0) mode.
  std::vector<std::pair<PlanKey, Value>> TakeGeneration(const Database* db,
                                                        uint64_t generation);

  /// Inserts a repaired plan under its re-keyed (new-generation) key.
  /// A completed entry already present wins (a concurrent Prepare beat
  /// the upgrade; keep the entry hits are being served from); a building
  /// claim is resolved in place — the claimant's own fill then no-ops —
  /// so its waiters are released by the upgraded value. Dropped in
  /// pass-through mode.
  void InsertUpgraded(PlanKey key, Value value);

  PlanCacheStats Stats() const;

 private:
  struct Entry {
    Value value;                       // null while building
    size_t bytes = 0;
    uint64_t ticket = 0;               // claim identity while building
    std::list<const PlanKey*>::iterator lru_it;  // valid iff value
    bool building() const { return value == nullptr; }
  };
  using Map = std::unordered_map<PlanKey, Entry, PlanKeyHash>;

  // All private helpers require mu_ held.
  uint64_t ClaimLocked(Map::iterator it);
  void FillLocked(const PlanKey& key, uint64_t ticket, const Value& value);
  void EraseClaimLocked(const PlanKey& key, uint64_t ticket);
  void EvictOverBudgetLocked(const PlanKey* protect);

  const size_t byte_budget_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Map map_;
  std::list<const PlanKey*> lru_;  // front = hottest; completed entries only
  uint64_t next_ticket_ = 0;
  PlanCacheStats stats_;
};

}  // namespace dsw

#endif  // DSW_ENGINE_PLAN_CACHE_H_
