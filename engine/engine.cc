#include "engine/engine.h"

#include <algorithm>
#include <cassert>
#include <list>
#include <unordered_map>
#include <utility>

#include "automaton/canonical_hash.h"
#include "core/delta_annotate.h"
#include "core/resumable_enumerator.h"
#include "regex/regex_parser.h"

namespace dsw {

// Bounded per-worker enumerator LRU. Holds the shared_ptr alongside the
// enumerator: a cached enumerator must never outlive its prepared
// query, even after the engine's own query table dropped it. The cap
// (EngineOptions::worker_cache_entries) keeps a long-lived worker from
// accumulating one enumerator per distinct prepared query within a
// generation; sessions are memoryless, so an eviction costs one rebuild
// on the victim's next pump, never a wrong resume.
struct QueryEngine::WorkerCache {
  struct Entry {
    std::shared_ptr<const PreparedQuery> query;
    std::unique_ptr<ResumableEnumerator> en;
    std::list<const PreparedQuery*>::iterator lru_it;
  };

  WorkerCache(uint32_t capacity, std::atomic<uint64_t>* evictions)
      : capacity(std::max(capacity, 1u)), evictions(evictions) {}

  uint32_t capacity;
  std::atomic<uint64_t>* evictions;
  std::unordered_map<const PreparedQuery*, Entry> entries;
  std::list<const PreparedQuery*> lru;  // front = hottest

  ResumableEnumerator& Get(const std::shared_ptr<const PreparedQuery>& q) {
    auto it = entries.find(q.get());
    if (it != entries.end()) {
      lru.splice(lru.begin(), lru, it->second.lru_it);
      return *it->second.en;
    }
    // Construct BEFORE touching the map: if the constructor throws
    // (e.g. bad_alloc), default-inserting first would leave a poisoned
    // entry — null `en`, dangling `lru_it` — that the next hit on this
    // query dereferences.
    auto en = std::make_unique<ResumableEnumerator>(q->ann, q->index,
                                                    q->source, q->target);
    if (entries.size() >= capacity) {
      entries.erase(lru.back());
      lru.pop_back();
      evictions->fetch_add(1, std::memory_order_relaxed);
    }
    Entry& e = entries[q.get()];
    e.query = q;
    e.en = std::move(en);
    lru.push_front(q.get());
    e.lru_it = lru.begin();
    return *e.en;
  }

  // Retired queries never run again; drop their enumerators so a
  // long-lived engine does not accumulate one per old generation.
  void EvictOtherGenerations(const Database* db, uint64_t gen) {
    for (auto it = entries.begin(); it != entries.end();) {
      const Snapshot& s = it->second.query->snap;
      if (&s.db() != db || s.generation() != gen) {
        lru.erase(it->second.lru_it);
        it = entries.erase(it);
      } else {
        ++it;
      }
    }
  }
};

QueryEngine::QueryEngine(const EngineOptions& options)
    : worker_cache_entries_(std::max(options.worker_cache_entries, 1u)),
      incremental_install_(options.incremental_install),
      cache_(options.plan_cache_bytes) {
  uint32_t num_threads = std::max(options.num_threads, 1u);
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { WorkerLoop(); });
}

QueryEngine::~QueryEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // Fail pending pumps instead of leaving their futures hanging.
  for (Job& job : queue_)
    job.promise.set_value(PumpResult{PumpStatus::kRetired, {}});
}

namespace {

// One plan-cache entry run through the delta-repair pipeline.
// value == nullptr means the plan was dropped (unrepairable: the old
// annotation was unreachable, so it carries no levels to repair — and
// the inserts may well have made it reachable, so a fresh build on the
// next Prepare miss is also the semantically required outcome).
// order_preserved means lambda did not change, so old answers keep
// their relative enumeration order and a parked walk is still a valid
// SeekAfter anchor.
struct RepairedPlan {
  std::shared_ptr<const PreparedQuery> value;
  bool order_preserved = false;
};

RepairedPlan RepairPlan(const Snapshot& snap, const EdgeDelta& delta,
                        const DeltaContext& ctx, const PreparedQuery& old) {
  RepairedPlan out;
  Annotation ann = old.ann;
  AnnotationRepair rep = DeltaAnnotate(snap, delta, &ann);
  if (!rep.ok) return out;
  TrimmedIndex trimmed =
      DeltaTrim(snap, ann, old.index.trimmed(), rep, delta, ctx);
  // The tier carries over, except that inserted edges may have given a
  // kSimple plan's data a second label — recheck and demote (the query
  // half of the classification cannot change, so no promotion exists).
  ExecTier tier = old.tier;
  if (tier == ExecTier::kSimple && !DataSingleLabeled(snap))
    tier = ann.num_states <= 64 ? ExecTier::kSingleWord : ExecTier::kGeneral;
  out.value = std::make_shared<const PreparedQuery>(
      snap, std::move(ann), std::move(trimmed), tier);
  out.order_preserved = !rep.lambda_changed;
  return out;
}

}  // namespace

void QueryEngine::InstallSnapshot(Snapshot snap) {
  assert(static_cast<bool>(snap) && "InstallSnapshot: null snapshot");
  const Database* db = &snap.db();
  const uint64_t gen = snap.generation();
  Snapshot prev;
  {
    std::lock_guard<std::mutex> lock(mu_);
    prev = snapshot_;
    installed_db_ = db;
    installed_gen_ = gen;
    snapshot_ = snap;
    // Sessions pinned to older generations are retired lazily, at their
    // next pump — the (db, generation) compare in the worker is the
    // whole mechanism. The incremental path below re-points the sessions
    // it saves BEFORE they can reach a worker again.
  }

  // Incremental path: when the previous install was an earlier frozen
  // generation of the same database and the delta between the two is a
  // known insert-only suffix, extract the old generation's completed
  // plans for repair instead of letting Invalidate drop them.
  std::vector<std::pair<PlanKey, PlanCache::Value>> old_entries;
  EdgeDelta delta;
  if (incremental_install_ && prev && &prev.db() == db &&
      prev.generation() != gen) {
    delta = snap.DeltaFrom(prev.generation());
    if (delta.known)
      old_entries = cache_.TakeGeneration(db, prev.generation());
  }

  // Plan entries of other generations can never be served again (keys
  // carry the generation); drop them eagerly. Outside mu_ — the cache
  // has its own lock and the two are never held together.
  cache_.Invalidate(db, gen);
  if (old_entries.empty()) return;

  // Repair each extracted plan against the new snapshot and re-insert
  // it under the new generation's key. One reverse CSR serves them all.
  DeltaContext ctx(snap);
  std::unordered_map<const PreparedQuery*,
                     std::shared_ptr<const PreparedQuery>>
      remap;           // old plan -> upgraded plan (all upgrades)
  uint64_t upgraded = 0;
  std::vector<const PreparedQuery*> order_broken;  // lambda changed
  for (auto& [key, old] : old_entries) {
    RepairedPlan repaired = RepairPlan(snap, delta, ctx, *old);
    if (!repaired.value) continue;
    ++upgraded;
    remap.emplace(old.get(), repaired.value);
    if (!repaired.order_preserved) order_broken.push_back(old.get());
    PlanKey new_key = std::move(key);
    new_key.generation = gen;
    cache_.InsertUpgraded(std::move(new_key), std::move(repaired.value));
  }
  if (remap.empty()) return;

  std::lock_guard<std::mutex> lock(mu_);
  plans_upgraded_ += upgraded;
  // Re-point the query table: future OpenSession calls on an existing
  // QueryId get the upgraded plan (new sessions Rewind, so this is safe
  // even when the enumeration order changed).
  for (auto& q : queries_) {
    auto it = remap.find(q.get());
    if (it != remap.end()) q = it->second;
  }
  // Re-point sessions. A session that already emitted answers needs its
  // parked walk to stay a valid order anchor, which only holds when
  // lambda is unchanged — otherwise leave it on the old plan and let
  // the worker's generation check retire it lazily, as before.
  for (Session& s : sessions_) {
    if (!s.query) continue;
    auto it = remap.find(s.query.get());
    if (it == remap.end()) continue;
    if (s.started &&
        std::find(order_broken.begin(), order_broken.end(),
                  s.query.get()) != order_broken.end())
      continue;
    s.query = it->second;
    if (s.state == SessionState::kParked) ++sessions_upgraded_;
  }
}

QueryId QueryEngine::RegisterLocked(
    std::shared_ptr<const PreparedQuery> prepared) {
  queries_.push_back(std::move(prepared));
  return static_cast<QueryId>(queries_.size() - 1);
}

QueryId QueryEngine::Prepare(const Nfa& query, uint32_t source,
                             uint32_t target, const AnnotateOptions& opts) {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(static_cast<bool>(snapshot_) &&
           "Prepare: no snapshot installed");
    snap = snapshot_;
  }
  CanonicalAutomaton canon = CanonicalizeAutomaton(query);
  PlanKey key{&snap.db(), snap.generation(), canon.hash,
              std::move(canon.bytes), source, target};
  // The expensive build (annotate + trim + queue construction) runs
  // outside both the engine and the cache lock: misses on different
  // keys proceed in parallel, all against the same frozen snapshot;
  // misses on the SAME key build once (single-flight).
  std::shared_ptr<const PreparedQuery> prepared = cache_.GetOrBuild(
      key, [&snap, &query, source, target, &opts] {
        return std::make_shared<const PreparedQuery>(snap, query, source,
                                                     target, opts);
      });
  BumpTier(prepared->tier);
  std::lock_guard<std::mutex> lock(mu_);
  return RegisterLocked(std::move(prepared));
}

void QueryEngine::BumpTier(ExecTier tier) {
  switch (tier) {
    case ExecTier::kSimple:
      tier_simple_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ExecTier::kSingleWord:
      tier_single_word_.fetch_add(1, std::memory_order_relaxed);
      break;
    case ExecTier::kGeneral:
      tier_general_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

std::vector<QueryId> QueryEngine::PrepareBatch(
    const Nfa& query, const std::vector<uint32_t>& sources, uint32_t target,
    const AnnotateOptions& opts) {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(static_cast<bool>(snapshot_) &&
           "PrepareBatch: no snapshot installed");
    snap = snapshot_;
  }
  CanonicalAutomaton canon = CanonicalizeAutomaton(query);
  // Tier depends only on (snapshot, query), not the source: classify
  // once for the whole batch.
  const ExecTier tier = ClassifyQuery(snap, query).tier;
  std::vector<PlanKey> keys;
  keys.reserve(sources.size());
  for (uint32_t s : sources)
    keys.push_back(PlanKey{&snap.db(), snap.generation(), canon.hash,
                           canon.bytes, s, target});
  // All claimed (absent) sources share ONE block-replicated product BFS;
  // each slice is bit-identical to a per-source Annotate, so cache
  // entries filled here and by single Prepare() are interchangeable.
  std::vector<PlanCache::Value> values = cache_.GetOrBuildBatch(
      keys, [&snap, &query, &sources, target, &opts,
             tier](const std::vector<size_t>& idx) {
        std::vector<uint32_t> batch_sources;
        batch_sources.reserve(idx.size());
        for (size_t i : idx) batch_sources.push_back(sources[i]);
        MultiSourceAnnotation ms =
            AnnotateMultiSource(snap, query, batch_sources, target, opts);
        std::vector<PlanCache::Value> built;
        built.reserve(idx.size());
        for (size_t j = 0; j < idx.size(); ++j)
          built.push_back(std::make_shared<const PreparedQuery>(
              snap, ms.Slice(j), opts, tier));
        return built;
      });
  std::vector<QueryId> ids;
  ids.reserve(values.size());
  for (const PlanCache::Value& v : values) BumpTier(v->tier);
  std::lock_guard<std::mutex> lock(mu_);
  for (PlanCache::Value& v : values) ids.push_back(RegisterLocked(std::move(v)));
  return ids;
}

PrepareRegexResult QueryEngine::PrepareRegex(std::string_view pattern,
                                             LabelDictionary* dict,
                                             uint32_t source, uint32_t target,
                                             const AnnotateOptions& opts) {
  PrepareRegexResult result;
  RegexParseResult parsed = ParseRegex(pattern);
  if (!parsed.ok()) {
    result.error = parsed.error();
    return result;
  }
  CompiledRegex compiled = CompileRegex(*parsed.value(), dict);
  result.frontend = compiled.frontend;
  (compiled.frontend == Frontend::kThompson ? frontend_thompson_
                                            : frontend_glushkov_)
      .fetch_add(1, std::memory_order_relaxed);
  result.id = Prepare(compiled.nfa, source, target, opts);
  result.ok = true;
  return result;
}

SessionId QueryEngine::OpenSession(QueryId query) {
  std::lock_guard<std::mutex> lock(mu_);
  assert(query < queries_.size() && "OpenSession: unknown query");
  Session s;
  s.query = queries_[query];
  sessions_.push_back(std::move(s));
  return static_cast<SessionId>(sessions_.size() - 1);
}

std::future<PumpResult> QueryEngine::PumpAsync(SessionId session,
                                               uint32_t max_answers) {
  std::promise<PumpResult> promise;
  std::future<PumpResult> future = promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(session < sessions_.size() && "PumpAsync: unknown session");
    Session& s = sessions_[session];
    switch (s.state) {
      case SessionState::kQueued:
        promise.set_value(PumpResult{PumpStatus::kBusy, {}});
        return future;
      case SessionState::kExhausted:
        promise.set_value(PumpResult{PumpStatus::kExhausted, {}});
        return future;
      case SessionState::kRetired:
        promise.set_value(PumpResult{PumpStatus::kRetired, {}});
        return future;
      case SessionState::kParked:
        break;
    }
    s.state = SessionState::kQueued;
    queue_.push_back(Job{session, std::max(max_answers, 1u),
                         std::move(promise),
                         std::chrono::steady_clock::now()});
  }
  cv_.notify_one();
  return future;
}

PumpResult QueryEngine::Pump(SessionId session, uint32_t max_answers) {
  return PumpAsync(session, max_answers).get();
}

PumpResult QueryEngine::Drain(SessionId session, uint32_t batch) {
  PumpResult all;
  for (;;) {
    PumpResult r = Pump(session, batch);
    if (r.status == PumpStatus::kBusy) {
      // Another pump owns the session right now (its batch goes to that
      // caller). Returning here would hand back partially-accumulated
      // walks under a kBusy status — a silently dropped tail. The
      // session parks or exhausts eventually; retry until it does.
      std::this_thread::yield();
      continue;
    }
    all.status = r.status;
    all.walks.insert(all.walks.end(),
                     std::make_move_iterator(r.walks.begin()),
                     std::make_move_iterator(r.walks.end()));
    if (r.status != PumpStatus::kOk) return all;
  }
}

std::vector<int64_t> QueryEngine::FirstAnswerLatenciesNs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_answer_ns_;
}

EngineStats QueryEngine::Stats() const {
  EngineStats stats;
  stats.plan_cache = cache_.Stats();
  stats.worker_cache_evictions =
      worker_cache_evictions_.load(std::memory_order_relaxed);
  stats.frontend_thompson =
      frontend_thompson_.load(std::memory_order_relaxed);
  stats.frontend_glushkov =
      frontend_glushkov_.load(std::memory_order_relaxed);
  stats.tier_simple = tier_simple_.load(std::memory_order_relaxed);
  stats.tier_single_word =
      tier_single_word_.load(std::memory_order_relaxed);
  stats.tier_general = tier_general_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  stats.sessions_retired = sessions_retired_;
  stats.plans_upgraded = plans_upgraded_;
  stats.sessions_upgraded = sessions_upgraded_;
  return stats;
}

PumpResult QueryEngine::RunBatch(
    WorkerCache& cache, const std::shared_ptr<const PreparedQuery>& query,
    const Walk& last, bool started, uint32_t max_answers,
    std::chrono::steady_clock::time_point enqueued,
    int64_t* first_answer_ns) {
  PumpResult result;
  *first_answer_ns = -1;
  ResumableEnumerator& en = cache.Get(query);
  if (!started) {
    en.Rewind();
  } else if (!en.SeekAfter(last)) {
    // last was emitted by this very pipeline, so SeekAfter can only
    // reject it if the session state was corrupted externally.
    assert(false && "RunBatch: parked walk is not an answer");
    result.status = PumpStatus::kExhausted;
    return result;
  }
  if (en.Valid())
    *first_answer_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           std::chrono::steady_clock::now() - enqueued)
                           .count();
  while (en.Valid() && result.walks.size() < max_answers) {
    result.walks.push_back(en.walk());
    if (result.walks.size() < max_answers) en.Next();
  }
  // The batch parks ON its last answer (Next() is deferred to the next
  // pump's SeekAfter), so kOk promises nothing about further answers —
  // only that enumeration has not provably ended.
  result.status = en.Valid() && !result.walks.empty() ? PumpStatus::kOk
                                                      : PumpStatus::kExhausted;
  return result;
}

void QueryEngine::WorkerLoop() {
  WorkerCache cache(worker_cache_entries_, &worker_cache_evictions_);
  for (;;) {
    Job job;
    std::shared_ptr<const PreparedQuery> query;
    Walk last;
    bool started = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;  // ~QueryEngine fails whatever is still queued
      job = std::move(queue_.front());
      queue_.pop_front();

      Session& s = sessions_[job.session];
      const Snapshot& pinned = s.query->snap;
      if (&pinned.db() != installed_db_ ||
          pinned.generation() != installed_gen_) {
        // Graceful rejection: the stale index is never touched.
        s.state = SessionState::kRetired;
        ++sessions_retired_;
        const Database* live_db = installed_db_;
        uint64_t live_gen = installed_gen_;
        lock.unlock();
        cache.EvictOtherGenerations(live_db, live_gen);
        job.promise.set_value(PumpResult{PumpStatus::kRetired, {}});
        continue;
      }
      query = s.query;
      last = s.last;
      started = s.started;
    }

    int64_t first_ns = -1;
    PumpResult result = RunBatch(cache, query, last, started,
                                 job.max_answers, job.enqueued, &first_ns);

    {
      std::lock_guard<std::mutex> lock(mu_);
      Session& s = sessions_[job.session];
      if (!result.walks.empty()) {
        s.last = result.walks.back();
        s.started = true;
      }
      s.state = result.status == PumpStatus::kOk ? SessionState::kParked
                                                 : SessionState::kExhausted;
      if (first_ns >= 0) first_answer_ns_.push_back(first_ns);
    }
    job.promise.set_value(std::move(result));
  }
}

}  // namespace dsw
