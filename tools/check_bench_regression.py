#!/usr/bin/env python3
"""Threshold guard for the perf-smoke CI job.

Compares a fresh google-benchmark JSON run against the committed
baseline (e.g. BENCH_preprocessing.json) and fails when throughput
regressed by more than the threshold factor.

Two checks run, and either fails the job:

1. Raw geomean of per-benchmark cpu_time ratios (new / baseline)
   > threshold. This is the absolute guard the acceptance criterion
   asks for. Caveat: the baseline was recorded on one machine and CI
   runners differ, so a uniformly slower runner shifts this metric
   one-for-one; if a runner generation change ever trips it with flat
   *normalized* ratios (check the log), refresh the committed baseline
   from the job's uploaded artifact or raise --threshold.
2. Worst *normalized* ratio (each benchmark's ratio divided by the
   suite's median ratio) > threshold. Dividing out the median cancels
   any uniform machine-speed delta, so this catches a localized
   hot-path regression even on a runner much faster or slower than the
   baseline machine — and distinguishes "the runner is slow" (raw
   geomean high, normalized flat) from "one code path regressed"
   (normalized spike) at a glance.

Benchmarks present only on one side never fail the job, but both
directions warn: baseline entries missing from the run (a renamed or
deleted benchmark silently un-guards itself) and run entries missing
from the baseline (a new benchmark is uncovered until the committed
baseline is refreshed).

Usage:
  check_bench_regression.py BASELINE.json CURRENT.json [THRESHOLD]
  check_bench_regression.py BASELINE.json CURRENT.json --threshold 3.0
  check_bench_regression.py BASELINE.json CURRENT.json \
      --threshold 2.0 --threshold 'BM_FastPath_Simple/10=1.3'
  check_bench_regression.py --self-test

--threshold is repeatable: a bare float sets the global threshold, a
NAME=FACTOR pair overrides the *normalized* check for that one
benchmark — tighter than the global guard for a benchmark whose delay
bound matters (the fast-path gate), or looser for a known-noisy one.
The geomean check always uses the global threshold (a per-benchmark
number for a whole-suite metric would be meaningless). Overrides
naming benchmarks absent from the comparison only warn, so a renamed
benchmark doesn't brick the job — but watch the log.

The global threshold defaults to 2.0; a bare positional third argument
is the legacy spelling of --threshold, and DSW_BENCH_THRESHOLD
overrides the default when neither is given. --self-test runs the
checker against synthetic fixtures (flat run passes, uniform slowdown
trips the geomean, a single spike trips the normalized check,
per-benchmark overrides tighten and loosen it) and exits nonzero on
any surprise — CI runs it so the guard itself is guarded.
"""

import argparse
import json
import math
import os
import sys
import tempfile


def load_times(path):
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        cpu = float(bench["cpu_time"])
        if math.isfinite(cpu) and cpu > 0:  # 0-iteration runs are garbage
            times[bench["name"]] = cpu
    return times


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def check(baseline_path, current_path, threshold, overrides=None):
    """The comparison proper; returns a process exit code."""
    overrides = overrides or {}
    baseline = load_times(baseline_path)
    current = load_times(current_path)

    common = sorted(set(baseline) & set(current))
    if not common:
        print("error: no common benchmarks between baseline and current run")
        return 1
    unused = sorted(set(overrides) - set(common))
    if unused:
        print(f"warning: {len(unused)} threshold overrides match no "
              f"compared benchmark (renamed? typo?):")
        for name in unused:
            print(f"  {name}={overrides[name]:g}")
    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"warning: {len(missing)} baseline benchmarks missing from run:")
        for name in missing:
            print(f"  {name}")
    new_only = sorted(set(current) - set(baseline))
    if new_only:
        print(f"warning: {len(new_only)} benchmarks have no baseline "
              f"(uncovered by this guard — refresh the committed baseline):")
        for name in new_only:
            print(f"  {name}")

    ratios = {name: current[name] / baseline[name] for name in common}
    med = median(ratios.values())
    geomean = math.exp(sum(math.log(r) for r in ratios.values()) / len(common))

    print(f"{'benchmark':<44} {'baseline':>12} {'current':>12} "
          f"{'ratio':>7} {'norm':>6} {'limit':>6}")
    worst_norm = (0.0, "")
    norm_failures = []
    for name in common:
        norm = ratios[name] / med
        worst_norm = max(worst_norm, (norm, name))
        limit = overrides.get(name, threshold)
        if norm > limit:
            norm_failures.append((name, norm, limit))
        mark = "*" if name in overrides else " "
        print(f"{name:<44} {baseline[name]:>10.0f}ns {current[name]:>10.0f}ns "
              f"{ratios[name]:>6.2f}x {norm:>5.2f}x {limit:>5.2f}{mark}")
    print(f"\ngeomean ratio: {geomean:.2f}x, median {med:.2f}x over "
          f"{len(common)} benchmarks (threshold {threshold:.2f}x"
          f"{', * = per-benchmark override' if overrides else ''}); "
          f"worst normalized: {worst_norm[1]} at {worst_norm[0]:.2f}x")

    failed = False
    if geomean > threshold:
        print("FAIL: raw geomean past the threshold "
              "(if normalized ratios are flat, the runner is uniformly "
              "slower than the baseline machine — see the docstring)")
        failed = True
    for name, norm, limit in norm_failures:
        print(f"FAIL: {name} regressed {norm:.2f}x relative to the rest "
              f"of the suite (limit {limit:.2f}x)")
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


# ------------------------------------------------------------ self-test

def _fixture(path, times):
    """Writes a minimal google-benchmark JSON with the given cpu_times."""
    benches = [{"name": n, "run_type": "iteration", "cpu_time": t,
                "real_time": t, "time_unit": "ns"}
               for n, t in times.items()]
    with open(path, "w") as f:
        json.dump({"context": {}, "benchmarks": benches}, f)


def self_test():
    base_times = {"BM_a/1": 100.0, "BM_a/2": 200.0,
                  "BM_b/1": 1000.0, "BM_b/2": 4000.0, "BM_c": 50.0}
    cases = [
        # (label, current times, threshold, overrides, expected exit code)
        ("flat run passes", dict(base_times), 2.0, {}, 0),
        ("mild uniform drift passes",
         {n: t * 1.4 for n, t in base_times.items()}, 2.0, {}, 0),
        ("uniform 3x slowdown trips the geomean",
         {n: t * 3.0 for n, t in base_times.items()}, 2.0, {}, 1),
        ("single 5x spike trips the normalized check",
         {**base_times, "BM_b/2": base_times["BM_b/2"] * 5.0}, 2.0, {}, 1),
        ("--threshold 6 tolerates the same spike",
         {**base_times, "BM_b/2": base_times["BM_b/2"] * 5.0}, 6.0, {}, 0),
        # 1.8x spike: under the 2.0 global, but a tight per-benchmark
        # override catches it — the fast-path gate scenario.
        ("mild spike passes under the global threshold alone",
         {**base_times, "BM_b/2": base_times["BM_b/2"] * 1.8}, 2.0, {}, 0),
        ("tight override trips the same mild spike",
         {**base_times, "BM_b/2": base_times["BM_b/2"] * 1.8}, 2.0,
         {"BM_b/2": 1.5}, 1),
        ("loose override tolerates a 5x spike on its benchmark",
         {**base_times, "BM_b/2": base_times["BM_b/2"] * 5.0}, 2.0,
         {"BM_b/2": 6.0}, 0),
        ("loose override on one benchmark does not unguard another",
         {**base_times, "BM_a/1": base_times["BM_a/1"] * 5.0}, 2.0,
         {"BM_b/2": 6.0}, 1),
        ("override naming an unknown benchmark only warns",
         dict(base_times), 2.0, {"BM_gone/1": 1.1}, 0),
        ("missing benchmarks only warn",
         {n: t for n, t in base_times.items() if n != "BM_c"}, 2.0, {}, 0),
        ("baseline-less benchmarks only warn — even a slow one",
         {**base_times, "BM_new/1": 9e9}, 2.0, {}, 0),
        ("disjoint suites are an error", {"BM_other": 10.0}, 2.0, {}, 1),
    ]
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "base.json")
        cur_path = os.path.join(tmp, "cur.json")
        _fixture(base_path, base_times)
        for label, cur_times, threshold, overrides, expected in cases:
            _fixture(cur_path, cur_times)
            print(f"--- self-test: {label} (expect exit {expected}) ---")
            got = check(base_path, cur_path, threshold, overrides)
            if got != expected:
                print(f"SELF-TEST FAIL: {label}: exit {got}, "
                      f"expected {expected}")
                failures += 1
            print()
    if failures:
        print(f"self-test: {failures}/{len(cases)} cases FAILED")
        return 1
    print(f"self-test: all {len(cases)} cases passed")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline", nargs="?", help="committed baseline JSON")
    parser.add_argument("current", nargs="?", help="fresh run JSON")
    parser.add_argument("legacy_threshold", nargs="?", type=float,
                        help="legacy positional spelling of --threshold")
    parser.add_argument("--threshold", action="append", default=None,
                        metavar="FACTOR|NAME=FACTOR",
                        help="repeatable: a bare factor sets the global "
                             "threshold (default 2.0, or "
                             "DSW_BENCH_THRESHOLD); NAME=FACTOR overrides "
                             "the normalized check for one benchmark")
    parser.add_argument("--self-test", action="store_true",
                        help="run the checker against synthetic fixtures")
    args = parser.parse_args(argv[1:])

    if args.self_test:
        return self_test()
    if args.baseline is None or args.current is None:
        parser.print_usage()
        return 2
    threshold = None
    overrides = {}
    for spec in args.threshold or []:
        name, eq, factor = spec.rpartition("=")
        try:
            value = float(factor)
        except ValueError:
            print(f"error: bad --threshold value {spec!r} "
                  f"(want FACTOR or NAME=FACTOR)")
            return 2
        if eq:
            overrides[name] = value
        else:
            threshold = value
    if threshold is None:
        threshold = args.legacy_threshold
    if threshold is None:
        threshold = float(os.environ.get("DSW_BENCH_THRESHOLD", "2.0"))
    return check(args.baseline, args.current, threshold, overrides)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
