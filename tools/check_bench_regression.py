#!/usr/bin/env python3
"""Threshold guard for the perf-smoke CI job.

Compares a fresh google-benchmark JSON run against the committed
baseline (BENCH_preprocessing.json) and fails when preprocessing
throughput regressed by more than the threshold factor.

Two checks run, and either fails the job:

1. Raw geomean of per-benchmark cpu_time ratios (new / baseline)
   > THRESHOLD. This is the absolute >2x guard the acceptance criterion
   asks for. Caveat: the baseline was recorded on one machine and CI
   runners differ, so a uniformly slower runner shifts this metric
   one-for-one; if a runner generation change ever trips it with flat
   *normalized* ratios (check the log), refresh the committed baseline
   from the job's uploaded artifact or bump DSW_BENCH_THRESHOLD.
2. Worst *normalized* ratio (each benchmark's ratio divided by the
   suite's median ratio) > THRESHOLD. Dividing out the median cancels
   any uniform machine-speed delta, so this catches a localized
   hot-path regression even on a runner much faster or slower than the
   baseline machine — and distinguishes "the runner is slow" (raw
   geomean high, normalized flat) from "one code path regressed"
   (normalized spike) at a glance.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [THRESHOLD]
THRESHOLD defaults to 2.0, overridable via argv or DSW_BENCH_THRESHOLD.
"""

import json
import math
import os
import sys


def load_times(path):
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        cpu = float(bench["cpu_time"])
        if math.isfinite(cpu) and cpu > 0:  # 0-iteration runs are garbage
            times[bench["name"]] = cpu
    return times


def median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def main(argv):
    if len(argv) < 3:
        print(__doc__)
        return 2
    baseline = load_times(argv[1])
    current = load_times(argv[2])
    threshold = float(
        argv[3] if len(argv) > 3 else os.environ.get("DSW_BENCH_THRESHOLD", "2.0")
    )

    common = sorted(set(baseline) & set(current))
    if not common:
        print("error: no common benchmarks between baseline and current run")
        return 1
    missing = sorted(set(baseline) - set(current))
    if missing:
        print(f"warning: {len(missing)} baseline benchmarks missing from run:")
        for name in missing:
            print(f"  {name}")

    ratios = {name: current[name] / baseline[name] for name in common}
    med = median(ratios.values())
    geomean = math.exp(sum(math.log(r) for r in ratios.values()) / len(common))

    print(f"{'benchmark':<44} {'baseline':>12} {'current':>12} "
          f"{'ratio':>7} {'norm':>6}")
    worst_norm = (0.0, "")
    for name in common:
        norm = ratios[name] / med
        worst_norm = max(worst_norm, (norm, name))
        print(f"{name:<44} {baseline[name]:>10.0f}ns {current[name]:>10.0f}ns "
              f"{ratios[name]:>6.2f}x {norm:>5.2f}x")
    print(f"\ngeomean ratio: {geomean:.2f}x, median {med:.2f}x over "
          f"{len(common)} benchmarks (threshold {threshold:.2f}x); "
          f"worst normalized: {worst_norm[1]} at {worst_norm[0]:.2f}x")

    failed = False
    if geomean > threshold:
        print("FAIL: raw geomean past the threshold "
              "(if normalized ratios are flat, the runner is uniformly "
              "slower than the baseline machine — see the docstring)")
        failed = True
    if worst_norm[0] > threshold:
        print(f"FAIL: {worst_norm[1]} regressed {worst_norm[0]:.2f}x "
              f"relative to the rest of the suite")
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
