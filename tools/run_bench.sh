#!/usr/bin/env bash
# Runs one google-benchmark binary with JSON output, papering over the
# --benchmark_min_time syntax change: the "s" (seconds) suffix needs
# google-benchmark >= 1.8; older libraries want a plain double. (Never
# the "x" suffix: it is an *iteration count*, and a fractional one
# truncates to 0 iterations on >= 1.8, yielding garbage cpu_times.)
#
# Usage: tools/run_bench.sh <bench-binary> <min-time-seconds> <out-json>
set -u

if [ "$#" -ne 3 ]; then
  echo "usage: $0 <bench-binary> <min-time-seconds> <out-json>" >&2
  exit 2
fi

bin="$1"
min_time="$2"
out="$3"

"$bin" --benchmark_min_time="${min_time}s" \
       --benchmark_format=console \
       --benchmark_out_format=json \
       --benchmark_out="$out" \
|| "$bin" --benchmark_min_time="$min_time" \
       --benchmark_format=console \
       --benchmark_out_format=json \
       --benchmark_out="$out"
