// E6 + E7: the paper's algorithm against Theorem 1 and the naive strawman.
//
// E6 (Theorem 1 vs Theorem 2): the Martens-Trautner reduction's delay
//     carries a factor |D| (its automaton A' has |E| x |Delta| transitions)
//     — sweeping the database size shows its per-output cost growing while
//     the main algorithm's stays flat.
// E7 (introduction): the naive product enumeration generates
//     exponentially many duplicates as nondeterminism grows; the main
//     algorithm's work per output is unchanged.

#include <benchmark/benchmark.h>

// The Theorem 1 baseline lands in a later change; E6a/E7 run without it.
#if __has_include("baseline/mt_baseline.h")
#include "baseline/mt_baseline.h"
#define DSW_HAVE_MT_BASELINE 1
#endif

#include "baseline/naive.h"
#include "bench_util.h"
#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/trimmed_index.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

Instance GridInstance(int64_t n) {
  return Grid(static_cast<uint32_t>(n), static_cast<uint32_t>(n));
}

// E6a: main algorithm end-to-end on an n x n grid (lambda = 2n - 2).
void BM_Ours_OnGrid(benchmark::State& state) {
  Instance inst = GridInstance(state.range(0));
  Nfa query = StaircaseNfa(1, 1);
  Snapshot snap = inst.db.Freeze();
  bench::DelayProfile profile;
  for (auto _ : state) {
    Annotation ann = Annotate(snap, query, inst.source, inst.target);
    TrimmedIndex index(snap, ann);
    TrimmedEnumerator en(ann, index, inst.source, inst.target);
    profile = bench::MeasureDelays(&en);
  }
  bench::ReportDelays(state, profile);
  state.counters["db_size"] = static_cast<double>(inst.db.size());
}
BENCHMARK(BM_Ours_OnGrid)->DenseRange(4, 10, 2)
    ->Unit(benchmark::kMillisecond);

// E6b: Theorem 1 baseline on the same instances. Note the growing
// per-output cost (|D| enters the delay through A').
#ifdef DSW_HAVE_MT_BASELINE
void BM_MtBaseline_OnGrid(benchmark::State& state) {
  Instance inst = GridInstance(state.range(0));
  Nfa query = StaircaseNfa(1, 1);
  bench::DelayProfile profile;
  for (auto _ : state) {
    MtBaselineEnumerator en(inst.db, query, inst.source, inst.target);
    profile = bench::MeasureDelays(&en);
  }
  bench::ReportDelays(state, profile);
  state.counters["db_size"] = static_cast<double>(inst.db.size());
}
BENCHMARK(BM_MtBaseline_OnGrid)->DenseRange(4, 10, 2)
    ->Unit(benchmark::kMillisecond);
#endif  // DSW_HAVE_MT_BASELINE

// E7: duplicate blow-up of the naive enumeration. Arg: bubble count k.
// Answers: 2^k; naive product paths: sum over runs and words — grows as
// ~C(k, width) x 2^k. Counter dup_per_answer explodes while the main
// algorithm emits each answer exactly once by construction.
void BM_Naive_DuplicateBlowup(benchmark::State& state) {
  Instance inst = BubbleChain(static_cast<uint32_t>(state.range(0)), 2);
  Nfa query = StaircaseNfa(2, 2);
  NaiveResult res;
  Snapshot snap = inst.db.Freeze();
  for (auto _ : state) {
    res = NaiveDistinctShortestWalks(snap, query, inst.source,
                                     inst.target, uint64_t{1} << 28);
  }
  state.counters["answers"] = static_cast<double>(res.walks.size());
  state.counters["paths"] = static_cast<double>(res.paths_generated);
  state.counters["dup_per_answer"] =
      res.walks.empty() ? 0.0
                        : static_cast<double>(res.duplicates) /
                              static_cast<double>(res.walks.size());
}
// k = 10 already needs ~5 x 10^7 product paths (1024 answers x 1024 label
// words x 45 run shapes); the sweep stops at 8 and the trend is cubic-
// exponential — see EXPERIMENTS.md.
BENCHMARK(BM_Naive_DuplicateBlowup)->DenseRange(4, 8, 2)
    ->Unit(benchmark::kMillisecond);

// E7b: ours on the identical instances — per-answer work flat.
void BM_Ours_DuplicateFree(benchmark::State& state) {
  Instance inst = BubbleChain(static_cast<uint32_t>(state.range(0)), 2);
  Nfa query = StaircaseNfa(2, 2);
  Snapshot snap = inst.db.Freeze();
  bench::DelayProfile profile;
  for (auto _ : state) {
    Annotation ann = Annotate(snap, query, inst.source, inst.target);
    TrimmedIndex index(snap, ann);
    TrimmedEnumerator en(ann, index, inst.source, inst.target);
    profile = bench::MeasureDelays(&en);
  }
  bench::ReportDelays(state, profile);
}
BENCHMARK(BM_Ours_DuplicateFree)->DenseRange(4, 12, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dsw
