// E10 (introduction, [11, 17] setting): single-labeled data +
// deterministic query.
//
// The simple-setting algorithm achieves O(lambda) delay; the general
// algorithm pays the certificate machinery for an O(lambda x |A|) delay.
// Grids with the any-word DFA expose the gap; detection of the setting
// (Applicable) is also timed.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/simple_enumerator.h"
#include "core/trimmed_index.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

// lambda on an n x n grid is 2(n-1).
Nfa GridDfa(int64_t n) {
  return AnyKDfa(2 * (static_cast<uint32_t>(n) - 1), 1);
}

void BM_FastPath_Simple(benchmark::State& state) {
  Instance inst = Grid(static_cast<uint32_t>(state.range(0)),
                       static_cast<uint32_t>(state.range(0)));
  Nfa dfa = GridDfa(state.range(0));
  if (!SimpleEnumerator::Applicable(inst.db, dfa)) {
    state.SkipWithError("fast path unexpectedly not applicable");
    return;
  }
  bench::DelayProfile profile;
  for (auto _ : state) {
    SimpleEnumerator en(inst.db, dfa, inst.source, inst.target);
    profile = bench::MeasureDelays(&en);
  }
  bench::ReportDelays(state, profile);
}
BENCHMARK(BM_FastPath_Simple)->DenseRange(6, 14, 2)
    ->Unit(benchmark::kMillisecond);

void BM_FastPath_GeneralAlgorithm(benchmark::State& state) {
  Instance inst = Grid(static_cast<uint32_t>(state.range(0)),
                       static_cast<uint32_t>(state.range(0)));
  Nfa dfa = GridDfa(state.range(0));
  bench::DelayProfile profile;
  for (auto _ : state) {
    Annotation ann = Annotate(inst.db, dfa, inst.source, inst.target);
    TrimmedIndex index(inst.db, ann);
    TrimmedEnumerator en(inst.db, ann, index, inst.source, inst.target);
    profile = bench::MeasureDelays(&en);
  }
  bench::ReportDelays(state, profile);
}
BENCHMARK(BM_FastPath_GeneralAlgorithm)->DenseRange(6, 14, 2)
    ->Unit(benchmark::kMillisecond);

// Setting detection (the paper: "it takes linear time to check").
void BM_FastPath_Detection(benchmark::State& state) {
  Instance inst = Grid(static_cast<uint32_t>(state.range(0)),
                       static_cast<uint32_t>(state.range(0)));
  Nfa dfa = GridDfa(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SimpleEnumerator::Applicable(inst.db, dfa));
  }
}
BENCHMARK(BM_FastPath_Detection)->DenseRange(6, 14, 4);

}  // namespace
}  // namespace dsw
