// E10/E14 (introduction, [11, 17] setting): the execution-tier layer.
//
// Simple vs general: single-labeled data + deterministic query is the
// paper's simple setting — SimpleEnumerator achieves O(lambda) delay,
// the general algorithm pays the certificate machinery for
// O(lambda x |A|). Grids with the any-word DFA expose the gap (CI
// gates simple mean delay >= 3x lower, tools/check_bench_regression.py
// per-benchmark thresholds); detection of the setting (ClassifyQuery,
// "linear time to check" in the paper) is also timed.
//
// SingleWord vs MultiWord: the same annotate + trim work with the
// collapsed one-uint64_t kernels vs the generic multi-word loops forced
// onto the same one-word query (AnnotateOptions::force_multi_word) —
// the kernel win of the single-word tier in isolation, identical
// output bits on both arms.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "bench_util.h"
#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/query_traits.h"
#include "core/simple_enumerator.h"
#include "core/trimmed_index.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

// lambda on an n x n grid is 2(n-1); the DFA has 2n - 1 states, so the
// general arm runs the single-word tier (|Q| <= 64 up to n = 32) — the
// honest comparison, not a strawman.
Nfa GridDfa(int64_t n) {
  return AnyKDfa(2 * (static_cast<uint32_t>(n) - 1), 1);
}

// Mean delay over one whole drain, a single clock pair, best of three
// drains. The per-Next stopwatch in MeasureDelays puts a ~30-40ns
// clock-read floor under every sample — larger than the simple tier's
// true per-answer cost — which compresses the simple-vs-general ratio;
// this counter is what the CI delay gate compares. Best-of-3 is the
// standard noise-robust timing estimator (a scheduler hiccup inflates
// a drain, never deflates it); max_delay still comes from the per-Next
// profile (a max cannot be batched). \p make constructs a fresh
// enumerator per drain.
template <typename MakeEnumerator>
double BatchedMeanDelayNs(MakeEnumerator make) {
  constexpr uint64_t kMaxOutputs = 200000;
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    auto en = make();
    uint64_t outputs = 0;
    Stopwatch total;
    while (en.Valid() && outputs < kMaxOutputs) {
      benchmark::DoNotOptimize(en.walk().edges.data());
      ++outputs;
      en.Next();
    }
    int64_t ns = total.ElapsedNs();
    if (outputs > 0)
      best = std::min(best, static_cast<double>(ns) /
                                static_cast<double>(outputs));
  }
  return std::isfinite(best) ? best : 0.0;
}

void BM_FastPath_Simple(benchmark::State& state) {
  Instance inst = Grid(static_cast<uint32_t>(state.range(0)),
                       static_cast<uint32_t>(state.range(0)));
  Snapshot snap = inst.db.Freeze();
  Nfa dfa = GridDfa(state.range(0));
  if (!SimpleEnumerator::Applicable(snap, dfa)) {
    state.SkipWithError("fast path unexpectedly not applicable");
    return;
  }
  bench::DelayProfile profile;
  for (auto _ : state) {
    SimpleEnumerator en(snap, dfa, inst.source, inst.target);
    profile = bench::MeasureDelays(&en);
  }
  bench::ReportDelays(state, profile);
  state.counters["batch_mean_delay_ns"] = BatchedMeanDelayNs(
      [&] { return SimpleEnumerator(snap, dfa, inst.source, inst.target); });
}
BENCHMARK(BM_FastPath_Simple)->DenseRange(6, 14, 2)
    ->Unit(benchmark::kMillisecond);

void BM_FastPath_GeneralAlgorithm(benchmark::State& state) {
  Instance inst = Grid(static_cast<uint32_t>(state.range(0)),
                       static_cast<uint32_t>(state.range(0)));
  Snapshot snap = inst.db.Freeze();
  Nfa dfa = GridDfa(state.range(0));
  bench::DelayProfile profile;
  for (auto _ : state) {
    Annotation ann = Annotate(snap, dfa, inst.source, inst.target);
    TrimmedIndex index(snap, ann);
    TrimmedEnumerator en(ann, index, inst.source, inst.target);
    profile = bench::MeasureDelays(&en);
  }
  bench::ReportDelays(state, profile);
  Annotation ann = Annotate(snap, dfa, inst.source, inst.target);
  TrimmedIndex index(snap, ann);
  state.counters["batch_mean_delay_ns"] = BatchedMeanDelayNs(
      [&] { return TrimmedEnumerator(ann, index, inst.source, inst.target); });
}
BENCHMARK(BM_FastPath_GeneralAlgorithm)->DenseRange(6, 14, 2)
    ->Unit(benchmark::kMillisecond);

// The general *tier's* kernel configuration on the same instance:
// multi-word loops throughout annotate, trim and enumeration — what any
// query with > 64 states or an un-eliminated epsilon runs. The CI >=3x
// simple-vs-general delay gate compares against this arm; the
// GeneralAlgorithm arm above (single-word kernels, what the engine
// would actually pick for this query absent the simple tier) is gated
// at a softer >=2x.
void BM_FastPath_GeneralTierKernels(benchmark::State& state) {
  Instance inst = Grid(static_cast<uint32_t>(state.range(0)),
                       static_cast<uint32_t>(state.range(0)));
  Snapshot snap = inst.db.Freeze();
  Nfa dfa = GridDfa(state.range(0));
  AnnotateOptions force;
  force.force_multi_word = true;
  bench::DelayProfile profile;
  for (auto _ : state) {
    Annotation ann = Annotate(snap, dfa, inst.source, inst.target, force);
    TrimmedIndex index(snap, ann, force);
    TrimmedEnumerator en(ann, index, inst.source, inst.target,
                         /*force_multi_word=*/true);
    profile = bench::MeasureDelays(&en);
  }
  bench::ReportDelays(state, profile);
  Annotation ann = Annotate(snap, dfa, inst.source, inst.target, force);
  TrimmedIndex index(snap, ann, force);
  state.counters["batch_mean_delay_ns"] = BatchedMeanDelayNs([&] {
    return TrimmedEnumerator(ann, index, inst.source, inst.target,
                             /*force_multi_word=*/true);
  });
}
BENCHMARK(BM_FastPath_GeneralTierKernels)->DenseRange(6, 14, 2)
    ->Unit(benchmark::kMillisecond);

// Setting detection (the paper: "it takes linear time to check").
void BM_FastPath_Detection(benchmark::State& state) {
  Instance inst = Grid(static_cast<uint32_t>(state.range(0)),
                       static_cast<uint32_t>(state.range(0)));
  Snapshot snap = inst.db.Freeze();
  Nfa dfa = GridDfa(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClassifyQuery(snap, dfa).tier);
  }
}
BENCHMARK(BM_FastPath_Detection)->DenseRange(6, 14, 4);

// The single-word kernel win on preprocessing, in isolation: same
// one-word query, same snapshot, same output bits — only the kernel
// instantiation differs (force_multi_word runs the generic loops).
void AnnotateTrimArm(benchmark::State& state, bool force_multi_word) {
  Instance inst = Grid(static_cast<uint32_t>(state.range(0)),
                       static_cast<uint32_t>(state.range(0)));
  Snapshot snap = inst.db.Freeze();
  Nfa dfa = GridDfa(state.range(0));
  AnnotateOptions opts;
  opts.force_multi_word = force_multi_word;
  for (auto _ : state) {
    Annotation ann = Annotate(snap, dfa, inst.source, inst.target, opts);
    TrimmedIndex index(snap, ann, opts);
    benchmark::DoNotOptimize(index.num_slots());
  }
}

void BM_FastPath_AnnotateTrimSingleWord(benchmark::State& state) {
  AnnotateTrimArm(state, /*force_multi_word=*/false);
}
BENCHMARK(BM_FastPath_AnnotateTrimSingleWord)->DenseRange(6, 14, 4)
    ->Unit(benchmark::kMillisecond);

void BM_FastPath_AnnotateTrimMultiWord(benchmark::State& state) {
  AnnotateTrimArm(state, /*force_multi_word=*/true);
}
BENCHMARK(BM_FastPath_AnnotateTrimMultiWord)->DenseRange(6, 14, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dsw
