// E12: the cross-query plan cache under a Zipfian query mix.
//
// Arms:
//  - BM_Cache_PrepareCold / BM_Cache_PrepareWarm: one Prepare of the
//    hot query, cache disabled (byte budget 0 — every call pays the
//    full annotate + trim build) vs cache enabled and warmed (pure key
//    lookup + shared_ptr). CI gates warm being >10x faster than cold.
//  - BM_Cache_ZipfPrepareMix/warm:{0,1}: a stream of PrepareRegex
//    calls over textually-varied spellings of a small shape set with
//    Zipf(1.0) popularity, each followed by one pumped batch — the
//    "millions of users, a handful of query shapes" serving loop.
//    Headlines: answers_per_sec, p50/p99 Prepare-call latency, and the
//    cache hit rate (hit_rate counter; 0 in the cold arm by
//    construction, textual variants collide via canonicalization in
//    the warm arm).
//  - BM_Cache_MultiSourceBatch vs BM_Cache_PerSourcePrepare: preparing
//    one query from k sources through one block-replicated multi-source
//    BFS vs k independent annotate runs, both uncached — the prefix
//    sharing headline (prepares_per_sec, higher is better).
//
// cpu_time is process-wide where the worker pool participates, so the
// regression baseline stays comparable across host core counts;
// wall-clock throughput is reported in explicit counters.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "core/annotate.h"
#include "core/database.h"
#include "core/nfa.h"
#include "engine/engine.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

// Zipf(s) over ranks 0..n-1 via inverse-CDF lookup.
class Zipf {
 public:
  Zipf(size_t n, double s, uint64_t seed) : rng_(seed) {
    cdf_.reserve(n);
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_.push_back(sum);
    }
    for (double& c : cdf_) c /= sum;
  }

  size_t operator()() {
    double u = dist_(rng_);
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

  uint64_t raw() { return rng_(); }

 private:
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> dist_{0.0, 1.0};
  std::vector<double> cdf_;
};

// Query shapes ranked by popularity; each shape has several textual
// spellings that canonicalize to one automaton — the cache must merge
// them, so the warm arm's hit rate measures canonicalization working,
// not string-identical repeats.
const std::vector<std::vector<std::string>>& ShapeVariants() {
  static const std::vector<std::vector<std::string>> shapes = {
      {"(l0|l1)* l1 (l0|l1)?", "(l1|l0)* l1 ((l0|l1)?)?",
       "((l1|l0)*)* l1 (l1|l0)?"},
      {"l0 l0 (l0|l1)*", "(l0 l0) ((l1|l0)*)?", "l0 (l0 ((l0|l1)+)?)"},
      {"(l0 l0|l1 l1)+", "((l1 l1)|(l0 l0))+"},
      {"(l0|l1) (l0|l1)", "(l1|l0) (l0|l1)"},
      {"(l0 l1)+ l0?", "((l0 l1))+ ((l0?)?)"},
      {"l1* l0 l1*", "(l1*)* l0 (l1+)?"},
  };
  return shapes;
}

struct Workload {
  Instance inst;
  Snapshot snap;

  Workload() : inst(EmbedInNoise(BubbleChain(8, 2), 150, 600, 33)) {
    snap = inst.db.Freeze();
  }
};

Workload& SharedWorkload() {
  static Workload w;
  return w;
}

Nfa HotQuery() { return StaircaseNfa(2, 2); }

// ------------------------------------------------ warm vs cold Prepare

void BM_Cache_PrepareCold(benchmark::State& state) {
  Workload& w = SharedWorkload();
  EngineOptions opts;
  opts.num_threads = 1;
  opts.plan_cache_bytes = 0;  // every Prepare builds from scratch
  QueryEngine engine(opts);
  engine.InstallSnapshot(w.snap);
  Nfa query = HotQuery();
  for (auto _ : state) {
    QueryId q = engine.Prepare(query, w.inst.source, w.inst.target);
    benchmark::DoNotOptimize(q);
  }
  state.counters["misses"] =
      static_cast<double>(engine.Stats().plan_cache.misses);
}
BENCHMARK(BM_Cache_PrepareCold)->Unit(benchmark::kMicrosecond);

void BM_Cache_PrepareWarm(benchmark::State& state) {
  Workload& w = SharedWorkload();
  EngineOptions opts;
  opts.num_threads = 1;
  QueryEngine engine(opts);
  engine.InstallSnapshot(w.snap);
  Nfa query = HotQuery();
  engine.Prepare(query, w.inst.source, w.inst.target);  // the one build
  for (auto _ : state) {
    QueryId q = engine.Prepare(query, w.inst.source, w.inst.target);
    benchmark::DoNotOptimize(q);
  }
  EngineStats stats = engine.Stats();
  state.counters["hits"] = static_cast<double>(stats.plan_cache.hits);
  // The acceptance invariant, visible in the JSON: exactly one build
  // ever ran, no matter how many iterations the leveling chose.
  state.counters["misses"] = static_cast<double>(stats.plan_cache.misses);
}
BENCHMARK(BM_Cache_PrepareWarm)->Unit(benchmark::kMicrosecond);

// ------------------------------------------------------- the Zipf mix

void BM_Cache_ZipfPrepareMix(benchmark::State& state) {
  Workload& w = SharedWorkload();
  const bool warm = state.range(0) != 0;
  EngineOptions opts;
  opts.num_threads = 2;
  if (!warm) opts.plan_cache_bytes = 0;
  QueryEngine engine(opts);
  engine.InstallSnapshot(w.snap);
  LabelDictionary* dict = w.inst.db.mutable_dict();
  const auto& shapes = ShapeVariants();

  Zipf zipf(shapes.size(), 1.0, 42);
  std::vector<int64_t> prepare_ns;
  uint64_t answers = 0;
  constexpr int kDrawsPerIter = 32;
  constexpr uint32_t kBatch = 64;

  auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    for (int d = 0; d < kDrawsPerIter; ++d) {
      size_t shape = zipf();
      const auto& variants = shapes[shape];
      const std::string& pattern = variants[zipf.raw() % variants.size()];
      auto p0 = std::chrono::steady_clock::now();
      PrepareRegexResult r = engine.PrepareRegex(pattern, dict,
                                                 w.inst.source,
                                                 w.inst.target);
      prepare_ns.push_back(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - p0)
              .count());
      if (!r.ok) continue;
      PumpResult batch = engine.Pump(engine.OpenSession(r.id), kBatch);
      answers += batch.walks.size();
    }
  }
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  EngineStats stats = engine.Stats();
  uint64_t lookups = stats.plan_cache.hits + stats.plan_cache.misses;
  state.counters["answers_per_sec"] =
      secs > 0 ? static_cast<double>(answers) / secs : 0;
  state.counters["hit_rate"] =
      lookups > 0
          ? static_cast<double>(stats.plan_cache.hits) / lookups
          : 0;
  std::sort(prepare_ns.begin(), prepare_ns.end());
  if (!prepare_ns.empty()) {
    state.counters["p50_prepare_ns"] =
        static_cast<double>(prepare_ns[prepare_ns.size() / 2]);
    state.counters["p99_prepare_ns"] = static_cast<double>(
        prepare_ns[std::min(prepare_ns.size() - 1,
                            prepare_ns.size() * 99 / 100)]);
  }
  // Execution-tier mix of the prepared plans (cache hits included) —
  // how much of this workload rides each kernel path.
  state.counters["tier_simple"] = static_cast<double>(stats.tier_simple);
  state.counters["tier_single_word"] =
      static_cast<double>(stats.tier_single_word);
  state.counters["tier_general"] = static_cast<double>(stats.tier_general);
}
BENCHMARK(BM_Cache_ZipfPrepareMix)
    ->ArgName("warm")->Arg(0)->Arg(1)
    ->UseRealTime()->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------- multi-source prefix share

void BM_Cache_MultiSourceBatch(benchmark::State& state) {
  Instance inst = Grid(8, 8);
  Snapshot snap = inst.db.Freeze();
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  std::vector<uint32_t> sources;
  for (uint32_t s = 0; s < k; ++s) sources.push_back(s);
  Nfa query = AnyKDfa(14, 1);

  EngineOptions opts;
  opts.num_threads = 1;
  opts.plan_cache_bytes = 0;  // measure the build, not the cache
  QueryEngine engine(opts);
  engine.InstallSnapshot(snap);

  uint64_t prepares = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::vector<QueryId> ids = engine.PrepareBatch(query, sources, inst.target);
    benchmark::DoNotOptimize(ids.data());
    prepares += ids.size();
  }
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  state.counters["prepares_per_sec"] =
      secs > 0 ? static_cast<double>(prepares) / secs : 0;
}
BENCHMARK(BM_Cache_MultiSourceBatch)
    ->ArgName("sources")->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_Cache_PerSourcePrepare(benchmark::State& state) {
  Instance inst = Grid(8, 8);
  Snapshot snap = inst.db.Freeze();
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  Nfa query = AnyKDfa(14, 1);

  EngineOptions opts;
  opts.num_threads = 1;
  opts.plan_cache_bytes = 0;
  QueryEngine engine(opts);
  engine.InstallSnapshot(snap);

  uint64_t prepares = 0;
  auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    for (uint32_t s = 0; s < k; ++s) {
      QueryId q = engine.Prepare(query, s, inst.target);
      benchmark::DoNotOptimize(q);
      ++prepares;
    }
  }
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  state.counters["prepares_per_sec"] =
      secs > 0 ? static_cast<double>(prepares) / secs : 0;
}
BENCHMARK(BM_Cache_PerSourcePrepare)
    ->ArgName("sources")->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dsw
