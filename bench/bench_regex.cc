// E9 (Corollary 20 / Sections 5.1-5.2): regex queries via Thompson vs
// Glushkov.
//
// The family (l0|...|l_{m-1})* l0 (l0|...|l_{m-1})* has |R| = Theta(m);
// Thompson yields O(m) transitions (with epsilon), Glushkov O(m^2).
// Epsilon handling is free (Section 5.1), so the Thompson pipeline's
// preprocessing and delay grow linearly while Glushkov's grow
// quadratically — the crossover the paper predicts.

#include <benchmark/benchmark.h>

#include <cassert>
#include <string>

#include "automaton/glushkov.h"
#include "automaton/thompson.h"
#include "bench_util.h"
#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/trimmed_index.h"
#include "regex/regex_parser.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

Instance RegexInstance(uint32_t m) {
  // Layered topology guarantees source-target reachability (lambda = 7)
  // for every alphabet size.
  LayeredGraphParams params;
  params.layers = 6;
  params.width = 24;
  params.edges_per_vertex = 4;
  params.num_labels = m;
  params.seed = 57;
  return LayeredGraph(params);
}

template <bool kThompson>
void RunRegexPipeline(benchmark::State& state) {
  uint32_t m = static_cast<uint32_t>(state.range(0));
  Instance inst = RegexInstance(m);
  auto ast = ParseRegex(ContainsL0Regex(m));
  assert(ast.ok());
  // Label interning is not a structural mutation, so recompiling the
  // regex inside the timed loop never stales the snapshot.
  Snapshot snap = inst.db.Freeze();
  bench::DelayProfile profile;
  size_t transitions = 0;
  for (auto _ : state) {
    LabelDictionary* dict = inst.db.mutable_dict();
    Nfa nfa = kThompson ? ThompsonNfa(*ast.value(), dict)
                        : GlushkovNfa(*ast.value(), dict);
    transitions = nfa.num_transitions() + nfa.num_epsilon_transitions();
    Annotation ann = Annotate(snap, nfa, inst.source, inst.target);
    TrimmedIndex index(snap, ann);
    TrimmedEnumerator en(ann, index, inst.source, inst.target);
    profile = bench::MeasureDelays(&en);
  }
  bench::ReportDelays(state, profile);
  state.counters["regex_atoms"] = static_cast<double>(2 * m + 1);
  state.counters["nfa_transitions"] = static_cast<double>(transitions);
}

void BM_Regex_ThompsonPipeline(benchmark::State& state) {
  RunRegexPipeline<true>(state);
}
BENCHMARK(BM_Regex_ThompsonPipeline)->RangeMultiplier(2)->Range(2, 64)
    ->Unit(benchmark::kMillisecond);

void BM_Regex_GlushkovPipeline(benchmark::State& state) {
  RunRegexPipeline<false>(state);
}
BENCHMARK(BM_Regex_GlushkovPipeline)->RangeMultiplier(2)->Range(2, 64)
    ->Unit(benchmark::kMillisecond);

// Translation cost alone (Theorem 19: Thompson runs in O(|R|)).
template <bool kThompson>
void RunTranslationOnly(benchmark::State& state) {
  uint32_t m = static_cast<uint32_t>(state.range(0));
  auto ast = ParseRegex(ContainsL0Regex(m));
  assert(ast.ok());
  LabelDictionary dict;
  for (uint32_t i = 0; i < m; ++i) {
    std::string name("l");
    name += std::to_string(i);
    dict.Intern(name);
  }
  for (auto _ : state) {
    Nfa nfa = kThompson ? ThompsonNfa(*ast.value(), &dict)
                        : GlushkovNfa(*ast.value(), &dict);
    benchmark::DoNotOptimize(nfa.num_transitions());
  }
}

void BM_Regex_ThompsonTranslation(benchmark::State& state) {
  RunTranslationOnly<true>(state);
}
BENCHMARK(BM_Regex_ThompsonTranslation)->RangeMultiplier(2)->Range(2, 128);

void BM_Regex_GlushkovTranslation(benchmark::State& state) {
  RunTranslationOnly<false>(state);
}
BENCHMARK(BM_Regex_GlushkovTranslation)->RangeMultiplier(2)->Range(2, 128);

}  // namespace
}  // namespace dsw
