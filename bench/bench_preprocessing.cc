// E1 + E2 (Theorem 2): preprocessing time O(|D| x |A|).
//
// E1: fixed query, layered databases with |E| doubling — expect time per
//     edge to stay roughly constant (linearity in |D|).
// E2: fixed database, query automata with |Delta| doubling — expect time
//     per transition to stay roughly constant (linearity in |A|).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/annotate.h"
#include "core/trimmed_index.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

// E1: |D| sweep at fixed |A|. Arg: layer width multiplier.
void BM_Preprocess_VsDbSize(benchmark::State& state) {
  LayeredGraphParams params;
  params.layers = 16;
  params.width = static_cast<uint32_t>(state.range(0));
  params.edges_per_vertex = 8;
  params.num_labels = 2;
  params.extra_labels = 1;
  params.multi_label_p = 0.3;
  params.seed = 17;
  Instance inst = LayeredGraph(params);
  Nfa query = StaircaseNfa(2, 2);

  Snapshot snap = inst.db.Freeze();
  for (auto _ : state) {
    Annotation ann = Annotate(snap, query, inst.source, inst.target);
    TrimmedIndex index(snap, ann);
    benchmark::DoNotOptimize(index.num_slots());
  }
  state.counters["edges"] = static_cast<double>(inst.db.num_edges());
  state.counters["db_size"] = static_cast<double>(inst.db.size());
  state.counters["ns_per_edge"] = benchmark::Counter(
      static_cast<double>(inst.db.num_edges()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}
BENCHMARK(BM_Preprocess_VsDbSize)->RangeMultiplier(2)->Range(16, 512);

// E2: |A| sweep at fixed |D|. Arg: staircase width (|Delta| ~ 4 x width).
void BM_Preprocess_VsAutomatonSize(benchmark::State& state) {
  LayeredGraphParams params;
  params.layers = 12;
  params.width = 48;
  params.edges_per_vertex = 6;
  params.num_labels = 2;
  params.extra_labels = 1;
  params.multi_label_p = 0.3;
  params.seed = 23;
  Instance inst = LayeredGraph(params);
  Nfa query = StaircaseNfa(static_cast<uint32_t>(state.range(0)), 2);

  Snapshot snap = inst.db.Freeze();
  for (auto _ : state) {
    Annotation ann = Annotate(snap, query, inst.source, inst.target);
    TrimmedIndex index(snap, ann);
    benchmark::DoNotOptimize(index.num_slots());
  }
  state.counters["transitions"] =
      static_cast<double>(query.num_transitions());
  state.counters["ns_per_transition"] = benchmark::Counter(
      static_cast<double>(query.num_transitions()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}
BENCHMARK(BM_Preprocess_VsAutomatonSize)->RangeMultiplier(2)->Range(2, 64);

// E1g: Grid workload at |Q| >= 64 — the acceptance workload for the
// label-stratified hot path. StaircaseNfa(63, 1) has 64 states; on an
// n x n grid (n >= 33) lambda = 2(n - 1) >= 63, so annotation visits
// every level of a maximally wide staircase. Arg: grid side n.
void BM_Preprocess_Grid(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  Instance inst = Grid(n, n);
  Nfa query = StaircaseNfa(63, 1);

  Snapshot snap = inst.db.Freeze();
  for (auto _ : state) {
    Annotation ann = Annotate(snap, query, inst.source, inst.target);
    TrimmedIndex index(snap, ann);
    benchmark::DoNotOptimize(index.num_slots());
  }
  state.counters["edges"] = static_cast<double>(inst.db.num_edges());
  state.counters["states"] = static_cast<double>(query.num_states());
  state.counters["ns_per_edge"] = benchmark::Counter(
      static_cast<double>(inst.db.num_edges()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}
BENCHMARK(BM_Preprocess_Grid)->Arg(33)->Arg(48)->Arg(64);

// E1n: EmbedInNoise workload at |Q| >= 64 — a BubbleChain core
// (lambda = 64) drowned in reachable-but-useless noise, so annotation
// wades through the noise at full staircase width while trimming cuts
// straight back to the core. Arg: noise vertex count (edges = 4x).
void BM_Preprocess_EmbedInNoise(benchmark::State& state) {
  Instance core = BubbleChain(32, 2);
  uint32_t noise = static_cast<uint32_t>(state.range(0));
  Instance inst = EmbedInNoise(core, noise, 4 * noise, 97);
  Nfa query = StaircaseNfa(64, 2);

  Snapshot snap = inst.db.Freeze();
  for (auto _ : state) {
    Annotation ann = Annotate(snap, query, inst.source, inst.target);
    TrimmedIndex index(snap, ann);
    benchmark::DoNotOptimize(index.num_slots());
  }
  state.counters["edges"] = static_cast<double>(inst.db.num_edges());
  state.counters["states"] = static_cast<double>(query.num_states());
  state.counters["ns_per_edge"] = benchmark::Counter(
      static_cast<double>(inst.db.num_edges()),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}
BENCHMARK(BM_Preprocess_EmbedInNoise)->Arg(512)->Arg(2048)->Arg(8192);

// E2b: densest possible query (complete automaton) to stress |Delta|.
void BM_Preprocess_CompleteQuery(benchmark::State& state) {
  LayeredGraphParams params;
  params.layers = 10;
  params.width = 32;
  params.edges_per_vertex = 4;
  params.seed = 29;
  Instance inst = LayeredGraph(params);
  Nfa query = CompleteNfa(static_cast<uint32_t>(state.range(0)), 2);

  Snapshot snap = inst.db.Freeze();
  for (auto _ : state) {
    Annotation ann = Annotate(snap, query, inst.source, inst.target);
    benchmark::DoNotOptimize(ann.lambda);
  }
  state.counters["transitions"] =
      static_cast<double>(query.num_transitions());
}
BENCHMARK(BM_Preprocess_CompleteQuery)->RangeMultiplier(2)->Range(2, 16);

}  // namespace
}  // namespace dsw
