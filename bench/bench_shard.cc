// E11: sharded preprocessing scaling — annotate + trim wall clock vs
// shard count, on the two poles of the frontier-shape spectrum:
//
//  - EmbedInNoise (wide frontiers, few levels): the scaling workload.
//    Supersteps amortize the barrier over thousands of relaxations, so
//    real time should drop with shards on a multi-core host. CI's
//    perf-smoke job gates on >= 2x real-time speedup from 1 to 4 shards
//    on this arm.
//  - Grid (anti-diagonal frontiers of ~n vertices, ~2n levels): the
//    barrier-adversarial pole, reported honestly — per-superstep work is
//    tiny, so sharding overhead can win and the curve is allowed to be
//    flat or inverted.
//
// Both report UseRealTime (the scaling signal) and process CPU time
// (stable across core counts — what the regression guard compares).
// shards:1 routes through the sequential path, so the 1-shard arm is
// also a regression sentinel for plain Annotate/TrimmedIndex.

#include <benchmark/benchmark.h>

#include "core/annotate.h"
#include "core/trimmed_index.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

void RunPreprocess(benchmark::State& state, Instance& inst,
                   const Nfa& query) {
  AnnotateOptions opts;
  opts.num_shards = static_cast<uint32_t>(state.range(0));
  Snapshot snap = inst.db.Freeze();
  for (auto _ : state) {
    Annotation ann =
        Annotate(snap, query, inst.source, inst.target, opts);
    TrimmedIndex index(snap, ann, opts);
    benchmark::DoNotOptimize(index.num_slots());
  }
  state.counters["edges"] = static_cast<double>(inst.db.num_edges());
  state.counters["shards"] = static_cast<double>(opts.num_shards);
}

// Wide-frontier scaling arm: a BubbleChain core whose answer structure
// is fixed, embedded in a large random noise graph the BFS must wade
// through — lots of parallel relax work per level.
void BM_Shard_EmbedInNoise(benchmark::State& state) {
  Instance inst = EmbedInNoise(BubbleChain(32, 2), 8192, 32768, 97);
  Nfa query = StaircaseNfa(64, 2);
  RunPreprocess(state, inst, query);
}
BENCHMARK(BM_Shard_EmbedInNoise)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

// Narrow-frontier adversarial arm: ~2n supersteps of ~n-vertex
// frontiers; barrier cost per superstep is the dominant term.
void BM_Shard_Grid(benchmark::State& state) {
  Instance inst = Grid(96, 96);
  Nfa query = StaircaseNfa(63, 1);
  RunPreprocess(state, inst, query);
}
BENCHMARK(BM_Shard_Grid)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
}  // namespace dsw
