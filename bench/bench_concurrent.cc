// E10: the concurrent query engine under a Zipfian query mix.
//
// One frozen snapshot, a handful of prepared queries whose popularity
// follows a Zipf(1.0) law, and a stream of sessions pumped to
// exhaustion in batches through the worker pool — the headline numbers
// are aggregate throughput (answers_per_sec, real-time) and the p99 of
// the enqueue-to-first-answer latency (p99_first_answer_ns) as the
// thread count sweeps 1 -> 4. Scaling answers_per_sec by ~the thread
// count is the acceptance property (checked in CI, where multiple cores
// actually exist; on a 1-core host the curve is flat by construction).
//
// cpu_time is measured process-wide (MeasureProcessCPUTime), so the
// regression guard tracks total work per answer — a number that stays
// comparable across thread counts — while iteration leveling uses real
// time (UseRealTime).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <deque>
#include <future>
#include <random>
#include <utility>
#include <vector>

#include "core/annotate.h"
#include "core/database.h"
#include "core/nfa.h"
#include "core/resumable_index.h"
#include "engine/engine.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

// Zipf(s) over ranks 0..n-1 via inverse-CDF lookup.
class Zipf {
 public:
  Zipf(size_t n, double s, uint64_t seed) : rng_(seed) {
    cdf_.reserve(n);
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_.push_back(sum);
    }
    for (double& c : cdf_) c /= sum;
  }

  size_t operator()() {
    double u = dist_(rng_);
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::mt19937_64 rng_;
  std::uniform_real_distribution<double> dist_{0.0, 1.0};
  std::vector<double> cdf_;
};

// A BubbleChain core (2^10 answers, lambda = 20) drowned in noise, and
// a query mix of different automaton shapes over it. Shared by every
// thread-count arm so the work per session is identical.
struct Workload {
  Instance inst;
  Snapshot snap;
  std::vector<Nfa> queries;

  Workload() : inst(EmbedInNoise(BubbleChain(10, 2), 200, 800, 33)) {
    snap = inst.db.Freeze();
    queries.push_back(StaircaseNfa(2, 2));  // rank 0: the hot query
    queries.push_back(StaircaseNfa(1, 2));
    queries.push_back(CompleteNfa(3, 2));
    queries.push_back(StaircaseNfa(3, 2));
  }
};

Workload& SharedWorkload() {
  static Workload w;
  return w;
}

// Drives kSessions Zipf-picked sessions to exhaustion, keeping up to
// 2 x threads pump futures in flight, and returns the answers counted.
uint64_t DriveSessions(QueryEngine& engine,
                       const std::vector<QueryId>& ids, uint64_t seed,
                       uint32_t threads) {
  constexpr size_t kSessions = 24;
  constexpr uint32_t kBatch = 64;
  Zipf zipf(ids.size(), 1.0, seed);
  uint64_t answers = 0;
  std::deque<std::pair<SessionId, std::future<PumpResult>>> inflight;
  size_t opened = 0;
  auto issue = [&] {
    if (opened >= kSessions) return;
    SessionId s = engine.OpenSession(ids[zipf()]);
    inflight.emplace_back(s, engine.PumpAsync(s, kBatch));
    ++opened;
  };
  for (size_t i = 0; i < 2 * threads && opened < kSessions; ++i) issue();
  while (!inflight.empty()) {
    auto [s, fut] = std::move(inflight.front());
    inflight.pop_front();
    PumpResult r = fut.get();
    answers += r.walks.size();
    if (r.status == PumpStatus::kOk)
      inflight.emplace_back(s, engine.PumpAsync(s, kBatch));
    else
      issue();
  }
  return answers;
}

void BM_Engine_ZipfMix(benchmark::State& state) {
  Workload& w = SharedWorkload();
  const uint32_t threads = static_cast<uint32_t>(state.range(0));
  QueryEngine engine(threads);
  engine.InstallSnapshot(w.snap);
  std::vector<QueryId> ids;
  for (const Nfa& q : w.queries)
    ids.push_back(engine.Prepare(q, w.inst.source, w.inst.target));

  uint64_t answers = 0;
  uint64_t seed = 1;
  auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    answers += DriveSessions(engine, ids, seed++, threads);
  }
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();

  state.counters["threads"] = static_cast<double>(threads);
  state.counters["answers"] = static_cast<double>(answers);
  // Aggregate throughput over the whole run, wall-clock — the scaling
  // headline. (A kIsRate counter would divide by *cpu* time, which is
  // process-wide here and therefore ~constant across thread counts.)
  state.counters["answers_per_sec"] =
      secs > 0 ? static_cast<double>(answers) / secs : 0;

  std::vector<int64_t> lat = engine.FirstAnswerLatenciesNs();
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    state.counters["p50_first_answer_ns"] =
        static_cast<double>(lat[lat.size() / 2]);
    state.counters["p99_first_answer_ns"] =
        static_cast<double>(lat[std::min(lat.size() - 1,
                                         lat.size() * 99 / 100)]);
  }

  // Execution-tier mix of the prepared plans — which kernel path the
  // concurrent workload actually exercised.
  EngineStats stats = engine.Stats();
  state.counters["tier_simple"] = static_cast<double>(stats.tier_simple);
  state.counters["tier_single_word"] =
      static_cast<double>(stats.tier_single_word);
  state.counters["tier_general"] = static_cast<double>(stats.tier_general);
}
BENCHMARK(BM_Engine_ZipfMix)
    ->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime()->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);

// Prepare cost in isolation: annotate + trim + queue build for the hot
// query against the already-frozen snapshot — the per-query setup the
// engine amortizes across sessions. Built directly (same work as
// QueryEngine::Prepare) so iterations don't accumulate prepared queries
// in an engine's table.
void BM_Engine_PrepareHotQuery(benchmark::State& state) {
  Workload& w = SharedWorkload();
  for (auto _ : state) {
    Annotation ann =
        Annotate(w.snap, w.queries[0], w.inst.source, w.inst.target);
    ResumableIndex index(w.snap, ann);
    benchmark::DoNotOptimize(index.empty());
  }
}
BENCHMARK(BM_Engine_PrepareHotQuery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dsw
