// E0: the paper's worked example (Figures 1 and 3, Example 9) as a
// micro-benchmark — preprocessing and full enumeration of the four
// answers on the five-vertex instance. Sanity anchor for the larger
// experiments.

#include <benchmark/benchmark.h>

#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/trimmed_index.h"
#include "workload/figure1.h"

namespace dsw {
namespace {

void BM_Figure1_Preprocess(benchmark::State& state) {
  Figure1 fig = MakeFigure1();
  Snapshot snap = fig.db.Freeze();
  for (auto _ : state) {
    Annotation ann = Annotate(snap, fig.query, fig.alix, fig.bob);
    TrimmedIndex index(snap, ann);
    benchmark::DoNotOptimize(index.num_slots());
  }
}
BENCHMARK(BM_Figure1_Preprocess);

void BM_Figure1_Enumerate(benchmark::State& state) {
  Figure1 fig = MakeFigure1();
  Snapshot snap = fig.db.Freeze();
  Annotation ann = Annotate(snap, fig.query, fig.alix, fig.bob);
  TrimmedIndex index(snap, ann);
  size_t outputs = 0;
  for (auto _ : state) {
    for (TrimmedEnumerator en(ann, index, fig.alix, fig.bob);
         en.Valid(); en.Next()) {
      benchmark::DoNotOptimize(en.walk().edges.data());
      ++outputs;
    }
  }
  state.counters["answers_per_iter"] =
      static_cast<double>(outputs) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_Figure1_Enumerate);

void BM_Figure1_EndToEnd(benchmark::State& state) {
  Figure1 fig = MakeFigure1();
  Snapshot snap = fig.db.Freeze();
  for (auto _ : state) {
    Annotation ann = Annotate(snap, fig.query, fig.alix, fig.bob);
    TrimmedIndex index(snap, ann);
    size_t n = 0;
    for (TrimmedEnumerator en(ann, index, fig.alix, fig.bob);
         en.Valid(); en.Next()) {
      ++n;
    }
    if (n != 4) state.SkipWithError("expected 4 answers");
  }
}
BENCHMARK(BM_Figure1_EndToEnd);

}  // namespace
}  // namespace dsw
