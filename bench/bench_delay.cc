// E3 + E4 + E5 (Theorem 2): delay O(lambda x |A|), independent of |D|.
//
// E3:  a fixed bubble-chain core (2^12 answers) embedded in a noise
//      graph of growing size — max and mean delay must stay flat as |D|
//      grows.
// E3b: the adversarial dead-candidate family (DeadFanout/ForkChainNfa):
//      a fork vertex whose d fanout edges are all candidates but dead
//      for one prefix's reachable-run set. The certificate (B-list)
//      enumerator stays flat in d; the pre-certificate trial-filter
//      baseline is measured alongside and degrades linearly — the
//      before/after of the honest Theorem 2 bound.
// E4:  star-of-chains with depth sweep — delay grows linearly in lambda.
// E5:  fixed data, staircase query width sweep — delay grows linearly in
//      |Delta|.
//
// Enumerator construction (which performs the search for the first
// answer) is reported as setup_ns, separate from the per-output delays;
// ops_per_output_* report the timer-free op-count proxy (delta-row ORs
// + certificate probes) the delay tests assert on.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>

#include "baseline/trial_filter_enumerator.h"
#include "bench_util.h"
#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/trimmed_index.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

template <typename Enumerator>
void RunDelayBench(benchmark::State& state, Instance& inst,
                   const Nfa& query) {
  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, query, inst.source, inst.target);
  TrimmedIndex index(snap, ann);
  bench::DelayProfile profile;
  for (auto _ : state) {
    profile = bench::MeasureConstructionAndDelays<Enumerator>(
        /*max_outputs=*/200000, ann, index, inst.source, inst.target);
  }
  bench::ReportDelays(state, profile);

  // One untimed drain for the op-count proxy: max and mean per-output
  // work (delta-row ORs + certificate probes), the quantity Theorem 2
  // bounds by O(lambda x |A|). The final (invalidating) Next is
  // included — the end-of-enumeration scan is a delay like any other.
  Enumerator en(ann, index, inst.source, inst.target);
  uint64_t outputs = 0;
  const uint64_t setup_ops = en.stats().total();  // the first FindNext
  uint64_t last = setup_ops;
  uint64_t max_ops = 0;
  while (en.Valid()) {
    ++outputs;
    en.Next();
    uint64_t now = en.stats().total();
    max_ops = std::max(max_ops, now - last);
    last = now;
  }
  state.counters["ops_per_output_max"] = static_cast<double>(max_ops);
  state.counters["ops_per_output_mean"] =
      outputs == 0
          ? 0.0
          : static_cast<double>(en.stats().total() - setup_ops) /
                static_cast<double>(outputs);
  state.counters["setup_ops"] = static_cast<double>(setup_ops);
  state.counters["lambda"] = static_cast<double>(ann.lambda);
  state.counters["db_size"] = static_cast<double>(inst.db.size());
  state.counters["transitions"] =
      static_cast<double>(query.num_transitions());
}

// E3: delay must not depend on |D|. Arg: noise edges (x1000).
void BM_Delay_VsDbSize(benchmark::State& state) {
  Instance core = BubbleChain(12, 2);
  uint32_t noise_edges = static_cast<uint32_t>(state.range(0)) * 1000;
  Instance inst = EmbedInNoise(core, noise_edges / 4 + 1, noise_edges, 41);
  Nfa query = StaircaseNfa(1, 2);
  RunDelayBench<TrimmedEnumerator>(state, inst, query);
}
BENCHMARK(BM_Delay_VsDbSize)->RangeMultiplier(4)->Range(1, 256)
    ->Unit(benchmark::kMillisecond);

// E3b: delay must not depend on the dead-candidate fanout. Arg: the
// fanout d of the fork vertex (answers = d + 1, lambda = 18).
constexpr uint32_t kForkTail = 16;

void BM_Delay_AdversarialFanout(benchmark::State& state) {
  Instance inst = DeadFanout(static_cast<uint32_t>(state.range(0)),
                             kForkTail);
  Nfa query = ForkChainNfa(kForkTail);
  RunDelayBench<TrimmedEnumerator>(state, inst, query);
}
BENCHMARK(BM_Delay_AdversarialFanout)->RangeMultiplier(4)->Range(4, 4096)
    ->Unit(benchmark::kMicrosecond);

// E3b baseline: the pre-certificate trial-filter enumerator on the same
// family — same answers, same order, but the dead candidates are
// scanned, so max delay grows linearly in d.
void BM_Delay_AdversarialFanoutTrialRef(benchmark::State& state) {
  Instance inst = DeadFanout(static_cast<uint32_t>(state.range(0)),
                             kForkTail);
  Nfa query = ForkChainNfa(kForkTail);
  RunDelayBench<TrialFilterEnumerator>(state, inst, query);
}
BENCHMARK(BM_Delay_AdversarialFanoutTrialRef)
    ->RangeMultiplier(4)->Range(4, 4096)->Unit(benchmark::kMicrosecond);

// E4: delay linear in lambda. Arg: chain depth = lambda.
void BM_Delay_VsLambda(benchmark::State& state) {
  Instance inst = StarOfChains(64, static_cast<uint32_t>(state.range(0)), 2);
  Nfa query = StaircaseNfa(1, 2);
  RunDelayBench<TrimmedEnumerator>(state, inst, query);
}
BENCHMARK(BM_Delay_VsLambda)->RangeMultiplier(2)->Range(4, 256)
    ->Unit(benchmark::kMillisecond);

// E5: delay linear in |A|. Arg: number of states of a complete automaton
// (every state reaches every state on every label), which maximizes the
// certificate sets and the B-list sizes — the quantities behind the
// O(lambda x |A|) delay bound.
void BM_Delay_VsAutomatonSize(benchmark::State& state) {
  Instance inst = BubbleChain(10, 2);
  Nfa query = CompleteNfa(static_cast<uint32_t>(state.range(0)), 2);
  RunDelayBench<TrimmedEnumerator>(state, inst, query);
}
BENCHMARK(BM_Delay_VsAutomatonSize)->RangeMultiplier(2)->Range(2, 32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dsw
