// E3 + E4 + E5 (Theorem 2): delay O(lambda x |A|), independent of |D|.
//
// E3: a fixed bubble-chain core (2^12 answers) embedded in a noise graph
//     of growing size — max and mean delay must stay flat as |D| grows.
// E4: star-of-chains with depth sweep — delay grows linearly in lambda.
// E5: fixed data, staircase query width sweep — delay grows linearly in
//     |Delta|.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/trimmed_index.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

void RunDelayBench(benchmark::State& state, const Instance& inst,
                   const Nfa& query) {
  Annotation ann = Annotate(inst.db, query, inst.source, inst.target);
  TrimmedIndex index(inst.db, ann);
  bench::DelayProfile profile;
  for (auto _ : state) {
    TrimmedEnumerator en(inst.db, ann, index, inst.source, inst.target);
    profile = bench::MeasureDelays(&en);
  }
  bench::ReportDelays(state, profile);
  state.counters["lambda"] = static_cast<double>(ann.lambda);
  state.counters["db_size"] = static_cast<double>(inst.db.size());
  state.counters["transitions"] =
      static_cast<double>(query.num_transitions());
}

// E3: delay must not depend on |D|. Arg: noise edges (x1000).
void BM_Delay_VsDbSize(benchmark::State& state) {
  Instance core = BubbleChain(12, 2);
  uint32_t noise_edges = static_cast<uint32_t>(state.range(0)) * 1000;
  Instance inst = EmbedInNoise(core, noise_edges / 4 + 1, noise_edges, 41);
  Nfa query = StaircaseNfa(1, 2);
  RunDelayBench(state, inst, query);
}
BENCHMARK(BM_Delay_VsDbSize)->RangeMultiplier(4)->Range(1, 256)
    ->Unit(benchmark::kMillisecond);

// E4: delay linear in lambda. Arg: chain depth = lambda.
void BM_Delay_VsLambda(benchmark::State& state) {
  Instance inst = StarOfChains(64, static_cast<uint32_t>(state.range(0)), 2);
  Nfa query = StaircaseNfa(1, 2);
  RunDelayBench(state, inst, query);
}
BENCHMARK(BM_Delay_VsLambda)->RangeMultiplier(2)->Range(4, 256)
    ->Unit(benchmark::kMillisecond);

// E5: delay linear in |A|. Arg: number of states of a complete automaton
// (every state reaches every state on every label), which maximizes the
// certificate sets and the B-list sizes — the quantities behind the
// O(lambda x |A|) delay bound.
void BM_Delay_VsAutomatonSize(benchmark::State& state) {
  Instance inst = BubbleChain(10, 2);
  Nfa query = CompleteNfa(static_cast<uint32_t>(state.range(0)), 2);
  RunDelayBench(state, inst, query);
}
BENCHMARK(BM_Delay_VsAutomatonSize)->RangeMultiplier(2)->Range(2, 32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dsw
