// E8 (Theorem 18 / Section 4.2): the memoryless variant.
//
// NextOutput recomputes the position of the previous answer with a guided
// run. With the plain trimmed queues this costs an extra factor d (the
// in-degree: queues must be advanced linearly); ResumableTrim's O(1)
// SeekGe removes it. The star-of-chains family pins lambda and the
// answer count while sweeping the in-degree d of the target, so the
// linear-reseek cost surfaces directly.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/resumable_index.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

constexpr uint32_t kDepth = 32;

// Stateful enumeration (the main algorithm) as the reference point.
void BM_Memoryless_StatefulReference(benchmark::State& state) {
  Instance inst =
      StarOfChains(static_cast<uint32_t>(state.range(0)), kDepth, 2);
  Nfa query = StaircaseNfa(1, 2);
  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, query, inst.source, inst.target);
  ResumableIndex index(snap, ann);
  bench::DelayProfile profile;
  for (auto _ : state) {
    // Construction (= the first FindNext) is reported as setup_ns, not
    // folded into the first delay.
    profile = bench::MeasureConstructionAndDelays<ResumableEnumerator>(
        /*max_outputs=*/200000, ann, index, inst.source, inst.target);
  }
  bench::ReportDelays(state, profile);
  state.counters["in_degree"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Memoryless_StatefulReference)
    ->RangeMultiplier(4)->Range(4, 1024)->Unit(benchmark::kMillisecond);

// Memoryless chain: every answer recomputed from the previous one via
// SeekAfter (guided run + next output). Theorem 18: the per-output cost
// stays O(lambda x |A|) — flat in the in-degree.
void BM_Memoryless_SeekAfterChain(benchmark::State& state) {
  Instance inst =
      StarOfChains(static_cast<uint32_t>(state.range(0)), kDepth, 2);
  Nfa query = StaircaseNfa(1, 2);
  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, query, inst.source, inst.target);
  ResumableIndex index(snap, ann);
  // One enumerator instance is reused across NextOutput steps: the
  // memoryless model keeps the preprocessed structure (queues + cursors)
  // fixed and recomputes positions from the previous output alone.
  ResumableEnumerator en(ann, index, inst.source, inst.target);
  if (!en.Valid()) {
    state.SkipWithError("no answers");
    return;
  }
  const Walk first = en.walk();
  uint64_t outputs = 0;
  for (auto _ : state) {
    Walk prev = first;
    outputs = 1;
    while (en.SeekAfter(prev) && en.Valid()) {
      prev = en.walk();
      ++outputs;
    }
  }
  state.counters["outputs"] = static_cast<double>(outputs);
  state.counters["in_degree"] = static_cast<double>(state.range(0));
  state.counters["ns_per_output"] = benchmark::Counter(
      static_cast<double>(outputs),
      benchmark::Counter::kIsIterationInvariantRate |
          benchmark::Counter::kInvert);
}
BENCHMARK(BM_Memoryless_SeekAfterChain)
    ->RangeMultiplier(4)->Range(4, 1024)->Unit(benchmark::kMillisecond);

// The d-factor strawman: reposition by restarting the queues and
// advancing linearly to the previous edge (what Trim without resumability
// forces, cost O(d x lambda) per output).
void BM_Memoryless_LinearReseek(benchmark::State& state) {
  Instance inst =
      StarOfChains(static_cast<uint32_t>(state.range(0)), kDepth, 2);
  Nfa query = StaircaseNfa(1, 2);
  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, query, inst.source, inst.target);
  ResumableIndex index(snap, ann);
  ResumableEnumerator en(ann, index, inst.source, inst.target);
  if (!en.Valid()) {
    state.SkipWithError("no answers");
    return;
  }
  const Walk first = en.walk();
  uint64_t outputs = 0;
  uint64_t scanned = 0;
  for (auto _ : state) {
    Walk prev = first;
    outputs = 1;
    scanned = 0;  // per-chain count, identical every iteration
    while (true) {
      // Simulate the linear reposition cost along prev's path: for each
      // level, walk the queue from its start to the previous edge. An
      // edge sits in the queue of its *source* vertex (the level-i
      // choice point), so that is the queue to re-advance.
      for (size_t i = prev.edges.size(); i-- > 0;) {
        EdgeId e = prev.edges[i];
        VertexId u = inst.db.src(e);
        uint32_t ti = snap.tgt_idx(e);
        for (StateId p = 0; p < ann.num_states; ++p) {
          uint32_t slot = index.SlotOf(u, p);
          if (slot == kNoSlot) continue;
          uint32_t cur = index.RestartCursor(slot);
          while (!index.Exhausted(slot, cur) &&
                 index.Peek(slot, cur).tgt_idx < ti) {
            cur = index.Advanced(slot, cur);
            ++scanned;
          }
          benchmark::DoNotOptimize(cur);
        }
      }
      if (!en.SeekAfter(prev) || !en.Valid()) break;
      prev = en.walk();
      ++outputs;
    }
  }
  state.counters["outputs"] = static_cast<double>(outputs);
  state.counters["in_degree"] = static_cast<double>(state.range(0));
  // Cells scanned over one full SeekAfter chain; divided by outputs
  // this is ~(d - 1) / 2 — the linear factor the O(1) seek removes.
  state.counters["queue_cells_scanned"] = static_cast<double>(scanned);
  state.counters["cells_per_output"] =
      static_cast<double>(scanned) / static_cast<double>(outputs);
}
BENCHMARK(BM_Memoryless_LinearReseek)
    ->RangeMultiplier(4)->Range(4, 1024)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dsw
