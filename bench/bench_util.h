// Shared helpers for the benchmark harness: delay measurement and
// common counters. Delay is the wall-clock gap between two consecutive
// outputs of an enumerator (the quantity bounded by Theorem 2), measured
// with the steady clock around Next().

#ifndef DSW_BENCH_BENCH_UTIL_H_
#define DSW_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <utility>

#include "util/stopwatch.h"

namespace dsw::bench {

/// \brief Delay distribution of one enumeration run. setup_ns is the
/// enumerator-construction time (which performs the search for the
/// *first* answer, i.e. the first FindNext) and is reported separately:
/// folding it into the first measured delay would inflate max_delay_ns
/// and mask the E3 flatness the delay benches exist to show.
struct DelayProfile {
  uint64_t outputs = 0;
  int64_t max_delay_ns = 0;
  int64_t total_ns = 0;
  int64_t setup_ns = 0;

  double mean_delay_ns() const {
    return outputs == 0 ? 0.0
                        : static_cast<double>(total_ns) /
                              static_cast<double>(outputs);
  }
};

/// \brief Drains \p en (already positioned on its first answer), timing
/// each Next() gap, up to \p max_outputs answers (answer sets can be
/// exponential; delays are i.i.d. across the run, so a bounded sample is
/// representative). The gap before the first answer counts as
/// preprocessing, not delay. total_ns accumulates the measured Next()
/// gaps themselves, so mean_delay_ns is the mean of the same quantity
/// max_delay_ns is the max of — walk access and loop overhead stay out
/// of both.
template <typename Enumerator>
DelayProfile MeasureDelays(Enumerator* en, uint64_t max_outputs = 200000) {
  DelayProfile profile;
  while (en->Valid() && profile.outputs < max_outputs) {
    benchmark::DoNotOptimize(en->walk().edges.data());
    ++profile.outputs;
    Stopwatch gap;
    en->Next();
    int64_t ns = gap.ElapsedNs();
    profile.max_delay_ns = std::max(profile.max_delay_ns, ns);
    profile.total_ns += ns;
  }
  return profile;
}

/// \brief Constructs an Enumerator (timing the construction into
/// profile->setup_ns) and drains it through MeasureDelays, honoring
/// \p max_outputs. The setup/delay split keeps the first FindNext —
/// whose cost scales with preprocessing, not with the per-output bound
/// — out of the delay columns. max_outputs is a leading (not trailing)
/// parameter so it can never be swallowed by the constructor-argument
/// pack — a trailing default here would silently forward into the
/// Enumerator constructor instead of bounding the drain.
template <typename Enumerator, typename... Args>
DelayProfile MeasureConstructionAndDelays(uint64_t max_outputs,
                                          Args&&... args) {
  Stopwatch setup;
  Enumerator en(std::forward<Args>(args)...);
  int64_t setup_ns = setup.ElapsedNs();
  DelayProfile profile = MeasureDelays(&en, max_outputs);
  profile.setup_ns = setup_ns;
  return profile;
}

/// \brief Publishes a delay profile as benchmark counters.
inline void ReportDelays(benchmark::State& state,
                         const DelayProfile& profile) {
  state.counters["outputs"] = static_cast<double>(profile.outputs);
  state.counters["max_delay_ns"] =
      static_cast<double>(profile.max_delay_ns);
  state.counters["mean_delay_ns"] = profile.mean_delay_ns();
  state.counters["setup_ns"] = static_cast<double>(profile.setup_ns);
}

}  // namespace dsw::bench

#endif  // DSW_BENCH_BENCH_UTIL_H_
