// E11 (Section 5.3): the extensions.
//
// Cheapest walks: Dijkstra-based preprocessing vs the BFS preprocessing
// on the same instances (expected: a logarithmic PQ factor on top of
// O(|D| x |A|)). Multiplicity counting: integrated counting leaves the
// delay essentially unchanged. Many targets: one stop-free annotation
// amortized over k targets vs k independent runs.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/annotate.h"
#include "core/cheapest.h"
#include "core/enumerator.h"
#include "core/multi_target.h"
#include "core/trimmed_index.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

Instance WeightedInstance(int64_t scale) {
  LayeredGraphParams params;
  params.layers = 12;
  params.width = static_cast<uint32_t>(scale);
  params.edges_per_vertex = 6;
  params.num_labels = 2;
  params.extra_labels = 1;
  params.multi_label_p = 0.3;
  params.seed = 71;
  return LayeredGraph(params);
}

// E11a: BFS preprocessing (unit costs implicitly) as the reference.
void BM_Cheapest_BfsReference(benchmark::State& state) {
  Instance inst = WeightedInstance(state.range(0));
  Nfa query = StaircaseNfa(1, 2);
  for (auto _ : state) {
    Annotation ann = Annotate(inst.db, query, inst.source, inst.target);
    benchmark::DoNotOptimize(ann.lambda);
  }
  state.counters["edges"] = static_cast<double>(inst.db.num_edges());
}
BENCHMARK(BM_Cheapest_BfsReference)->RangeMultiplier(2)->Range(16, 256);

// E11b: Dijkstra preprocessing on the same product graph.
void BM_Cheapest_DijkstraAnnotate(benchmark::State& state) {
  Instance inst = WeightedInstance(state.range(0));
  Nfa query = StaircaseNfa(1, 2);
  std::vector<uint64_t> costs = RandomCosts(inst.db, 1, 16, 73);
  for (auto _ : state) {
    CheapestAnnotation ann =
        AnnotateCheapest(inst.db, query, costs, inst.source, inst.target);
    benchmark::DoNotOptimize(ann.best_cost);
  }
  state.counters["edges"] = static_cast<double>(inst.db.num_edges());
}
BENCHMARK(BM_Cheapest_DijkstraAnnotate)->RangeMultiplier(2)->Range(16, 256);

// E11c: cheapest-walk enumeration end to end.
void BM_Cheapest_Enumerate(benchmark::State& state) {
  Instance inst = WeightedInstance(64);
  Nfa query = StaircaseNfa(1, 2);
  std::vector<uint64_t> costs =
      RandomCosts(inst.db, 1, static_cast<uint64_t>(state.range(0)), 79);
  CheapestAnnotation ann =
      AnnotateCheapest(inst.db, query, costs, inst.source, inst.target);
  CheapestIndex index(inst.db, ann);
  bench::DelayProfile profile;
  for (auto _ : state) {
    CheapestEnumerator en(inst.db, ann, index, costs, inst.source,
                          inst.target);
    profile = bench::MeasureDelays(&en);
  }
  bench::ReportDelays(state, profile);
  state.counters["best_cost"] = static_cast<double>(ann.best_cost);
}
BENCHMARK(BM_Cheapest_Enumerate)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// E11d: multiplicity counting on/off (bubble chains have huge counts).
template <bool kCount>
void RunCounting(benchmark::State& state) {
  Instance inst = BubbleChain(static_cast<uint32_t>(state.range(0)), 2);
  Nfa query = StaircaseNfa(2, 2);
  Annotation ann = Annotate(inst.db, query, inst.source, inst.target);
  TrimmedIndex index(inst.db, ann);
  EnumeratorOptions opts;
  opts.count_multiplicities = kCount;
  bench::DelayProfile profile;
  uint64_t total_multiplicity = 0;
  for (auto _ : state) {
    TrimmedEnumerator en(inst.db, ann, index, inst.source, inst.target,
                         opts);
    total_multiplicity = 0;
    while (en.Valid()) {
      total_multiplicity += en.multiplicity();
      benchmark::DoNotOptimize(en.walk().edges.data());
      en.Next();
    }
    ++profile.outputs;
  }
  state.counters["total_multiplicity"] =
      static_cast<double>(total_multiplicity);
}

void BM_Multiplicity_Off(benchmark::State& state) { RunCounting<false>(state); }
BENCHMARK(BM_Multiplicity_Off)->DenseRange(6, 12, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Multiplicity_On(benchmark::State& state) { RunCounting<true>(state); }
BENCHMARK(BM_Multiplicity_On)->DenseRange(6, 12, 2)
    ->Unit(benchmark::kMillisecond);

// E11e: one-source-many-targets vs per-target annotations. Arg: number
// of targets sampled from a layered graph.
void BM_MultiTarget_Shared(benchmark::State& state) {
  Instance inst = WeightedInstance(32);
  Nfa query = StaircaseNfa(1, 2);
  uint32_t k = static_cast<uint32_t>(state.range(0));
  uint64_t answers = 0;
  for (auto _ : state) {
    MultiTargetQuery multi(inst.db, query, inst.source);
    answers = 0;
    for (uint32_t i = 0; i < k; ++i) {
      VertexId t = 1 + i * 7 % (static_cast<uint32_t>(
                                    inst.db.num_vertices()) -
                                1);
      for (auto en = multi.Enumerate(t); en.Valid() && answers < 100000;
           en.Next()) {
        ++answers;
      }
    }
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MultiTarget_Shared)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_MultiTarget_Independent(benchmark::State& state) {
  Instance inst = WeightedInstance(32);
  Nfa query = StaircaseNfa(1, 2);
  uint32_t k = static_cast<uint32_t>(state.range(0));
  uint64_t answers = 0;
  for (auto _ : state) {
    answers = 0;
    for (uint32_t i = 0; i < k; ++i) {
      VertexId t = 1 + i * 7 % (static_cast<uint32_t>(
                                    inst.db.num_vertices()) -
                                1);
      Annotation ann = Annotate(inst.db, query, inst.source, t);
      TrimmedIndex index(inst.db, ann);
      for (TrimmedEnumerator en(inst.db, ann, index, inst.source, t);
           en.Valid() && answers < 100000; en.Next()) {
        ++answers;
      }
    }
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_MultiTarget_Independent)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// E12 (Section 6 perspectives): delta-compressed output. Consecutive
// answers share suffixes; emitting only the changed prefix makes the
// amortized output size much smaller than lambda. The counter
// mean_delta_edges against lambda quantifies the saving.
void BM_DeltaOutput_AmortizedSize(benchmark::State& state) {
  Instance inst = BubbleChain(static_cast<uint32_t>(state.range(0)), 2);
  Nfa query = StaircaseNfa(1, 2);
  Annotation ann = Annotate(inst.db, query, inst.source, inst.target);
  TrimmedIndex index(inst.db, ann);
  uint64_t total_delta = 0;
  uint64_t outputs = 0;
  for (auto _ : state) {
    total_delta = 0;
    outputs = 0;
    for (TrimmedEnumerator en(inst.db, ann, index, inst.source,
                              inst.target);
         en.Valid(); en.Next()) {
      total_delta += en.delta_length();
      ++outputs;
    }
  }
  state.counters["lambda"] = static_cast<double>(ann.lambda);
  state.counters["outputs"] = static_cast<double>(outputs);
  state.counters["mean_delta_edges"] =
      outputs == 0 ? 0.0
                   : static_cast<double>(total_delta) /
                         static_cast<double>(outputs);
}
BENCHMARK(BM_DeltaOutput_AmortizedSize)->DenseRange(8, 16, 4)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dsw
