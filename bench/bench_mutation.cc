// E13: incremental maintenance under edge insertions. Measures the cost
// of bringing a prepared query's structures (Annotation + TrimmedIndex +
// ResumableIndex) up to date after a batch of k inserted edges, as a
// function of the mutation rate k / |E| (permille), two ways:
//
//   DeltaRepair  — DeltaContext + DeltaAnnotate wave + DeltaTrim patch +
//                  resumable re-layout (the incremental InstallSnapshot
//                  path of the engine)
//   FullRebuild  — Annotate product BFS + full backward sweep + layout
//                  (what every mutation used to cost)
//
// The inserted edges land in the noise region of the instance — the
// headline use case: writes that touch parts of the graph away from the
// query's answer set, where the wave's touched region stays small. Both
// arms apply identical insertions (same seed), and the repair arm times
// everything the engine's upgrade path would run, DeltaContext build
// included. The CI perf-smoke job gates DeltaRepair being >3x faster
// than FullRebuild at permille = 10 (a 1% mutation rate).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <random>

#include "core/annotate.h"
#include "core/database.h"
#include "core/delta_annotate.h"
#include "core/resumable_index.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

struct Fixture {
  Instance pristine;
  uint32_t noise_first;
  uint32_t noise_count;
  Nfa query;

  // The shape matters: noise never re-enters the core (EmbedInNoise
  // wires source -> noise and noise -> noise only), so the trimmed
  // useful set stays core-sized while the *annotation* spans the whole
  // noise region — and the wide staircase keeps the per-vertex state
  // sets dense, which the from-scratch product BFS pays for bit by bit
  // on every level while the repair's word-level fills and copies do
  // not. That asymmetry, not a microbenchmark accident, is what the
  // >3x CI gate pins.
  Fixture()
      : pristine(BubbleChain(16, 2)), query(StaircaseNfa(31, 2)) {
    noise_first = pristine.db.num_vertices();
    noise_count = 1500;
    pristine = EmbedInNoise(pristine, noise_count, 6000, 33);
  }

  static const Fixture& Get() {
    static Fixture fx;
    return fx;
  }

  uint32_t NumInserts(int64_t permille) const {
    auto k = static_cast<uint32_t>(pristine.db.num_edges() * permille / 1000);
    return k == 0 ? 1 : k;
  }

  // Applies the deterministic insertion batch to \p db (noise-region
  // endpoints; identical across arms and iterations).
  void Mutate(Database* db, uint32_t k) const {
    std::mt19937_64 rng(4242);
    auto noise_vertex = [&] {
      return noise_first + static_cast<uint32_t>(rng() % noise_count);
    };
    for (uint32_t i = 0; i < k; ++i)
      db->AddEdge(noise_vertex(), static_cast<uint32_t>(rng() % 2),
                  noise_vertex());
  }
};

void BM_Mutation_DeltaRepair(benchmark::State& state) {
  const Fixture& fx = Fixture::Get();
  const uint32_t k = fx.NumInserts(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Database db = fx.pristine.db;
    Snapshot s0 = db.Freeze();
    const uint64_t prev_gen = s0.generation();
    Annotation ann =
        Annotate(s0, fx.query, fx.pristine.source, fx.pristine.target);
    TrimmedIndex trim(s0, ann);
    fx.Mutate(&db, k);
    Snapshot ns = db.Freeze();
    EdgeDelta delta = ns.DeltaFrom(prev_gen);
    state.ResumeTiming();

    DeltaContext ctx(ns);
    AnnotationRepair rep = DeltaAnnotate(ns, delta, &ann);
    TrimmedIndex repaired = DeltaTrim(ns, ann, trim, rep, delta, ctx);
    ResumableIndex idx(ns, ann, std::move(repaired));
    benchmark::DoNotOptimize(idx);
  }
  state.counters["inserted_edges"] = k;
}
BENCHMARK(BM_Mutation_DeltaRepair)
    ->ArgName("permille")
    ->Arg(1)
    ->Arg(10)
    ->Arg(50);

void BM_Mutation_FullRebuild(benchmark::State& state) {
  const Fixture& fx = Fixture::Get();
  const uint32_t k = fx.NumInserts(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Database db = fx.pristine.db;
    db.Freeze();
    fx.Mutate(&db, k);
    Snapshot ns = db.Freeze();
    state.ResumeTiming();

    Annotation ann =
        Annotate(ns, fx.query, fx.pristine.source, fx.pristine.target);
    ResumableIndex idx(ns, ann);
    benchmark::DoNotOptimize(idx);
  }
  state.counters["inserted_edges"] = k;
}
BENCHMARK(BM_Mutation_FullRebuild)
    ->ArgName("permille")
    ->Arg(1)
    ->Arg(10)
    ->Arg(50);

}  // namespace
}  // namespace dsw
