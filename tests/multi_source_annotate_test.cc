// Multi-source prefix sharing (core/annotate.h AnnotateMultiSource):
// one block-replicated product BFS must be *bit-identical* to running
// Annotate once per source — not answer-equal, word-for-word equal.
// Slice(j) is compared against the per-source Annotation field by
// field: lambda, level count, each level's sorted vertex array, and
// every state-set word. On top of the representation check, the sliced
// annotations drive the full trim + enumerate pipeline and must emit
// the per-source walk sequences in the same order.
//
// Families x queries sweep the BFS's behavioral corners: sources with
// different lambdas (early per-block deactivation), unreachable and
// out-of-range sources (lambda = -1), duplicate sources (independent
// identical blocks), source == target (lambda 0), epsilon automata
// (Thompson), and > 64 product states (multi-word blocks).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "automaton/glushkov.h"
#include "automaton/thompson.h"
#include "core/annotate.h"
#include "core/resumable_enumerator.h"
#include "core/resumable_index.h"
#include "regex/regex_parser.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

// Word-level equality of a multi-source slice against the per-source
// ground truth.
void ExpectBitIdentical(const Annotation& got, const Annotation& want,
                        uint32_t source) {
  SCOPED_TRACE("source " + std::to_string(source));
  ASSERT_EQ(got.num_states, want.num_states);
  EXPECT_EQ(got.source, want.source);
  EXPECT_EQ(got.target, want.target);
  EXPECT_EQ(got.lambda, want.lambda);
  ASSERT_EQ(got.levels.size(), want.levels.size());
  for (size_t lvl = 0; lvl < want.levels.size(); ++lvl) {
    SCOPED_TRACE("level " + std::to_string(lvl));
    const LevelSets& g = got.levels[lvl];
    const LevelSets& w = want.levels[lvl];
    ASSERT_EQ(g.words_per_set(), w.words_per_set());
    ASSERT_EQ(g.vertices(), w.vertices());
    for (size_t i = 0; i < w.size(); ++i) {
      const uint64_t* gw = g.states(i).words();
      const uint64_t* ww = w.states(i).words();
      for (uint32_t k = 0; k < w.words_per_set(); ++k)
        ASSERT_EQ(gw[k], ww[k]) << "vertex " << w.vertex(i) << " word " << k;
    }
  }
}

std::vector<std::vector<uint32_t>> Enumerate(const Snapshot& snap,
                                             const Annotation& ann) {
  std::vector<std::vector<uint32_t>> out;
  if (!ann.reachable()) return out;
  ResumableIndex index(snap, ann);
  for (ResumableEnumerator en(ann, index, ann.source, ann.target);
       en.Valid(); en.Next())
    out.push_back(en.walk().edges);
  return out;
}

// The workhorse: multi-source run vs per-source runs on every axis.
void CheckSources(const Snapshot& snap, const Nfa& query,
                  const std::vector<uint32_t>& sources, uint32_t target) {
  MultiSourceAnnotation multi =
      AnnotateMultiSource(snap, query, sources, target);
  ASSERT_EQ(multi.num_blocks, sources.size());
  ASSERT_EQ(multi.sources, sources);
  ASSERT_EQ(multi.lambdas.size(), sources.size());

  for (size_t j = 0; j < sources.size(); ++j) {
    Annotation solo = Annotate(snap, query, sources[j], target);
    EXPECT_EQ(multi.lambdas[j], solo.lambda);
    Annotation slice = multi.Slice(j);
    ExpectBitIdentical(slice, solo, sources[j]);
    // Downstream proof: the slice drives trim + enumerate to the same
    // walk sequence, order included.
    EXPECT_EQ(Enumerate(snap, slice), Enumerate(snap, solo));
  }
}

Nfa RegexNfa(const std::string& pattern, LabelDictionary* dict,
             bool thompson) {
  RegexParseResult ast = ParseRegex(pattern);
  EXPECT_TRUE(ast.ok()) << ast.error();
  return thompson ? ThompsonNfa(*ast.value(), dict)
                  : GlushkovNfa(*ast.value(), dict);
}

TEST(MultiSourceAnnotateTest, GridAllSourcesMatchPerSourceRuns) {
  // Every grid vertex as a source: lambdas range from 2(n-1) down to 0,
  // so blocks deactivate at staggered levels.
  Instance inst = Grid(4, 4);
  Snapshot snap = inst.db.Freeze();
  std::vector<uint32_t> sources;
  for (uint32_t v = 0; v < 16; ++v) sources.push_back(v);
  CheckSources(snap, StaircaseNfa(0, 1), sources, inst.target);
  CheckSources(snap, AnyKDfa(3, 1), sources, inst.target);
}

TEST(MultiSourceAnnotateTest, BubbleChainMixedSources) {
  Instance inst = BubbleChain(6, 2);
  Snapshot snap = inst.db.Freeze();
  // Hubs sit at even distances, branch vertices at odd ones; the mix
  // includes the target itself (lambda 0 for a *-query) and vertices
  // the query cannot complete from.
  std::vector<uint32_t> sources = {inst.source, 1, 2, 3, 7, inst.target};
  CheckSources(snap, StaircaseNfa(2, 2), sources, inst.target);

  LabelDictionary* dict = inst.db.mutable_dict();
  CheckSources(snap, RegexNfa("(l0|l1)*", dict, true), sources, inst.target);
  CheckSources(snap, RegexNfa("(l0 l0|l1 l1)+", dict, false), sources,
               inst.target);
}

TEST(MultiSourceAnnotateTest, EpsilonAutomatonAndNoise) {
  Instance inst = EmbedInNoise(BubbleChain(5, 2), 60, 240, 11);
  Snapshot snap = inst.db.Freeze();
  LabelDictionary* dict = inst.db.mutable_dict();
  // Thompson: epsilon closures exercise the closure-saturated seeding.
  Nfa eps = RegexNfa("(l0|l1)* l1 (l0|l1)?", dict, true);
  std::vector<uint32_t> sources = {inst.source, 0, 5, 17, 33,
                                   inst.target};
  CheckSources(snap, eps, sources, inst.target);
}

TEST(MultiSourceAnnotateTest, MultiWordBlocks) {
  // > 64 automaton states per block: Thompson over the m = 20 E9 regex
  // forces multi-word block slices, the alignment-sensitive path. (The
  // graph only carries l0/l1; the other atoms are dead transitions,
  // which is fine — the block layout depends on |Q| alone.)
  Instance inst = LayeredGraph({});
  Snapshot snap = inst.db.Freeze();
  LabelDictionary* dict = inst.db.mutable_dict();
  Nfa big = RegexNfa(ContainsL0Regex(20), dict, true);
  ASSERT_GT(big.num_states(), 64u);
  std::vector<uint32_t> sources = {inst.source, 1, 2, 9};
  CheckSources(snap, big, sources, inst.target);
}

TEST(MultiSourceAnnotateTest, DuplicateUnreachableAndInvalidSources) {
  Instance inst = DeadFanout(4, 3);
  Snapshot snap = inst.db.Freeze();
  uint32_t n = snap.num_vertices();
  // Duplicates must produce independent identical blocks; an
  // out-of-range source must come back lambda = -1 with empty levels,
  // exactly like Annotate.
  std::vector<uint32_t> sources = {inst.source, inst.source, inst.target,
                                   n + 5, inst.source};
  CheckSources(snap, StaircaseNfa(1, 2), sources, inst.target);

  // All-unreachable: no block ever seals, the BFS exhausts cleanly.
  std::vector<uint32_t> dead = {n + 1, n + 2};
  MultiSourceAnnotation multi =
      AnnotateMultiSource(snap, StaircaseNfa(1, 2), dead, inst.target);
  EXPECT_EQ(multi.lambdas, (std::vector<int32_t>{-1, -1}));

  // Empty source set: a well-formed empty result.
  MultiSourceAnnotation none =
      AnnotateMultiSource(snap, StaircaseNfa(1, 2), {}, inst.target);
  EXPECT_EQ(none.num_blocks, 0u);
  EXPECT_TRUE(none.lambdas.empty());
}

TEST(MultiSourceAnnotateTest, ApproxBytesIsPositiveAndCoversSlices) {
  Instance inst = BubbleChain(4, 2);
  Snapshot snap = inst.db.Freeze();
  std::vector<uint32_t> sources = {inst.source, 2, inst.target};
  MultiSourceAnnotation multi =
      AnnotateMultiSource(snap, StaircaseNfa(2, 2), sources, inst.target);
  EXPECT_GT(multi.ApproxBytes(), 0u);
  for (size_t j = 0; j < sources.size(); ++j)
    EXPECT_GT(multi.Slice(j).ApproxBytes(), 0u);
}

}  // namespace
}  // namespace dsw
