// Correctness oracle for the Pregel-style sharded preprocessing path
// (core/sharded_annotate.h): across graph families, query shapes and
// shard counts, the sharded annotate and trim must be *bit-identical* to
// the sequential path — level for level, candidate for candidate,
// B-list row for B-list row. Plus unit tests for the building blocks
// (ShardPlan, WordRing), a tiny-ring backpressure stress, a concurrent
// shared-snapshot stress (TSan food), and an end-to-end engine check.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "automaton/thompson.h"
#include "core/annotate.h"
#include "core/shard_plan.h"
#include "core/sharded_annotate.h"
#include "core/trimmed_index.h"
#include "engine/engine.h"
#include "regex/regex_parser.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

// ------------------------------------------------------- bit equality

void ExpectLevelSetsEqual(const LevelSets& a, const LevelSets& b,
                          const char* what, uint32_t level) {
  SCOPED_TRACE(std::string(what) + " level " + std::to_string(level));
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.words_per_set(), b.words_per_set());
  ASSERT_EQ(a.vertices(), b.vertices());
  for (size_t i = 0; i < a.size(); ++i) {
    StateSetView av = a.states(i);
    StateSetView bv = b.states(i);
    ASSERT_EQ(av.num_words(), bv.num_words());
    for (size_t w = 0; w < av.num_words(); ++w)
      ASSERT_EQ(av.words()[w], bv.words()[w])
          << "vertex " << a.vertex(i) << " word " << w;
  }
}

void ExpectAnnotationsEqual(const Annotation& seq, const Annotation& shd) {
  ASSERT_EQ(seq.lambda, shd.lambda);
  ASSERT_EQ(seq.num_states, shd.num_states);
  ASSERT_EQ(seq.levels.size(), shd.levels.size());
  for (size_t i = 0; i < seq.levels.size(); ++i)
    ExpectLevelSetsEqual(seq.levels[i], shd.levels[i], "annotation",
                         static_cast<uint32_t>(i));
}

void ExpectTrimmedEqual(const TrimmedIndex& seq, const TrimmedIndex& shd) {
  ASSERT_EQ(seq.num_slots(), shd.num_slots());
  ASSERT_EQ(seq.num_levels(), shd.num_levels());
  ASSERT_EQ(seq.words_per_set(), shd.words_per_set());
  for (uint32_t l = 0; l < seq.num_levels(); ++l) {
    ExpectLevelSetsEqual(seq.UsefulLevel(l), shd.UsefulLevel(l), "useful", l);
    if (l + 1 == seq.num_levels()) continue;  // level lambda: no candidates
    for (size_t p = 0; p < seq.UsefulLevel(l).size(); ++p) {
      auto ca = seq.CandidatesAt(l, p);
      auto cb = shd.CandidatesAt(l, p);
      ASSERT_EQ(ca.size(), cb.size()) << "level " << l << " pos " << p;
      for (size_t c = 0; c < ca.size(); ++c) {
        EXPECT_EQ(ca[c].edge, cb[c].edge);
        EXPECT_EQ(ca[c].dst, cb[c].dst);
        EXPECT_EQ(ca[c].label, cb[c].label);
        EXPECT_EQ(ca[c].next_pos, cb[c].next_pos);
      }
      TrimmedIndex::BList ba = seq.BListAt(l, p);
      TrimmedIndex::BList bb = shd.BListAt(l, p);
      ASSERT_EQ(ba.num_cand, bb.num_cand);
      const size_t rows = ba.useful.Count();
      ASSERT_EQ(rows, static_cast<size_t>(bb.useful.Count()));
      ASSERT_EQ(std::memcmp(ba.nxt, bb.nxt,
                            rows * (ba.num_cand + 1) * sizeof(uint32_t)),
                0)
          << "B-list block differs at level " << l << " pos " << p;
    }
  }
}

/// The whole oracle: sequential vs sharded annotate + trim, bit for bit.
void ExpectShardedMatchesSequential(Instance& inst, const Nfa& query,
                                    uint32_t num_shards,
                                    size_t ring_words = 0) {
  SCOPED_TRACE("shards=" + std::to_string(num_shards));
  Snapshot snap = inst.db.Freeze();
  Annotation seq_ann = Annotate(snap, query, inst.source, inst.target);
  AnnotateOptions opts;
  opts.num_shards = num_shards;
  opts.ring_capacity_words = ring_words;
  Annotation shd_ann =
      Annotate(snap, query, inst.source, inst.target, opts);
  ExpectAnnotationsEqual(seq_ann, shd_ann);

  TrimmedIndex seq_index(snap, seq_ann);
  TrimmedIndex shd_index(snap, shd_ann, opts);
  ExpectTrimmedEqual(seq_index, shd_index);
}

constexpr uint32_t kShardCounts[] = {1, 2, 3, 8};

// ---------------------------------------------------------- ShardPlan

TEST(ShardPlanTest, ClampShards) {
  EXPECT_EQ(ShardPlan::ClampShards(0, 100), 1u);
  EXPECT_EQ(ShardPlan::ClampShards(1, 100), 1u);
  EXPECT_EQ(ShardPlan::ClampShards(4, 100), 4u);
  EXPECT_EQ(ShardPlan::ClampShards(4, 2), 2u);   // never more than V
  EXPECT_EQ(ShardPlan::ClampShards(4, 0), 4u);   // V unknown-empty: keep
  EXPECT_EQ(ShardPlan::ClampShards(100000, 1 << 20), ShardPlan::kMaxShards);
}

TEST(ShardPlanTest, ContiguousRangesTileAndOwnersAgree) {
  Instance inst = LayeredGraph({});
  Snapshot snap = inst.db.Freeze();
  for (uint32_t s_count : {1u, 2u, 3u, 7u, 64u}) {
    ShardPlan plan(snap, s_count);
    ASSERT_EQ(plan.begin(0), 0u);
    ASSERT_EQ(plan.end(plan.num_shards() - 1), snap.num_vertices());
    for (uint32_t s = 0; s < plan.num_shards(); ++s) {
      ASSERT_LE(plan.begin(s), plan.end(s));
      if (s > 0) {
        ASSERT_EQ(plan.begin(s), plan.end(s - 1));
      }
      for (uint32_t v = plan.begin(s); v < plan.end(s); ++v)
        ASSERT_EQ(plan.owner(v), s);
    }
  }
}

TEST(ShardPlanTest, BalancesByOutDegree) {
  // A star: vertex 0 carries all the weight. With 2 shards the heavy
  // vertex must sit alone-ish; the plan may not put everything in one
  // shard unless the weight forces it.
  Instance inst = StarOfChains(16, 3, 2);
  Snapshot snap = inst.db.Freeze();
  ShardPlan plan(snap, 4);
  uint32_t nonempty = 0;
  for (uint32_t s = 0; s < plan.num_shards(); ++s)
    if (plan.begin(s) < plan.end(s)) ++nonempty;
  EXPECT_GE(nonempty, 2u);
}

// ----------------------------------------------------------- WordRing

TEST(WordRingTest, PushPopRoundTripsRecords) {
  WordRing ring(8, 4);  // capacity rounds to 8 words, records of 4
  uint64_t rec[4] = {1, 2, 3, 4};
  uint64_t got[4];
  EXPECT_TRUE(ring.Empty());
  EXPECT_TRUE(ring.TryPush(rec, 4));
  EXPECT_TRUE(ring.TryPush(rec, 4));
  EXPECT_FALSE(ring.TryPush(rec, 4));  // full: all-or-nothing refusal
  EXPECT_FALSE(ring.Empty());
  EXPECT_TRUE(ring.TryPop(got, 4));
  EXPECT_EQ(std::memcmp(rec, got, sizeof(rec)), 0);
  EXPECT_TRUE(ring.TryPush(rec, 4));  // space reclaimed
  EXPECT_TRUE(ring.TryPop(got, 4));
  EXPECT_TRUE(ring.TryPop(got, 4));
  EXPECT_FALSE(ring.TryPop(got, 4));
  EXPECT_TRUE(ring.Empty());
}

TEST(WordRingTest, WrapAroundKeepsRecordsIntact) {
  WordRing ring(8, 3);
  uint64_t got[3];
  for (uint64_t round = 0; round < 100; ++round) {
    uint64_t rec[3] = {round, round * 31, ~round};
    ASSERT_TRUE(ring.TryPush(rec, 3));
    ASSERT_TRUE(ring.TryPop(got, 3));
    ASSERT_EQ(std::memcmp(rec, got, sizeof(rec)), 0) << "round " << round;
  }
}

TEST(WordRingTest, SpscThreadedHandoff) {
  WordRing ring(16, 2);
  constexpr uint64_t kRecords = 20000;
  std::thread producer([&ring] {
    for (uint64_t i = 0; i < kRecords; ++i) {
      uint64_t rec[2] = {i, i ^ 0x9e3779b97f4a7c15ull};
      while (!ring.TryPush(rec, 2)) std::this_thread::yield();
    }
  });
  uint64_t got[2];
  for (uint64_t i = 0; i < kRecords; ++i) {
    while (!ring.TryPop(got, 2)) std::this_thread::yield();
    ASSERT_EQ(got[0], i);
    ASSERT_EQ(got[1], i ^ 0x9e3779b97f4a7c15ull);
  }
  producer.join();
  EXPECT_TRUE(ring.Empty());
}

// ------------------------------------------- bit-identity across families

TEST(ShardedAnnotateTest, GridMatchesSequential) {
  for (uint32_t s : kShardCounts) {
    Instance inst = Grid(7, 9);
    ExpectShardedMatchesSequential(inst, StaircaseNfa(1, 1), s);
  }
}

TEST(ShardedAnnotateTest, BubbleChainMatchesSequential) {
  for (uint32_t s : kShardCounts) {
    Instance inst = BubbleChain(7, 2);
    ExpectShardedMatchesSequential(inst, StaircaseNfa(2, 2), s);
  }
}

TEST(ShardedAnnotateTest, StarOfChainsMatchesSequential) {
  for (uint32_t s : kShardCounts) {
    Instance inst = StarOfChains(9, 5, 2);
    ExpectShardedMatchesSequential(inst, CompleteNfa(3, 2), s);
  }
}

TEST(ShardedAnnotateTest, LayeredGraphMatchesSequential) {
  for (uint32_t s : kShardCounts) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      LayeredGraphParams params;
      params.layers = 6;
      params.width = 12;
      params.edges_per_vertex = 3;
      params.seed = seed;
      SCOPED_TRACE("seed=" + std::to_string(seed));
      Instance inst = LayeredGraph(params);
      ExpectShardedMatchesSequential(inst, StaircaseNfa(2, 2), s);
    }
  }
}

TEST(ShardedAnnotateTest, DeadFanoutCertificatesMatchSequential) {
  // The B-list machinery under sharding: every dead candidate's
  // next-usable rows must merge bit-identically.
  for (uint32_t s : kShardCounts) {
    Instance inst = DeadFanout(13, 4);
    ExpectShardedMatchesSequential(inst, ForkChainNfa(4), s);
  }
}

TEST(ShardedAnnotateTest, EmbedInNoiseMatchesSequential) {
  for (uint32_t s : kShardCounts) {
    Instance inst = EmbedInNoise(BubbleChain(6, 2), 400, 1600, 7);
    ExpectShardedMatchesSequential(inst, StaircaseNfa(2, 2), s);
  }
}

TEST(ShardedAnnotateTest, ThompsonEpsilonQueryMatchesSequential) {
  // Epsilon-NFA front-end: closure-saturated levels must still merge
  // identically.
  for (uint32_t s : kShardCounts) {
    Instance inst = LayeredGraph({});
    RegexParseResult ast = ParseRegex(ContainsL0Regex(2));
    ASSERT_TRUE(ast.ok()) << ast.error();
    Nfa thompson = ThompsonNfa(*ast.value(), inst.db.mutable_dict());
    ASSERT_GT(thompson.num_epsilon_transitions(), 0u);
    ExpectShardedMatchesSequential(inst, thompson, s);
  }
}

TEST(ShardedAnnotateTest, UnreachableTargetMatchesSequential) {
  // DeadFanout noise never reaches the target under a query demanding
  // an l1 suffix the chain cannot provide: lambda must stay -1 and the
  // levels empty on both paths.
  Instance inst = DeadFanout(4, 3);
  Nfa query(2);
  query.AddInitial(0);
  query.AddFinal(1);
  query.AddTransition(0, 1u, 1);  // one l1 step, but source has none
  query.AddTransition(1, 1u, 1);
  for (uint32_t s : kShardCounts) {
    SCOPED_TRACE("shards=" + std::to_string(s));
    Snapshot snap = inst.db.Freeze();
    AnnotateOptions opts;
    opts.num_shards = s;
    Annotation ann = Annotate(snap, query, inst.source, inst.target, opts);
    EXPECT_EQ(ann.lambda, -1);
    EXPECT_TRUE(ann.levels.empty());
    TrimmedIndex index(snap, ann, opts);
    EXPECT_TRUE(index.empty());
  }
}

TEST(ShardedAnnotateTest, MoreShardsThanVerticesClampsToSequentialResult) {
  Instance inst = BubbleChain(2, 2);
  ExpectShardedMatchesSequential(inst, StaircaseNfa(1, 2), 64);
}

// --------------------------------------------------------- stress paths

TEST(ShardedAnnotateStressTest, TinyRingsForceBackpressure) {
  // Minimum-capacity rings: every push after the first blocks until the
  // consumer drains, exercising the drain-while-retrying path
  // constantly. Result must still be bit-identical.
  Instance inst = EmbedInNoise(BubbleChain(6, 2), 300, 1500, 11);
  const uint32_t wps = 1;  // 3-state staircase fits one word
  ExpectShardedMatchesSequential(inst, StaircaseNfa(2, 2), 4, wps + 1);
  Instance inst2 = Grid(8, 8);
  ExpectShardedMatchesSequential(inst2, StaircaseNfa(1, 1), 3, 2);
}

TEST(ShardedAnnotateStressTest, ConcurrentShardedCallsShareOneSnapshot) {
  // Two sharded Annotate+trim pipelines race over one frozen snapshot
  // (pure reads of the graph; each call owns its threads). Under TSan
  // this validates the atomic seen-bitmap and ring hand-off disciplines.
  Instance inst = EmbedInNoise(BubbleChain(7, 2), 400, 1600, 13);
  Snapshot snap = inst.db.Freeze();
  Nfa query = StaircaseNfa(2, 2);
  Annotation seq_ann = Annotate(snap, query, inst.source, inst.target);
  TrimmedIndex seq_index(snap, seq_ann);

  std::vector<std::thread> racers;
  for (int r = 0; r < 2; ++r)
    racers.emplace_back([&, r] {
      AnnotateOptions opts;
      opts.num_shards = 3 + static_cast<uint32_t>(r);
      Annotation ann =
          Annotate(snap, query, inst.source, inst.target, opts);
      ExpectAnnotationsEqual(seq_ann, ann);
      TrimmedIndex index(snap, ann, opts);
      ExpectTrimmedEqual(seq_index, index);
    });
  for (std::thread& t : racers) t.join();
}

// ------------------------------------------------------------- engine

TEST(ShardedAnnotateTest, EnginePrepareWithShardsEnumeratesIdentically) {
  Instance inst = BubbleChain(8, 2);
  Nfa query = StaircaseNfa(2, 2);
  Snapshot snap = inst.db.Freeze();

  QueryEngine engine(2);
  engine.InstallSnapshot(snap);
  QueryId seq_q = engine.Prepare(query, inst.source, inst.target);
  AnnotateOptions opts;
  opts.num_shards = 4;
  QueryId shd_q = engine.Prepare(query, inst.source, inst.target, opts);

  PumpResult seq_all = engine.Drain(engine.OpenSession(seq_q), 31);
  PumpResult shd_all = engine.Drain(engine.OpenSession(shd_q), 31);
  ASSERT_EQ(seq_all.status, PumpStatus::kExhausted);
  ASSERT_EQ(shd_all.status, PumpStatus::kExhausted);
  ASSERT_EQ(seq_all.walks.size(), shd_all.walks.size());
  EXPECT_EQ(seq_all.walks.size(), 256u);  // 2^8 bubbles
  for (size_t i = 0; i < seq_all.walks.size(); ++i)
    EXPECT_EQ(seq_all.walks[i].edges, shd_all.walks[i].edges);
}

}  // namespace
}  // namespace dsw
