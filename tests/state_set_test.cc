// Unit tests for the StateSet word-level API the label-stratified hot
// paths lean on: UnionWith's changed-flag, IntersectInto, raw word
// access, views over external word pools, and the Resize growth-path
// regression (stale tail bits must never come back into range).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/state_set.h"

namespace dsw {
namespace {

TEST(StateSetTest, UnionWithReportsChange) {
  StateSet a(100), b(100);
  b.Set(3);
  b.Set(70);
  EXPECT_TRUE(a.UnionWith(b));   // both bits are new
  EXPECT_FALSE(a.UnionWith(b));  // second union is a no-op
  EXPECT_TRUE(a.Test(3));
  EXPECT_TRUE(a.Test(70));
  EXPECT_EQ(a.Count(), 2u);

  b.Set(99);
  EXPECT_TRUE(a.UnionWith(b));  // one new bit among old ones
  EXPECT_EQ(a.Count(), 3u);
}

TEST(StateSetTest, UnionWithGrowsCapacity) {
  StateSet small(10), big(200);
  big.Set(150);
  EXPECT_TRUE(small.UnionWith(big));
  EXPECT_GE(small.capacity(), 200u);
  EXPECT_TRUE(small.Test(150));
}

TEST(StateSetTest, UnionWithWordsChangedFlag) {
  StateSet a(128);
  uint64_t words[2] = {0b1010, 0};
  EXPECT_TRUE(a.UnionWithWords(words, 2));
  EXPECT_FALSE(a.UnionWithWords(words, 2));
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(3));
}

TEST(StateSetTest, IntersectInto) {
  StateSet a(130), b(130), out;
  a.Set(1);
  a.Set(64);
  a.Set(129);
  b.Set(64);
  b.Set(129);
  b.Set(2);
  a.IntersectInto(b, &out);
  EXPECT_EQ(out.capacity(), 130u);
  EXPECT_EQ(out.Count(), 2u);
  EXPECT_TRUE(out.Test(64));
  EXPECT_TRUE(out.Test(129));

  // Reusing a dirty output must fully overwrite it.
  StateSet c(130);
  c.Set(5);
  a.IntersectInto(c, &out);
  EXPECT_TRUE(out.None());
}

TEST(StateSetTest, ResizeShrinkClearsStaleBits) {
  StateSet s(100);
  s.Set(70);
  s.Set(99);
  s.Resize(65);
  EXPECT_EQ(s.Count(), 0u);
  s.Resize(100);
  EXPECT_FALSE(s.Test(70));
  EXPECT_FALSE(s.Test(99));
}

TEST(StateSetTest, ResizeGrowthClearsDirtyTailWords) {
  // Regression: raw word writers can leave bits above capacity() in the
  // last word (e.g. ORing a 64-bit row into a 40-bit set). Growing must
  // not bring that dirt into range.
  StateSet s(40);
  s.mutable_words()[0] |= uint64_t{1} << 45;  // out-of-range dirt
  s.Resize(64);
  EXPECT_FALSE(s.Test(45)) << "stale tail bit resurfaced on grow";
  EXPECT_EQ(s.Count(), 0u);
}

TEST(StateSetTest, ViewOverExternalWords) {
  std::vector<uint64_t> pool = {0b101, uint64_t{1} << 5};
  StateSetView view(pool.data(), 128);
  EXPECT_TRUE(view);
  EXPECT_TRUE(view.Test(0));
  EXPECT_TRUE(view.Test(2));
  EXPECT_TRUE(view.Test(69));
  EXPECT_EQ(view.Count(), 3u);

  std::vector<uint32_t> bits;
  view.ForEach([&](uint32_t i) { bits.push_back(i); });
  EXPECT_EQ(bits, (std::vector<uint32_t>{0, 2, 69}));

  StateSet other(128);
  other.Set(69);
  EXPECT_TRUE(view.Intersects(other));
  other.Clear(69);
  EXPECT_FALSE(view.Intersects(other));

  EXPECT_FALSE(StateSetView()) << "null view must test false";
}

TEST(StateSetTest, AssignFromView) {
  std::vector<uint64_t> pool = {0b11, 0};
  StateSetView view(pool.data(), 80);
  StateSet s;
  s.Assign(view);
  EXPECT_EQ(s.capacity(), 80u);
  EXPECT_EQ(s.Count(), 2u);
  EXPECT_TRUE(s.Test(0));
  EXPECT_TRUE(s.Test(1));
}

TEST(StateSetTest, ForEachAndVisitsOnlyTheIntersection) {
  StateSet a(200), mask(200);
  a.Set(1);
  a.Set(100);
  a.Set(199);
  mask.Set(100);
  mask.Set(199);
  mask.Set(7);
  std::vector<uint32_t> bits;
  ForEachAnd(a, mask, [&](uint32_t i) { bits.push_back(i); });
  EXPECT_EQ(bits, (std::vector<uint32_t>{100, 199}));
}

}  // namespace
}  // namespace dsw
