// Unit tests for the StateSet word-level API the label-stratified hot
// paths lean on: UnionWith's changed-flag, IntersectInto, raw word
// access, views over external word pools, and the Resize growth-path
// regression (stale tail bits must never come back into range).
//
// The randomized round-trip suites at the bottom hammer the same
// view/pooled-word paths the resumable index leans on (StateSetView
// over pool storage, IntersectInto, ForEachAnd, LevelSets) against
// std::set references, across capacities that straddle word
// boundaries — the class of bug the Resize tail-clearing fix was.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <set>
#include <vector>

#include "core/level_sets.h"
#include "util/state_set.h"

namespace dsw {
namespace {

TEST(StateSetTest, UnionWithReportsChange) {
  StateSet a(100), b(100);
  b.Set(3);
  b.Set(70);
  EXPECT_TRUE(a.UnionWith(b));   // both bits are new
  EXPECT_FALSE(a.UnionWith(b));  // second union is a no-op
  EXPECT_TRUE(a.Test(3));
  EXPECT_TRUE(a.Test(70));
  EXPECT_EQ(a.Count(), 2u);

  b.Set(99);
  EXPECT_TRUE(a.UnionWith(b));  // one new bit among old ones
  EXPECT_EQ(a.Count(), 3u);
}

TEST(StateSetTest, UnionWithGrowsCapacity) {
  StateSet small(10), big(200);
  big.Set(150);
  EXPECT_TRUE(small.UnionWith(big));
  EXPECT_GE(small.capacity(), 200u);
  EXPECT_TRUE(small.Test(150));
}

TEST(StateSetTest, UnionWithWordsChangedFlag) {
  StateSet a(128);
  uint64_t words[2] = {0b1010, 0};
  EXPECT_TRUE(a.UnionWithWords(words, 2));
  EXPECT_FALSE(a.UnionWithWords(words, 2));
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(3));
}

TEST(StateSetTest, IntersectInto) {
  StateSet a(130), b(130), out;
  a.Set(1);
  a.Set(64);
  a.Set(129);
  b.Set(64);
  b.Set(129);
  b.Set(2);
  a.IntersectInto(b, &out);
  EXPECT_EQ(out.capacity(), 130u);
  EXPECT_EQ(out.Count(), 2u);
  EXPECT_TRUE(out.Test(64));
  EXPECT_TRUE(out.Test(129));

  // Reusing a dirty output must fully overwrite it.
  StateSet c(130);
  c.Set(5);
  a.IntersectInto(c, &out);
  EXPECT_TRUE(out.None());
}

TEST(StateSetTest, ResizeShrinkClearsStaleBits) {
  StateSet s(100);
  s.Set(70);
  s.Set(99);
  s.Resize(65);
  EXPECT_EQ(s.Count(), 0u);
  s.Resize(100);
  EXPECT_FALSE(s.Test(70));
  EXPECT_FALSE(s.Test(99));
}

TEST(StateSetTest, ResizeGrowthClearsDirtyTailWords) {
  // Regression: raw word writers can leave bits above capacity() in the
  // last word (e.g. ORing a 64-bit row into a 40-bit set). Growing must
  // not bring that dirt into range.
  StateSet s(40);
  s.mutable_words()[0] |= uint64_t{1} << 45;  // out-of-range dirt
  s.Resize(64);
  EXPECT_FALSE(s.Test(45)) << "stale tail bit resurfaced on grow";
  EXPECT_EQ(s.Count(), 0u);
}

TEST(StateSetTest, ViewOverExternalWords) {
  std::vector<uint64_t> pool = {0b101, uint64_t{1} << 5};
  StateSetView view(pool.data(), 128);
  EXPECT_TRUE(view);
  EXPECT_TRUE(view.Test(0));
  EXPECT_TRUE(view.Test(2));
  EXPECT_TRUE(view.Test(69));
  EXPECT_EQ(view.Count(), 3u);

  std::vector<uint32_t> bits;
  view.ForEach([&](uint32_t i) { bits.push_back(i); });
  EXPECT_EQ(bits, (std::vector<uint32_t>{0, 2, 69}));

  StateSet other(128);
  other.Set(69);
  EXPECT_TRUE(view.Intersects(other));
  other.Clear(69);
  EXPECT_FALSE(view.Intersects(other));

  EXPECT_FALSE(StateSetView()) << "null view must test false";
}

TEST(StateSetTest, AssignFromView) {
  std::vector<uint64_t> pool = {0b11, 0};
  StateSetView view(pool.data(), 80);
  StateSet s;
  s.Assign(view);
  EXPECT_EQ(s.capacity(), 80u);
  EXPECT_EQ(s.Count(), 2u);
  EXPECT_TRUE(s.Test(0));
  EXPECT_TRUE(s.Test(1));
}

TEST(StateSetTest, ForEachAndVisitsOnlyTheIntersection) {
  StateSet a(200), mask(200);
  a.Set(1);
  a.Set(100);
  a.Set(199);
  mask.Set(100);
  mask.Set(199);
  mask.Set(7);
  std::vector<uint32_t> bits;
  ForEachAnd(a, mask, [&](uint32_t i) { bits.push_back(i); });
  EXPECT_EQ(bits, (std::vector<uint32_t>{100, 199}));
}

// ------------------------------------- randomized round-trip suites

// Capacities straddling word boundaries — where tail-bit bugs live.
constexpr uint32_t kFuzzCaps[] = {1, 7, 63, 64, 65, 127, 128, 129, 200};

std::set<uint32_t> RandomBits(std::mt19937_64& rng, uint32_t cap,
                              uint32_t density_denom) {
  std::set<uint32_t> bits;
  for (uint32_t i = 0; i < cap; ++i)
    if (rng() % density_denom == 0) bits.insert(i);
  return bits;
}

StateSet FromReference(const std::set<uint32_t>& bits, uint32_t cap) {
  StateSet s(cap);
  for (uint32_t b : bits) s.Set(b);
  return s;
}

std::set<uint32_t> ToReference(StateSetView v) {
  std::set<uint32_t> bits;
  v.ForEach([&](uint32_t b) { bits.insert(b); });
  return bits;
}

TEST(StateSetFuzzTest, SetOperationsMatchSetReference) {
  std::mt19937_64 rng(2024);
  for (uint32_t cap : kFuzzCaps) {
    for (int round = 0; round < 20; ++round) {
      std::set<uint32_t> ra = RandomBits(rng, cap, 3);
      std::set<uint32_t> rb = RandomBits(rng, cap, 3);
      StateSet a = FromReference(ra, cap);
      StateSet b = FromReference(rb, cap);

      // Count / Test / Any round-trip.
      EXPECT_EQ(a.Count(), ra.size());
      EXPECT_EQ(a.Any(), !ra.empty());
      EXPECT_EQ(ToReference(a), ra);

      // Union via UnionWith, with the changed-flag as "anything new".
      std::set<uint32_t> runion = ra;
      runion.insert(rb.begin(), rb.end());
      StateSet u = a;
      EXPECT_EQ(u.UnionWith(b), runion != ra);
      EXPECT_EQ(ToReference(u), runion);
      EXPECT_FALSE(u.UnionWith(b)) << "second union must be a no-op";

      // Intersection three ways: &=, IntersectInto, ForEachAnd.
      std::set<uint32_t> rinter;
      std::set_intersection(ra.begin(), ra.end(), rb.begin(), rb.end(),
                            std::inserter(rinter, rinter.begin()));
      StateSet i1 = a;
      i1 &= b;
      EXPECT_EQ(ToReference(i1), rinter);
      StateSet i2(7);  // dirty, wrong-capacity output must be overwritten
      i2.Set(3);
      a.IntersectInto(b, &i2);
      EXPECT_EQ(i2.capacity(), cap);
      EXPECT_EQ(ToReference(i2), rinter);
      std::set<uint32_t> i3;
      ForEachAnd(a, b, [&](uint32_t bit) { i3.insert(bit); });
      EXPECT_EQ(i3, rinter);
      EXPECT_EQ(a.Intersects(b), !rinter.empty());
    }
  }
}

TEST(StateSetFuzzTest, ViewsOverSharedPoolsRoundTrip) {
  // Sets packed into one word pool, read back through views — the
  // storage discipline of LevelSets/TrimmedIndex/ResumableIndex.
  std::mt19937_64 rng(4711);
  for (uint32_t cap : kFuzzCaps) {
    const uint32_t wps =
        static_cast<uint32_t>(state_set_detail::WordsFor(cap));
    const size_t n = 17;
    std::vector<std::set<uint32_t>> ref;
    std::vector<uint64_t> pool;
    for (size_t i = 0; i < n; ++i) {
      ref.push_back(RandomBits(rng, cap, 4));
      StateSet s = FromReference(ref.back(), cap);
      pool.insert(pool.end(), s.words(), s.words() + wps);
    }
    for (size_t i = 0; i < n; ++i) {
      StateSetView v(&pool[i * wps], cap);
      EXPECT_EQ(ToReference(v), ref[i]);
      EXPECT_EQ(v.Count(), ref[i].size());
      // A view participates in ops like an owning set.
      StateSet copy;
      copy.Assign(v);
      EXPECT_EQ(ToReference(copy), ref[i]);
      StateSet acc(cap);
      EXPECT_EQ(acc.UnionWithWords(v.words(), v.num_words()),
                !ref[i].empty());
      EXPECT_EQ(ToReference(acc), ref[i]);
    }
  }
}

TEST(StateSetFuzzTest, ResizeRoundTripsNeverResurrectBits) {
  std::mt19937_64 rng(99);
  for (int round = 0; round < 40; ++round) {
    uint32_t cap = kFuzzCaps[rng() % std::size(kFuzzCaps)];
    std::set<uint32_t> ref = RandomBits(rng, cap, 2);
    StateSet s = FromReference(ref, cap);
    for (int step = 0; step < 6; ++step) {
      uint32_t next = kFuzzCaps[rng() % std::size(kFuzzCaps)];
      // Reference semantics: shrinking drops bits >= next for good.
      std::set<uint32_t> kept;
      for (uint32_t b : ref)
        if (b < next) kept.insert(b);
      ref = kept;
      s.Resize(next);
      cap = next;
      EXPECT_EQ(s.capacity(), cap);
      EXPECT_EQ(ToReference(s), ref) << "round " << round;
      if (rng() % 2 && cap > 0) {  // keep mutating between resizes
        uint32_t b = static_cast<uint32_t>(rng() % cap);
        s.Set(b);
        ref.insert(b);
      }
    }
  }
}

TEST(LevelSetsFuzzTest, AppendFindRoundTrip) {
  std::mt19937_64 rng(31337);
  for (uint32_t cap : {3u, 64u, 130u}) {
    for (int round = 0; round < 10; ++round) {
      // Sorted random vertex ids with random nonempty state sets, as
      // Annotate/TrimmedIndex produce them.
      std::set<uint32_t> vertex_ids;
      const uint32_t universe = 200;
      for (int i = 0; i < 40; ++i)
        vertex_ids.insert(static_cast<uint32_t>(rng() % universe));
      LevelSets level(cap);
      std::vector<std::pair<uint32_t, std::set<uint32_t>>> ref;
      for (uint32_t v : vertex_ids) {  // std::set iterates ascending
        std::set<uint32_t> bits = RandomBits(rng, cap, 3);
        bits.insert(static_cast<uint32_t>(rng() % cap));  // nonempty
        StateSet s = FromReference(bits, cap);
        level.Append(v, s.words());
        ref.emplace_back(v, std::move(bits));
      }

      ASSERT_EQ(level.size(), ref.size());
      for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(level.vertex(i), ref[i].first);
        EXPECT_EQ(ToReference(level.states(i)), ref[i].second);
      }
      // Point lookups: hits for every member, misses for every hole.
      for (uint32_t v = 0; v < universe + 5; ++v) {
        auto it = std::find_if(ref.begin(), ref.end(),
                               [&](const auto& p) { return p.first == v; });
        if (it == ref.end()) {
          EXPECT_EQ(level.FindIndex(v), LevelSets::npos);
          EXPECT_FALSE(level.Find(v));
        } else {
          EXPECT_EQ(level.FindIndex(v),
                    static_cast<size_t>(it - ref.begin()));
          StateSetView v_states = level.Find(v);
          ASSERT_TRUE(v_states);
          EXPECT_EQ(ToReference(v_states), it->second);
        }
      }
    }
  }
}

}  // namespace
}  // namespace dsw
