// Property tests for the label-stratified rewrite of annotate/trim: on
// random graphs, the word-parallel product BFS must produce annotations
// that are *level-for-level identical* to an independent map-based
// reference (the shape of the original implementation: per-edge label
// filtering over TransitionLists, explicit epsilon saturation), and the
// full pipeline must enumerate exactly the naive baseline's answer set —
// including epsilon-NFA (Thompson) queries compiled from regexes.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "automaton/glushkov.h"
#include "automaton/thompson.h"
#include "baseline/naive.h"
#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/trimmed_index.h"
#include "regex/regex_parser.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

struct RefAnnotation {
  int32_t lambda = -1;
  std::vector<std::map<uint32_t, std::set<uint32_t>>> levels;
};

// Independent reference: unordered product BFS over the raw Nfa,
// scanning TransitionLists per edge and saturating epsilon-closures per
// level — no CompiledDelta, no LabelIndex, no LevelSets.
RefAnnotation RefAnnotate(const Database& db, const Nfa& nfa, uint32_t s,
                          uint32_t t) {
  RefAnnotation ref;
  if (s >= db.num_vertices() || t >= db.num_vertices() ||
      nfa.num_states() == 0 || nfa.initial().None())
    return ref;
  std::vector<StateSet> closures;
  if (nfa.has_epsilon()) closures = nfa.EpsilonClosures();

  std::set<std::pair<uint32_t, uint32_t>> seen;
  std::map<uint32_t, std::set<uint32_t>> frontier;
  std::set<uint32_t> init;
  nfa.initial().ForEach([&](uint32_t q) { init.insert(q); });
  if (!closures.empty()) {
    std::set<uint32_t> closed;
    for (uint32_t q : init)
      closures[q].ForEach([&](uint32_t r) { closed.insert(r); });
    init = std::move(closed);
  }
  for (uint32_t q : init) seen.emplace(s, q);
  frontier.emplace(s, std::move(init));

  while (!frontier.empty()) {
    ref.levels.push_back(frontier);
    const auto& current = ref.levels.back();
    if (auto it = current.find(t); it != current.end())
      for (uint32_t q : it->second)
        if (nfa.IsFinal(q)) {
          ref.lambda = static_cast<int32_t>(ref.levels.size() - 1);
          return ref;
        }

    std::map<uint32_t, std::set<uint32_t>> next;
    for (const auto& [v, states] : current)
      for (uint32_t e : db.OutEdges(v)) {
        const Edge& edge = db.edge(e);
        for (uint32_t q : states)
          for (const auto& [label, to] : nfa.Transitions(q)) {
            if (label != edge.label) continue;
            auto reach = [&](uint32_t r) {
              if (seen.emplace(edge.dst, r).second) next[edge.dst].insert(r);
            };
            if (closures.empty())
              reach(to);
            else
              closures[to].ForEach(reach);
          }
      }
    frontier = std::move(next);
  }
  ref.levels.clear();
  return ref;
}

void ExpectAnnotationMatchesReference(Instance& inst, const Nfa& nfa,
                                      const char* what) {
  SCOPED_TRACE(what);
  Annotation ann = Annotate(inst.db.Freeze(), nfa, inst.source, inst.target);
  RefAnnotation ref = RefAnnotate(inst.db, nfa, inst.source, inst.target);
  ASSERT_EQ(ann.lambda, ref.lambda);
  ASSERT_EQ(ann.levels.size(), ref.levels.size());
  for (size_t i = 0; i < ref.levels.size(); ++i) {
    const LevelSets& level = ann.levels[i];
    ASSERT_EQ(level.size(), ref.levels[i].size()) << "level " << i;
    size_t pos = 0;
    for (const auto& [v, states] : ref.levels[i]) {
      EXPECT_EQ(level.vertex(pos), v) << "level " << i;
      std::set<uint32_t> got;
      level.states(pos).ForEach([&](uint32_t q) { got.insert(q); });
      EXPECT_EQ(got, states) << "level " << i << " vertex " << v;
      ++pos;
    }
  }
}

std::set<std::vector<uint32_t>> PipelineAnswers(Instance& inst,
                                                const Nfa& nfa) {
  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, nfa, inst.source, inst.target);
  TrimmedIndex index(snap, ann);
  std::set<std::vector<uint32_t>> walks;
  size_t emitted = 0;
  for (TrimmedEnumerator en(ann, index, inst.source, inst.target);
       en.Valid(); en.Next()) {
    ++emitted;
    walks.insert(en.walk().edges);
  }
  EXPECT_EQ(emitted, walks.size()) << "duplicate walk emitted";
  return walks;
}

std::set<std::vector<uint32_t>> NaiveAnswers(Instance& inst,
                                             const Nfa& nfa) {
  NaiveResult naive = NaiveDistinctShortestWalks(inst.db.Freeze(), nfa,
                                                 inst.source, inst.target);
  EXPECT_FALSE(naive.budget_exhausted);
  std::set<std::vector<uint32_t>> walks;
  for (const Walk& w : naive.walks) walks.insert(w.edges);
  return walks;
}

std::vector<Instance> RandomInstances() {
  std::vector<Instance> out;
  for (uint64_t seed : {5u, 13u, 29u, 47u}) {
    LayeredGraphParams params;
    params.layers = 3 + seed % 4;
    params.width = 3 + seed % 3;
    params.edges_per_vertex = 2 + seed % 2;
    params.num_labels = 2;
    params.extra_labels = 1;
    params.multi_label_p = 0.35;
    params.seed = seed;
    out.push_back(LayeredGraph(params));
  }
  out.push_back(Grid(4, 4));
  out.push_back(BubbleChain(4, 2));
  out.push_back(EmbedInNoise(BubbleChain(3, 2), 30, 120, 19));
  return out;
}

TEST(StratifiedPipelineTest, AnnotationMatchesReferenceLevelForLevel) {
  for (Instance& inst : RandomInstances()) {
    ExpectAnnotationMatchesReference(inst, StaircaseNfa(1, 2), "staircase1");
    ExpectAnnotationMatchesReference(inst, StaircaseNfa(3, 2), "staircase3");
    ExpectAnnotationMatchesReference(inst, CompleteNfa(3, 2), "complete3");
    ExpectAnnotationMatchesReference(inst, AnyKDfa(3, 2), "anyk3");
  }
}

TEST(StratifiedPipelineTest, AnnotationMatchesReferenceOnThompsonNfas) {
  RegexParseResult ast = ParseRegex(ContainsL0Regex(2));
  ASSERT_TRUE(ast.ok()) << ast.error();
  for (Instance& inst : RandomInstances()) {
    Nfa thompson = ThompsonNfa(*ast.value(), inst.db.mutable_dict());
    ASSERT_TRUE(thompson.has_epsilon());
    ExpectAnnotationMatchesReference(inst, thompson, "thompson-contains-l0");
  }
}

TEST(StratifiedPipelineTest, PipelineMatchesNaiveOnRandomGraphs) {
  for (Instance& inst : RandomInstances()) {
    for (const Nfa& nfa : {StaircaseNfa(1, 2), StaircaseNfa(2, 2),
                           CompleteNfa(3, 2)}) {
      std::set<std::vector<uint32_t>> trimmed = PipelineAnswers(inst, nfa);
      std::set<std::vector<uint32_t>> naive = NaiveAnswers(inst, nfa);
      EXPECT_EQ(trimmed, naive);
    }
  }
}

TEST(StratifiedPipelineTest, ThompsonAndGlushkovAgreeWithNaive) {
  // Epsilon path end-to-end: the Thompson pipeline, the Glushkov
  // pipeline, the naive oracle over the (epsilon-free) Glushkov NFA and
  // — on these small instances — the naive oracle over the Thompson NFA
  // itself must all return the same answer set.
  RegexParseResult ast = ParseRegex(ContainsL0Regex(2));
  ASSERT_TRUE(ast.ok()) << ast.error();
  for (Instance& inst : RandomInstances()) {
    Nfa thompson = ThompsonNfa(*ast.value(), inst.db.mutable_dict());
    Nfa glushkov = GlushkovNfa(*ast.value(), inst.db.mutable_dict());
    std::set<std::vector<uint32_t>> via_thompson =
        PipelineAnswers(inst, thompson);
    EXPECT_EQ(via_thompson, PipelineAnswers(inst, glushkov));
    EXPECT_EQ(via_thompson, NaiveAnswers(inst, glushkov));
    EXPECT_EQ(via_thompson, NaiveAnswers(inst, thompson));
  }
}

}  // namespace
}  // namespace dsw
