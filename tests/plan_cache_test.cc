// The cross-query plan cache and its engine integration, pinned on the
// properties the PR claims:
//
//  - Warm hits do ZERO annotate/trim work. Build work is observable in
//    PlanCacheStats.misses (each miss is exactly one build), so
//    "repeat Prepare is free" is asserted as misses staying flat while
//    hits climb — including across textually different but equivalent
//    regexes, which reach the same canonical automaton bytes.
//  - Single-flight: concurrent cold Prepares of one key build once;
//    everyone else blocks and shares the one result. Run under TSan in
//    CI, this doubles as the race regression test for the cache.
//  - Invalidation: with incremental install disabled, InstallSnapshot
//    drops entries of other generations and stale sessions retire
//    gracefully (and are counted); with it enabled (the default), an
//    insert-only delta upgrades entries in place instead (counted as
//    upgrades, served as warm hits). A building claim invalidated
//    mid-wait is re-claimed and rebuilt, never lost.
//  - Byte-budget LRU: a tiny budget keeps the cache bounded and
//    evicting; budget 0 disables caching outright (the bench's cold
//    arm) with every call building.
//  - PrepareBatch: many sources resolve through one multi-source BFS,
//    answers identical to per-source Prepare; warm batches are pure
//    hits; duplicate sources alias a single entry.
//  - The per-worker enumerator LRU is bounded by worker_cache_entries
//    and evictions are visible in EngineStats.
//
// Everything is cross-checked against the single-threaded
// annotate/trim/enumerate oracle: cache plumbing must never change
// answers, only the work done to produce them.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/trimmed_index.h"
#include "engine/engine.h"
#include "engine/plan_cache.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

using EdgeSeq = std::vector<std::vector<uint32_t>>;

EdgeSeq Edges(const std::vector<Walk>& walks) {
  EdgeSeq out;
  out.reserve(walks.size());
  for (const Walk& w : walks) out.push_back(w.edges);
  return out;
}

EdgeSeq Oracle(const Snapshot& snap, const Nfa& query, uint32_t source,
               uint32_t target) {
  Annotation ann = Annotate(snap, query, source, target);
  TrimmedIndex index(snap, ann);
  EdgeSeq out;
  for (TrimmedEnumerator en(ann, index, source, target); en.Valid();
       en.Next())
    out.push_back(en.walk().edges);
  return out;
}

EdgeSeq DrainAll(QueryEngine& engine, QueryId q, uint32_t batch = 16) {
  PumpResult r = engine.Drain(engine.OpenSession(q), batch);
  EXPECT_EQ(r.status, PumpStatus::kExhausted);
  return Edges(r.walks);
}

TEST(PlanCacheTest, WarmPrepareDoesNoBuildWork) {
  Instance inst = BubbleChain(7, 2);
  Nfa query = StaircaseNfa(2, 2);
  Snapshot snap = inst.db.Freeze();
  EdgeSeq expected = Oracle(snap, query, inst.source, inst.target);

  QueryEngine engine(2);
  engine.InstallSnapshot(snap);
  QueryId q1 = engine.Prepare(query, inst.source, inst.target);
  EngineStats cold = engine.Stats();
  EXPECT_EQ(cold.plan_cache.misses, 1u);
  EXPECT_EQ(cold.plan_cache.hits, 0u);
  EXPECT_EQ(cold.plan_cache.entries, 1u);
  EXPECT_GT(cold.plan_cache.bytes_used, 0u);

  // The acceptance criterion: repeat Prepares are pure cache hits —
  // misses (== builds) stay flat, so no annotate/trim ran.
  QueryId q2 = engine.Prepare(query, inst.source, inst.target);
  QueryId q3 = engine.Prepare(query, inst.source, inst.target);
  EngineStats warm = engine.Stats();
  EXPECT_EQ(warm.plan_cache.misses, 1u);
  EXPECT_EQ(warm.plan_cache.hits, 2u);
  EXPECT_EQ(warm.plan_cache.entries, 1u);
  EXPECT_EQ(warm.plan_cache.bytes_used, cold.plan_cache.bytes_used);

  // Distinct endpoints are distinct plans, not hits.
  engine.Prepare(query, inst.source, inst.source);
  EXPECT_EQ(engine.Stats().plan_cache.misses, 2u);

  for (QueryId q : {q1, q2, q3}) EXPECT_EQ(DrainAll(engine, q), expected);
}

TEST(PlanCacheTest, EquivalentRegexesShareOneEntry) {
  Instance inst = BubbleChain(6, 2);
  {
    QueryEngine engine(2);
    engine.InstallSnapshot(inst.db.Freeze());
    LabelDictionary* dict = inst.db.mutable_dict();

    PrepareRegexResult a = engine.PrepareRegex("(l0|l1)* l1 (l0|l1)?", dict,
                                               inst.source, inst.target);
    ASSERT_TRUE(a.ok);
    // Same language, different text: flipped alternands, stacked
    // repetition spelled differently.
    PrepareRegexResult b = engine.PrepareRegex("(l1|l0)* l1 ((l1|l0)?)?",
                                               dict, inst.source, inst.target);
    ASSERT_TRUE(b.ok);
    EngineStats stats = engine.Stats();
    EXPECT_EQ(stats.plan_cache.misses, 1u);
    EXPECT_EQ(stats.plan_cache.hits, 1u);
    EXPECT_EQ(stats.frontend_thompson + stats.frontend_glushkov, 2u);

    EXPECT_EQ(DrainAll(engine, a.id), DrainAll(engine, b.id));

    // Parse failures surface in the result and touch nothing.
    PrepareRegexResult bad = engine.PrepareRegex("((l0", dict, inst.source,
                                                 inst.target);
    EXPECT_FALSE(bad.ok);
    EXPECT_FALSE(bad.error.empty());
    EXPECT_EQ(engine.Stats().plan_cache.misses, 1u);
  }
}

// The drop-everything install path, kept reachable by the
// incremental_install kill-switch: with delta repair disabled, a new
// generation invalidates every cached plan and retires every started
// session — the pre-incremental contract, verbatim.
TEST(PlanCacheTest, InstallSnapshotInvalidatesAndRetires) {
  Instance inst = BubbleChain(5, 2);
  Nfa query = StaircaseNfa(2, 2);
  EngineOptions opts;
  opts.num_threads = 2;
  opts.incremental_install = false;
  QueryEngine engine(opts);
  engine.InstallSnapshot(inst.db.Freeze());
  QueryId q_old = engine.Prepare(query, inst.source, inst.target);
  SessionId s_old = engine.OpenSession(q_old);
  ASSERT_EQ(engine.Pump(s_old, 4).status, PumpStatus::kOk);
  ASSERT_EQ(engine.Stats().plan_cache.entries, 1u);

  inst.db.AddEdge(inst.source, 0u, inst.target);
  Snapshot snap2 = inst.db.Freeze();
  engine.InstallSnapshot(snap2);

  EngineStats after = engine.Stats();
  EXPECT_EQ(after.plan_cache.invalidations, 1u);
  EXPECT_EQ(after.plan_cache.entries, 0u);
  EXPECT_EQ(after.plan_cache.bytes_used, 0u);

  // The retired session still fails gracefully — and is counted.
  EXPECT_EQ(engine.Pump(s_old, 4).status, PumpStatus::kRetired);
  EXPECT_GE(engine.Stats().sessions_retired, 1u);

  // Re-preparing against the new snapshot is a fresh build with fresh
  // answers.
  QueryId q_new = engine.Prepare(query, inst.source, inst.target);
  EXPECT_EQ(engine.Stats().plan_cache.misses, 2u);
  EXPECT_EQ(DrainAll(engine, q_new),
            Oracle(snap2, query, inst.source, inst.target));
}

// The incremental install path: an insert-only, lambda-preserving
// delta re-keys the cached plan to the new generation by delta repair
// (TakeGeneration + InsertUpgraded) instead of dropping it. The
// upgraded entry serves warm hits, the remapped QueryId enumerates the
// new snapshot's answers, and nothing was invalidated.
TEST(PlanCacheTest, IncrementalInstallUpgradesEntriesInPlace) {
  Instance inst = BubbleChain(5, 2);
  Nfa query = StaircaseNfa(2, 2);
  QueryEngine engine(2);
  engine.InstallSnapshot(inst.db.Freeze());
  QueryId q = engine.Prepare(query, inst.source, inst.target);
  ASSERT_EQ(engine.Stats().plan_cache.entries, 1u);

  // A parallel duplicate of an existing edge: new distinct shortest
  // walks, same lambda.
  inst.db.AddEdge(inst.db.src(0), inst.db.edge(0).label, inst.db.dst(0));
  Snapshot snap2 = inst.db.Freeze();
  engine.InstallSnapshot(snap2);

  EngineStats after = engine.Stats();
  EXPECT_EQ(after.plan_cache.upgrades, 1u);
  EXPECT_EQ(after.plan_cache.entries, 1u);
  EXPECT_EQ(after.plan_cache.invalidations, 0u);
  EXPECT_EQ(after.plans_upgraded, 1u);

  // A warm Prepare against the new generation hits the upgraded entry —
  // no rebuild ran.
  QueryId q2 = engine.Prepare(query, inst.source, inst.target);
  EngineStats warm = engine.Stats();
  EXPECT_EQ(warm.plan_cache.misses, after.plan_cache.misses);
  EXPECT_EQ(warm.plan_cache.hits, after.plan_cache.hits + 1);

  EdgeSeq expected = Oracle(snap2, query, inst.source, inst.target);
  EXPECT_EQ(DrainAll(engine, q), expected);  // old QueryId was remapped
  EXPECT_EQ(DrainAll(engine, q2), expected);
}

// A GetOrBuildBatch phase-3 waiter whose awaited claim is dropped by
// Invalidate mid-wait must wake, re-claim the vacant key, and rebuild
// — the batch result is never null and the builder's orphaned value
// goes to its own caller only. The deterministic schedule: thread B
// claims k2 and parks inside its builder; thread A batches {k1, k2},
// builds k1, and waits on B's claim; Invalidate then erases both the
// completed k1 and B's building marker before B is released.
TEST(PlanCacheTest, InvalidateDuringBatchWaitReclaimsAndRebuilds) {
  Instance inst = BubbleChain(3, 2);
  Nfa query = StaircaseNfa(1, 2);
  Snapshot snap = inst.db.Freeze();
  AnnotateOptions aopts;
  auto make_value = [&] {
    return std::make_shared<const PreparedQuery>(snap, query, inst.source,
                                                 inst.target, aopts);
  };

  PlanCache cache(size_t{64} << 20);
  PlanKey k1{&inst.db, 1, 0x1111, "a", inst.source, inst.target};
  PlanKey k2{&inst.db, 1, 0x2222, "b", inst.source, inst.target};

  std::promise<void> builder_entered, release_builder;
  std::thread b([&] {
    PlanCache::Value v = cache.GetOrBuild(k2, [&]() -> PlanCache::Value {
      builder_entered.set_value();
      release_builder.get_future().wait();
      return make_value();
    });
    // The orphaned build still reaches its own caller.
    EXPECT_NE(v, nullptr);
  });
  builder_entered.get_future().wait();

  std::atomic<int> batch_builds{0};
  std::vector<PlanCache::Value> got;
  std::thread a([&] {
    std::vector<PlanKey> keys{k1, k2};
    got = cache.GetOrBuildBatch(
        keys, [&](const std::vector<size_t>& idx) {
          std::vector<PlanCache::Value> out;
          for (size_t i : idx) {
            (void)i;
            ++batch_builds;
            out.push_back(make_value());
          }
          return out;
        });
  });
  // A has reached its wait on k2 (or is about to — both interleavings
  // resolve identically) once the single-flight wait is counted.
  while (cache.Stats().single_flight_waits < 1) std::this_thread::yield();

  // A new generation drops everything: k1's completed entry and k2's
  // building marker.
  cache.Invalidate(&inst.db, 2);
  release_builder.set_value();
  b.join();
  a.join();

  ASSERT_EQ(got.size(), 2u);
  EXPECT_NE(got[0], nullptr);
  EXPECT_NE(got[1], nullptr);              // re-claimed, rebuilt, not lost
  EXPECT_GE(batch_builds.load(), 2);       // k1 + the phase-3 rebuild of k2
  EXPECT_GE(cache.Stats().invalidations, 2u);
}

// Concurrent cold misses on ONE key: exactly one build, everyone shares
// it. TSan (CI matrix) turns this into the cache's race regression
// test.
TEST(PlanCacheTest, ConcurrentPreparesSingleFlight) {
  Instance inst = EmbedInNoise(BubbleChain(6, 2), 50, 200, 3);
  Nfa query = StaircaseNfa(2, 2);
  Snapshot snap = inst.db.Freeze();
  EdgeSeq expected = Oracle(snap, query, inst.source, inst.target);

  QueryEngine engine(2);
  engine.InstallSnapshot(snap);
  constexpr int kThreads = 8;
  std::vector<QueryId> ids(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i)
    threads.emplace_back([&, i] {
      ids[i] = engine.Prepare(query, inst.source, inst.target);
    });
  for (std::thread& t : threads) t.join();

  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.plan_cache.misses, 1u);  // one build, total
  EXPECT_EQ(stats.plan_cache.hits, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.plan_cache.entries, 1u);
  // Waits only happen for threads that arrived mid-build; bounded by
  // the losers of the claim race.
  EXPECT_LE(stats.plan_cache.single_flight_waits,
            static_cast<uint64_t>(kThreads - 1));

  for (QueryId q : ids) EXPECT_EQ(DrainAll(engine, q), expected);
}

TEST(PlanCacheTest, TinyBudgetEvictsLru) {
  Instance inst = Grid(4, 4);
  Snapshot snap = inst.db.Freeze();
  EngineOptions opts;
  opts.num_threads = 1;
  opts.plan_cache_bytes = 1;  // any completed entry is oversized
  QueryEngine engine(opts);
  engine.InstallSnapshot(snap);

  Nfa query = StaircaseNfa(0, 1);
  // An oversized entry lives alone (never thrashes itself out)...
  engine.Prepare(query, inst.source, inst.target);
  EXPECT_EQ(engine.Stats().plan_cache.entries, 1u);
  EXPECT_EQ(engine.Stats().plan_cache.evictions, 0u);
  // ...until the next insert displaces it.
  engine.Prepare(query, 1, inst.target);
  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.plan_cache.entries, 1u);
  EXPECT_EQ(stats.plan_cache.evictions, 1u);
  // The displaced key must rebuild: 3 misses, no hits.
  engine.Prepare(query, inst.source, inst.target);
  EXPECT_EQ(engine.Stats().plan_cache.misses, 3u);
  EXPECT_EQ(engine.Stats().plan_cache.hits, 0u);
}

TEST(PlanCacheTest, ZeroBudgetDisablesCaching) {
  Instance inst = BubbleChain(4, 2);
  Nfa query = StaircaseNfa(2, 2);
  Snapshot snap = inst.db.Freeze();
  EdgeSeq expected = Oracle(snap, query, inst.source, inst.target);

  EngineOptions opts;
  opts.num_threads = 1;
  opts.plan_cache_bytes = 0;  // the bench's cold arm
  QueryEngine engine(opts);
  engine.InstallSnapshot(snap);
  QueryId q1 = engine.Prepare(query, inst.source, inst.target);
  QueryId q2 = engine.Prepare(query, inst.source, inst.target);
  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.plan_cache.misses, 2u);
  EXPECT_EQ(stats.plan_cache.hits, 0u);
  EXPECT_EQ(stats.plan_cache.entries, 0u);
  EXPECT_EQ(stats.plan_cache.bytes_used, 0u);
  EXPECT_EQ(DrainAll(engine, q1), expected);
  EXPECT_EQ(DrainAll(engine, q2), expected);
}

TEST(PlanCacheTest, PrepareBatchMatchesPerSourcePrepare) {
  Instance inst = Grid(4, 4);
  Nfa query = AnyKDfa(3, 1);
  Snapshot snap = inst.db.Freeze();

  QueryEngine engine(2);
  engine.InstallSnapshot(snap);
  // Mixed batch: duplicates, the real source, the target itself, and a
  // vertex that cannot reach the target in 3 steps.
  std::vector<uint32_t> sources = {0, 5, 0, 10, 15};
  std::vector<QueryId> ids =
      engine.PrepareBatch(query, sources, inst.target);
  ASSERT_EQ(ids.size(), sources.size());

  EngineStats cold = engine.Stats();
  EXPECT_EQ(cold.plan_cache.misses, 4u);  // unique sources only
  EXPECT_EQ(cold.plan_cache.entries, 4u);

  for (size_t j = 0; j < sources.size(); ++j) {
    SCOPED_TRACE("source " + std::to_string(sources[j]));
    EXPECT_EQ(DrainAll(engine, ids[j]),
              Oracle(snap, query, sources[j], inst.target));
  }

  // A warm batch — and warm single Prepares — are pure hits; the
  // batch-filled and singly-filled entries are interchangeable.
  engine.PrepareBatch(query, sources, inst.target);
  engine.Prepare(query, 5, inst.target);
  EngineStats warm = engine.Stats();
  EXPECT_EQ(warm.plan_cache.misses, 4u);
  // 4 unique keys hit in the warm batch (the duplicate aliases its
  // first occurrence) plus the single warm Prepare.
  EXPECT_EQ(warm.plan_cache.hits, cold.plan_cache.hits + 5u);
}

TEST(PlanCacheTest, WorkerEnumeratorCacheIsBounded) {
  Instance inst = Grid(4, 4);
  Nfa query = AnyKDfa(3, 1);
  Snapshot snap = inst.db.Freeze();

  EngineOptions opts;
  opts.num_threads = 1;          // one worker owns one enumerator LRU
  opts.worker_cache_entries = 2;
  QueryEngine engine(opts);
  engine.InstallSnapshot(snap);

  // Four distinct prepared queries round-robin over a 2-entry LRU:
  // every pump after the first cycle needs a rebuild, so evictions must
  // show up — and answers must not change.
  std::vector<uint32_t> sources = {0, 1, 4, 5};
  std::vector<QueryId> ids = engine.PrepareBatch(query, sources, inst.target);
  std::vector<SessionId> sessions;
  std::vector<EdgeSeq> got(ids.size()), want;
  for (QueryId q : ids) sessions.push_back(engine.OpenSession(q));
  for (uint32_t s : sources)
    want.push_back(Oracle(snap, query, s, inst.target));

  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t j = 0; j < sessions.size(); ++j) {
      PumpResult r = engine.Pump(sessions[j], 1);
      ASSERT_NE(r.status, PumpStatus::kRetired);
      for (const Walk& w : r.walks) got[j].push_back(w.edges);
      if (r.status == PumpStatus::kOk) progress = true;
    }
  }
  for (size_t j = 0; j < sessions.size(); ++j) EXPECT_EQ(got[j], want[j]);
  EXPECT_GT(engine.Stats().worker_cache_evictions, 0u);
}

TEST(PlanCacheTest, FrontendChoiceIsRecorded) {
  Instance inst = BubbleChain(4, 2);
  QueryEngine engine(1);
  engine.InstallSnapshot(inst.db.Freeze());
  LabelDictionary* dict = inst.db.mutable_dict();

  PrepareRegexResult small = engine.PrepareRegex("(l0|l1)* l1", dict,
                                                 inst.source, inst.target);
  ASSERT_TRUE(small.ok);
  EXPECT_EQ(small.frontend, Frontend::kThompson);

  PrepareRegexResult big = engine.PrepareRegex(ContainsL0Regex(40), dict,
                                               inst.source, inst.target);
  ASSERT_TRUE(big.ok);
  EXPECT_EQ(big.frontend, Frontend::kGlushkov);

  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.frontend_thompson, 1u);
  EXPECT_EQ(stats.frontend_glushkov, 1u);
}

}  // namespace
}  // namespace dsw
