// The canonicalization layer under the plan cache, pinned from three
// sides:
//
//  1. Soundness: every pair the canonicalizer merges really is
//     language-equal — checked against two independent oracles, exact
//     word enumeration (Nfa::Accepts over every word up to length 4)
//     and the full annotate/trim/enumerate pipeline on graph instances
//     (the frontend-equivalence harness).
//  2. Collision: equivalent-by-the-identities patterns produce equal
//     canonical prints AND byte-identical canonical automaton
//     serializations through CompileRegex — the exact property the
//     PlanCache key relies on. Randomized: equivalence-preserving AST
//     mutations (shuffle/duplicate alternands, re-nest concatenations,
//     stack repetition operators) never change the canonical bytes.
//  3. Separation: inequivalent patterns keep distinct canonical bytes,
//     and each separation witness is certified by a distinguishing word
//     — the cache never needed to merge them, and provably must not.
//
// Plus the per-query front-end heuristic (automaton/frontend.h): small
// atom counts compile through Thompson, the E9 m >= 32 family through
// Glushkov, and the choice is deterministic (repeat compiles are
// byte-identical — a nondeterministic front-end would split the cache).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "automaton/canonical_hash.h"
#include "automaton/frontend.h"
#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/trimmed_index.h"
#include "regex/canonical.h"
#include "regex/regex_parser.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

std::unique_ptr<RegexNode> Clone(const RegexNode& node) {
  auto out = std::make_unique<RegexNode>();
  out->kind = node.kind;
  out->label = node.label;
  for (const auto& c : node.children) out->children.push_back(Clone(*c));
  return out;
}

std::unique_ptr<RegexNode> MustParse(const std::string& pattern) {
  RegexParseResult r = ParseRegex(pattern);
  EXPECT_TRUE(r.ok()) << pattern << ": " << r.error();
  return r.ok() ? Clone(*r.value()) : nullptr;
}

// ------------------------------------------------------------- oracles

// Exact language comparison over every word of length <= max_len drawn
// from label ids [0, num_labels). 3^0 + ... + 3^4 = 121 words at the
// defaults — cheap, and decisive for the small automata under test.
bool SameLanguage(const Nfa& a, const Nfa& b, uint32_t num_labels = 3,
                  uint32_t max_len = 4, std::vector<uint32_t>* witness = nullptr) {
  std::vector<std::vector<uint32_t>> frontier = {{}};
  for (uint32_t len = 0; len <= max_len; ++len) {
    std::vector<std::vector<uint32_t>> next;
    for (const auto& word : frontier) {
      if (a.Accepts(word) != b.Accepts(word)) {
        if (witness != nullptr) *witness = word;
        return false;
      }
      if (len == max_len) continue;
      for (uint32_t l = 0; l < num_labels; ++l) {
        next.push_back(word);
        next.back().push_back(l);
      }
    }
    frontier = std::move(next);
  }
  return true;
}

struct PipelineResult {
  int32_t lambda = -1;
  std::set<std::vector<uint32_t>> walks;
};

PipelineResult RunPipeline(Instance& inst, const Nfa& nfa) {
  PipelineResult res;
  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, nfa, inst.source, inst.target);
  res.lambda = ann.lambda;
  TrimmedIndex index(snap, ann);
  for (TrimmedEnumerator en(ann, index, inst.source, inst.target);
       en.Valid(); en.Next())
    res.walks.insert(en.walk().edges);
  return res;
}

// Compiles both patterns through the shared front-end and asserts the
// cache-key property end to end: equal canonical prints, byte-identical
// canonical automaton serializations, equal hashes — and soundness via
// the word oracle.
void ExpectCollide(const std::string& pa, const std::string& pb) {
  SCOPED_TRACE(pa + "  vs  " + pb);
  std::unique_ptr<RegexNode> a = MustParse(pa);
  std::unique_ptr<RegexNode> b = MustParse(pb);
  ASSERT_TRUE(a != nullptr && b != nullptr);
  EXPECT_EQ(CanonicalPattern(*CanonicalizeRegex(*a)),
            CanonicalPattern(*CanonicalizeRegex(*b)));

  LabelDictionary dict;
  CompiledRegex ca = CompileRegex(*a, &dict);
  CompiledRegex cb = CompileRegex(*b, &dict);
  EXPECT_EQ(ca.frontend, cb.frontend);
  CanonicalAutomaton sa = CanonicalizeAutomaton(ca.nfa);
  CanonicalAutomaton sb = CanonicalizeAutomaton(cb.nfa);
  EXPECT_EQ(sa.bytes, sb.bytes);
  EXPECT_EQ(sa.hash, sb.hash);

  std::vector<uint32_t> witness;
  EXPECT_TRUE(SameLanguage(ca.nfa, cb.nfa, 3, 4, &witness))
      << "collided but languages differ on a word of length "
      << witness.size();
}

// Asserts the patterns stay apart in the cache AND genuinely denote
// different languages (so keeping them apart is required, not a missed
// optimization we silently depend on).
void ExpectSeparate(const std::string& pa, const std::string& pb) {
  SCOPED_TRACE(pa + "  vs  " + pb);
  std::unique_ptr<RegexNode> a = MustParse(pa);
  std::unique_ptr<RegexNode> b = MustParse(pb);
  ASSERT_TRUE(a != nullptr && b != nullptr);
  EXPECT_NE(CanonicalPattern(*CanonicalizeRegex(*a)),
            CanonicalPattern(*CanonicalizeRegex(*b)));

  LabelDictionary dict;
  CompiledRegex ca = CompileRegex(*a, &dict);
  CompiledRegex cb = CompileRegex(*b, &dict);
  EXPECT_NE(CanonicalizeAutomaton(ca.nfa).bytes,
            CanonicalizeAutomaton(cb.nfa).bytes);
  EXPECT_FALSE(SameLanguage(ca.nfa, cb.nfa))
      << "separated but no word up to length 4 distinguishes them";
}

// ------------------------------------------------- hand-written tables

TEST(CanonicalTest, EquivalentPairsCollide) {
  // Commutativity + idempotence of |.
  ExpectCollide("l0|l1", "l1|l0");
  ExpectCollide("l0|l1|l0|l1", "l1|l0");
  ExpectCollide("(l0|l1)|l2", "l2|(l1|l0)");
  // Associativity of concatenation (and redundant grouping).
  ExpectCollide("l0 (l1 l2)", "(l0 l1) l2");
  ExpectCollide("((l0)) ((l1 l2))", "l0 l1 l2");
  // Repetition-stack collapse: same operator twice...
  ExpectCollide("(l0*)*", "l0*");
  ExpectCollide("(l0+)+", "l0+");
  ExpectCollide("(l0?)?", "l0?");
  // ...and every mixed pair is star.
  ExpectCollide("(l0+)?", "l0*");
  ExpectCollide("(l0?)+", "l0*");
  ExpectCollide("(l0*)?", "l0*");
  ExpectCollide("(l0*)+", "l0*");
  ExpectCollide("(l0?)*", "l0*");
  ExpectCollide("(l0+)*", "l0*");
  // Identities compose through the tree.
  ExpectCollide("((l1|l0) (l2 l0))+", "((l0|l1) l2 l0)+");
  ExpectCollide("(((l0 l1)+)?)|l2", "l2|(l0 l1)*");
}

TEST(CanonicalTest, InequivalentPairsSeparate) {
  ExpectSeparate("l0 l1", "l1 l0");      // concat does not commute
  ExpectSeparate("l0*", "l0+");          // distinct operators are distinct
  ExpectSeparate("l0*", "l0?");
  ExpectSeparate("l0+", "l0?");
  ExpectSeparate("l0", "l0 l0");
  ExpectSeparate("l0|l1", "l0");
  ExpectSeparate("l0 l1*", "(l0 l1)*");  // repetition scope matters
  ExpectSeparate("(l0|l1)*", "l0* l1*"); // deliberately not chased
}

TEST(CanonicalTest, CanonicalPatternRoundTrips) {
  // The canonical print reparses to a tree whose canonical print is
  // itself — the fixed-point property that makes the print usable as a
  // sort/dedup key.
  for (const char* pattern :
       {"l0", "l1|l0|l2", "l0 (l1|l2)+ l0?", "((l0+)?|l1) (l2 l0)*",
        "(l0|l1)* l1 (l0|l1)?", "(l0* l1*)*"}) {
    SCOPED_TRACE(pattern);
    std::unique_ptr<RegexNode> ast = MustParse(pattern);
    ASSERT_NE(ast, nullptr);
    std::string canon = CanonicalPattern(*CanonicalizeRegex(*ast));
    std::unique_ptr<RegexNode> reparsed = MustParse(canon);
    ASSERT_NE(reparsed, nullptr);
    EXPECT_EQ(CanonicalPattern(*CanonicalizeRegex(*reparsed)), canon);
  }
}

// ------------------------------------------- randomized property tests

std::unique_ptr<RegexNode> MakeAtom(uint32_t label) {
  auto node = std::make_unique<RegexNode>();
  node->kind = RegexNode::Kind::kAtom;
  node->label = "l";
  node->label += std::to_string(label);
  return node;
}

std::unique_ptr<RegexNode> MakeNode(
    RegexNode::Kind kind, std::vector<std::unique_ptr<RegexNode>> children) {
  auto node = std::make_unique<RegexNode>();
  node->kind = kind;
  node->children = std::move(children);
  return node;
}

std::unique_ptr<RegexNode> RandomAst(std::mt19937& rng, int depth) {
  if (depth == 0 || rng() % 4 == 0) return MakeAtom(rng() % 3);
  switch (rng() % 3) {
    case 0:
    case 1: {  // concat or alternation of 2-3 subtrees
      RegexNode::Kind kind = rng() % 2 == 0 ? RegexNode::Kind::kConcat
                                            : RegexNode::Kind::kAlternation;
      std::vector<std::unique_ptr<RegexNode>> children;
      uint32_t n = 2 + rng() % 2;
      for (uint32_t i = 0; i < n; ++i)
        children.push_back(RandomAst(rng, depth - 1));
      return MakeNode(kind, std::move(children));
    }
    default: {
      RegexNode::Kind kinds[] = {RegexNode::Kind::kStar,
                                 RegexNode::Kind::kPlus,
                                 RegexNode::Kind::kOptional};
      std::vector<std::unique_ptr<RegexNode>> child;
      child.push_back(RandomAst(rng, depth - 1));
      return MakeNode(kinds[rng() % 3], std::move(child));
    }
  }
}

std::unique_ptr<RegexNode> Wrap1(RegexNode::Kind kind,
                                 std::unique_ptr<RegexNode> child) {
  std::vector<std::unique_ptr<RegexNode>> c;
  c.push_back(std::move(child));
  return MakeNode(kind, std::move(c));
}

// An equivalence-preserving rewrite of the tree, one identity per node
// drawn at random: exactly the transformations the canonicalizer claims
// to undo.
std::unique_ptr<RegexNode> Mutate(const RegexNode& node, std::mt19937& rng) {
  switch (node.kind) {
    case RegexNode::Kind::kAtom:
      return Clone(node);
    case RegexNode::Kind::kConcat: {
      std::vector<std::unique_ptr<RegexNode>> parts;
      for (const auto& c : node.children) parts.push_back(Mutate(*c, rng));
      // Associativity: re-nest a prefix into an inner concatenation.
      if (parts.size() >= 2 && rng() % 2 == 0) {
        std::vector<std::unique_ptr<RegexNode>> head;
        head.push_back(std::move(parts[0]));
        head.push_back(std::move(parts[1]));
        std::vector<std::unique_ptr<RegexNode>> rebuilt;
        rebuilt.push_back(MakeNode(RegexNode::Kind::kConcat, std::move(head)));
        for (size_t i = 2; i < parts.size(); ++i)
          rebuilt.push_back(std::move(parts[i]));
        if (rebuilt.size() == 1) return std::move(rebuilt.front());
        return MakeNode(RegexNode::Kind::kConcat, std::move(rebuilt));
      }
      return MakeNode(RegexNode::Kind::kConcat, std::move(parts));
    }
    case RegexNode::Kind::kAlternation: {
      std::vector<std::unique_ptr<RegexNode>> branches;
      for (const auto& c : node.children)
        branches.push_back(Mutate(*c, rng));
      // Idempotence: duplicate a branch...
      if (rng() % 2 == 0)
        branches.push_back(Clone(*branches[rng() % branches.size()]));
      // ...and commutativity: rotate the order.
      std::rotate(branches.begin(),
                  branches.begin() + rng() % branches.size(), branches.end());
      return MakeNode(RegexNode::Kind::kAlternation, std::move(branches));
    }
    case RegexNode::Kind::kStar:
      // Every mixed stack is star; same-operator stacks keep it.
      switch (rng() % 4) {
        case 0: return Wrap1(RegexNode::Kind::kStar,
                             Wrap1(RegexNode::Kind::kStar,
                                   Mutate(*node.children.front(), rng)));
        case 1: return Wrap1(RegexNode::Kind::kOptional,
                             Wrap1(RegexNode::Kind::kPlus,
                                   Mutate(*node.children.front(), rng)));
        case 2: return Wrap1(RegexNode::Kind::kPlus,
                             Wrap1(RegexNode::Kind::kOptional,
                                   Mutate(*node.children.front(), rng)));
        default: return Wrap1(RegexNode::Kind::kStar,
                              Mutate(*node.children.front(), rng));
      }
    case RegexNode::Kind::kPlus:
      if (rng() % 2 == 0)
        return Wrap1(RegexNode::Kind::kPlus,
                     Wrap1(RegexNode::Kind::kPlus,
                           Mutate(*node.children.front(), rng)));
      return Wrap1(RegexNode::Kind::kPlus,
                   Mutate(*node.children.front(), rng));
    case RegexNode::Kind::kOptional:
      if (rng() % 2 == 0)
        return Wrap1(RegexNode::Kind::kOptional,
                     Wrap1(RegexNode::Kind::kOptional,
                           Mutate(*node.children.front(), rng)));
      return Wrap1(RegexNode::Kind::kOptional,
                   Mutate(*node.children.front(), rng));
  }
  return nullptr;  // unreachable
}

TEST(CanonicalTest, RandomEquivalentMutationsCollide) {
  std::mt19937 rng(20240807);
  for (int round = 0; round < 200; ++round) {
    std::unique_ptr<RegexNode> ast = RandomAst(rng, 3);
    std::unique_ptr<RegexNode> mutated = Mutate(*ast, rng);
    SCOPED_TRACE("round " + std::to_string(round) + ": " +
                 CanonicalPattern(*ast) + "  ~~  " +
                 CanonicalPattern(*mutated));

    EXPECT_EQ(CanonicalPattern(*CanonicalizeRegex(*ast)),
              CanonicalPattern(*CanonicalizeRegex(*mutated)));

    LabelDictionary dict;
    CompiledRegex ca = CompileRegex(*ast, &dict);
    CompiledRegex cb = CompileRegex(*mutated, &dict);
    EXPECT_EQ(CanonicalizeAutomaton(ca.nfa).bytes,
              CanonicalizeAutomaton(cb.nfa).bytes);

    // Soundness oracle: the mutation and the canonicalization both
    // preserved the language (shorter words here: 200 rounds).
    std::vector<uint32_t> witness;
    EXPECT_TRUE(SameLanguage(ca.nfa, cb.nfa, 3, 3, &witness))
        << "witness length " << witness.size();
  }
}

TEST(CanonicalTest, PipelineAgreesOnMergedPatterns) {
  // The end-to-end cross-check the ISSUE names: patterns the cache
  // merges drive the full annotate/trim/enumerate pipeline to the same
  // lambda and the same distinct-shortest-walk set on real instances.
  const std::pair<std::string, std::string> pairs[] = {
      {"(l0|l1)* l1 (l1|l0)?", "(l1|l0)* l1 (l0|l1)?"},
      {"((l0+)?|l1) (l0 l1)", "(l1|l0*) l0 l1"},
      {"(l0 (l1 l1))+", "((l0 l1) l1)+"},
      {"((l0|l1)?)*", "(l1|l0)*"},
  };
  Instance insts[] = {BubbleChain(5, 2), Grid(3, 3),
                      EmbedInNoise(BubbleChain(4, 2), 30, 120, 7)};
  for (Instance& inst : insts) {
    LabelDictionary* dict = inst.db.mutable_dict();
    for (const auto& [pa, pb] : pairs) {
      SCOPED_TRACE(pa + "  vs  " + pb);
      std::unique_ptr<RegexNode> a = MustParse(pa);
      std::unique_ptr<RegexNode> b = MustParse(pb);
      ASSERT_TRUE(a != nullptr && b != nullptr);
      CompiledRegex ca = CompileRegex(*a, dict);
      CompiledRegex cb = CompileRegex(*b, dict);
      ASSERT_EQ(CanonicalizeAutomaton(ca.nfa).bytes,
                CanonicalizeAutomaton(cb.nfa).bytes);
      PipelineResult ra = RunPipeline(inst, ca.nfa);
      PipelineResult rb = RunPipeline(inst, cb.nfa);
      EXPECT_EQ(ra.lambda, rb.lambda);
      EXPECT_EQ(ra.walks, rb.walks);
    }
  }
}

// ------------------------------------------------- front-end heuristic

TEST(CanonicalTest, FrontendHeuristicPicksBySize) {
  LabelDictionary dict;
  // Small atom count: Glushkov saves no words, Thompson's O(|R|) build
  // wins the tie.
  std::unique_ptr<RegexNode> small = MustParse("(l0|l1)* l1");
  EXPECT_EQ(CompileRegex(*small, &dict).frontend, Frontend::kThompson);

  // The E9 family at m = 40: Glushkov's 2m + 2 position states pack
  // into strictly fewer words than Thompson's epsilon machine.
  std::unique_ptr<RegexNode> big = MustParse(ContainsL0Regex(40));
  CompiledRegex cg = CompileRegex(*big, &dict);
  EXPECT_EQ(cg.frontend, Frontend::kGlushkov);
  EXPECT_EQ(cg.nfa.num_states(), cg.canonical->NumAtoms() + 1);
  EXPECT_EQ(cg.nfa.num_epsilon_transitions(), 0u);

  // Determinism: recompiling yields byte-identical automata — a
  // wobbling front-end would split the plan cache.
  for (const RegexNode* ast : {small.get(), big.get()}) {
    CompiledRegex first = CompileRegex(*ast, &dict);
    CompiledRegex second = CompileRegex(*ast, &dict);
    EXPECT_EQ(first.frontend, second.frontend);
    EXPECT_EQ(CanonicalizeAutomaton(first.nfa).bytes,
              CanonicalizeAutomaton(second.nfa).bytes);
  }
}

TEST(CanonicalTest, AutomatonSerializationIgnoresInsertionOrder) {
  // Two NFAs with the same states/transitions added in different orders
  // serialize identically; a genuinely different NFA does not.
  Nfa a;
  for (int i = 0; i < 3; ++i) a.AddState();
  a.AddInitial(0);
  a.AddFinal(2);
  a.AddTransition(0, 0, 1);
  a.AddTransition(1, 1, 2);
  a.AddEpsilonTransition(0, 2);

  Nfa b;
  for (int i = 0; i < 3; ++i) b.AddState();
  b.AddTransition(1, 1, 2);
  b.AddEpsilonTransition(0, 2);
  b.AddTransition(0, 0, 1);
  b.AddFinal(2);
  b.AddInitial(0);

  CanonicalAutomaton sa = CanonicalizeAutomaton(a);
  CanonicalAutomaton sb = CanonicalizeAutomaton(b);
  EXPECT_EQ(sa.bytes, sb.bytes);
  EXPECT_EQ(sa.hash, sb.hash);

  Nfa c;
  for (int i = 0; i < 3; ++i) c.AddState();
  c.AddInitial(0);
  c.AddFinal(2);
  c.AddTransition(0, 0, 1);
  c.AddTransition(1, 0, 2);  // label differs
  c.AddEpsilonTransition(0, 2);
  EXPECT_NE(CanonicalizeAutomaton(c).bytes, sa.bytes);
}

}  // namespace
}  // namespace dsw
