// Unit tests for Database and LabelDictionary, pinning the contract the
// regex front-end relies on: mutable_dict() is a stable pointer into the
// database, and Intern is idempotent, so recompiling a query inside a
// bench loop never changes label ids or grows the dictionary.

#include <gtest/gtest.h>

#include <string>

#include "core/annotate.h"
#include "core/database.h"
#include "core/trimmed_index.h"
#include "util/state_set.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

TEST(LabelDictionaryTest, InternIsIdempotent) {
  LabelDictionary dict;
  uint32_t a = dict.Intern("a");
  uint32_t b = dict.Intern("b");
  EXPECT_NE(a, b);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(dict.Intern("a"), a);
    EXPECT_EQ(dict.Intern("b"), b);
  }
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Name(a), "a");
  EXPECT_EQ(dict.Name(b), "b");
}

TEST(LabelDictionaryTest, FindDoesNotCreate) {
  LabelDictionary dict;
  EXPECT_EQ(dict.Find("missing"), LabelDictionary::kInvalid);
  EXPECT_EQ(dict.size(), 0u);
  uint32_t id = dict.Intern("present");
  EXPECT_EQ(dict.Find("present"), id);
}

TEST(DatabaseTest, MutableDictIsStableAcrossMutations) {
  Database db;
  LabelDictionary* dict = db.mutable_dict();
  ASSERT_NE(dict, nullptr);
  EXPECT_EQ(dict, &db.labels());

  uint32_t l0 = dict->Intern("l0");
  db.AddVertices(100);
  for (uint32_t v = 0; v + 1 < 100; ++v) db.AddEdge(v, "l1", v + 1);

  // Same pointer, same ids, after vertex/edge growth.
  EXPECT_EQ(db.mutable_dict(), dict);
  EXPECT_EQ(dict->Intern("l0"), l0);
  EXPECT_EQ(dict->size(), 2u);
}

TEST(DatabaseTest, RepeatedInterningThroughInstanceIsIdempotent) {
  // Mirror of bench_regex's timed loop: interning the generator's
  // labels over and over through mutable_dict() must be a no-op.
  Instance inst = BubbleChain(3, 2);
  uint32_t size_before = inst.db.labels().size();
  uint32_t l0 = inst.db.labels().Find("l0");
  ASSERT_NE(l0, LabelDictionary::kInvalid);
  for (int round = 0; round < 10; ++round) {
    LabelDictionary* dict = inst.db.mutable_dict();
    EXPECT_EQ(dict->Intern("l0"), l0);
    std::string name("l");
    name += std::to_string(round % 2);
    EXPECT_EQ(dict->Intern(name),
              round % 2 == 0 ? l0 : inst.db.labels().Find("l1"));
  }
  EXPECT_EQ(inst.db.labels().size(), size_before);
}

TEST(DatabaseTest, GenerationCountsStructuralMutationsOnly) {
  Database db;
  EXPECT_EQ(db.generation(), 0u);
  db.AddVertex();
  uint64_t after_vertex = db.generation();
  EXPECT_GT(after_vertex, 0u);
  db.AddVertices(4);
  uint64_t after_vertices = db.generation();
  EXPECT_GT(after_vertices, after_vertex);
  db.AddEdge(0, "l0", 1);
  EXPECT_GT(db.generation(), after_vertices);

  // Label interning, read-only accessors and freezing are not
  // mutations: a query recompiled against a live database must not flag
  // the snapshots stale.
  uint64_t gen = db.generation();
  db.mutable_dict()->Intern("l1");
  db.labels().Find("l0");
  (void)db.Freeze();
  EXPECT_EQ(db.generation(), gen);
}

TEST(DatabaseTest, ZeroVertexAddIsGenerationNeutral) {
  // Regression: AddVertices(0) used to bump the generation, retiring
  // every snapshot, session and cached plan for a mutation that never
  // happened. A zero-vertex call must be a complete no-op.
  Database db;
  db.AddVertices(3);
  db.AddEdge(0, "l0", 1);
  Snapshot snap = db.Freeze();
  uint64_t gen = db.generation();

  EXPECT_EQ(db.AddVertices(0), 3u);  // still returns the next id
  EXPECT_EQ(db.generation(), gen);
  EXPECT_EQ(db.num_vertices(), 3u);
  EXPECT_TRUE(snap.fresh());  // the snapshot survived

  // And the delta layer agrees: re-freezing yields the same generation
  // with an empty known delta.
  Snapshot again = db.Freeze();
  EXPECT_EQ(again.generation(), snap.generation());
  EdgeDelta delta = again.DeltaFrom(snap.generation());
  EXPECT_TRUE(delta.known);
  EXPECT_EQ(delta.first_new_vertex, 3u);
  EXPECT_EQ(delta.first_new_edge, 1u);
}

TEST(SnapshotTest, DeltaFromTracksInsertOnlyFreezes) {
  Database db;
  db.AddVertices(4);
  db.AddEdge(0, "l0", 1);
  Snapshot first = db.Freeze();
  uint64_t gen1 = first.generation();

  db.AddVertices(2);
  db.AddEdge(1, "l0", 2);
  db.AddEdge(2, "l0", 5);
  Snapshot second = db.Freeze();

  // Known delta: exactly the vertex and edge suffixes added since gen1.
  EdgeDelta d = second.DeltaFrom(gen1);
  ASSERT_TRUE(d.known);
  EXPECT_EQ(d.first_new_vertex, 4u);
  EXPECT_EQ(d.first_new_edge, 1u);

  // Same-generation delta: known and empty (suffixes start at the end).
  EdgeDelta same = second.DeltaFrom(second.generation());
  ASSERT_TRUE(same.known);
  EXPECT_EQ(same.first_new_vertex, 6u);
  EXPECT_EQ(same.first_new_edge, 3u);

  // A generation that was never frozen — or lies in the future — is
  // unknown: callers must rebuild from scratch.
  EXPECT_FALSE(second.DeltaFrom(gen1 + 1).known);
  EXPECT_FALSE(second.DeltaFrom(second.generation() + 100).known);
}

TEST(SnapshotTest, DeltaFromForgetsMarksBeyondTheBoundedLog) {
  // The freeze-mark log keeps the most recent kMaxFreezeMarks (64)
  // freezes; a generation older than that ages out and its delta
  // becomes unknown — the fall-back-to-rebuild signal, not an error.
  Database db;
  db.AddVertices(2);
  db.AddEdge(0, "l0", 1);
  uint64_t oldest = db.Freeze().generation();
  for (int i = 0; i < 70; ++i) {
    db.AddEdge(0, "l0", 1);
    (void)db.Freeze();
  }
  Snapshot latest = db.Freeze();
  EXPECT_FALSE(latest.DeltaFrom(oldest).known);
  // Recent marks are still served.
  EdgeDelta recent = latest.DeltaFrom(latest.generation());
  EXPECT_TRUE(recent.known);
}

TEST(SnapshotTest, FreezeCapturesTheCurrentGeneration) {
  Database db;
  db.AddVertices(3);
  db.AddEdge(0, "l0", 1);
  Snapshot snap = db.Freeze();
  EXPECT_TRUE(static_cast<bool>(snap));
  EXPECT_TRUE(snap.fresh());
  EXPECT_EQ(snap.generation(), db.generation());
  EXPECT_EQ(snap.num_vertices(), 3u);
  EXPECT_EQ(snap.num_edges(), 1u);
  EXPECT_EQ(snap.tgt_idx(0), snap.label_index().PositionOf(0));

  // A default-constructed snapshot is null and never fresh.
  Snapshot null_snap;
  EXPECT_FALSE(static_cast<bool>(null_snap));
  EXPECT_FALSE(null_snap.fresh());
}

TEST(SnapshotTest, RefreezeWithoutMutationReusesTheBuiltIndex) {
  // Freeze() caches the built LabelIndex per generation; re-freezing an
  // unchanged database is O(1) and shares the same physical index —
  // the contract the engine relies on when many queries Freeze() the
  // same database.
  Database db;
  db.AddVertices(4);
  db.AddEdge(0, "l0", 1);
  db.AddEdge(1, "l0", 2);
  Snapshot a = db.Freeze();
  Snapshot b = db.Freeze();
  const LabelIndex* shared = &b.label_index();
  EXPECT_EQ(&a.label_index(), shared);
  EXPECT_EQ(a.generation(), b.generation());

  // A mutation retires both (so their label_index() would assert from
  // here on) and the next freeze builds a new index.
  db.AddEdge(2, "l0", 3);
  EXPECT_FALSE(a.fresh());
  EXPECT_FALSE(b.fresh());
  Snapshot c = db.Freeze();
  EXPECT_TRUE(c.fresh());
  EXPECT_NE(&c.label_index(), shared);
  EXPECT_EQ(c.num_edges(), 3u);
}

TEST(SnapshotTest, OldSnapshotStaysReadableUntilAccessedAfterMutation) {
  // The shared_ptr keeps the frozen index alive independently of the
  // database's cache slot, so holding a snapshot across someone else's
  // Freeze() of the same generation is safe.
  Database db;
  db.AddVertices(3);
  db.AddEdge(0, "l0", 1);
  Snapshot a = db.Freeze();
  const LabelIndex* ix = &a.label_index();
  Snapshot b = db.Freeze();
  EXPECT_EQ(&b.label_index(), ix);
}

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
// The stale-snapshot hazard, made loud: an index built before a
// mutation must assert on its next access instead of serving spans and
// positions that describe the pre-mutation adjacency.
TEST(DatabaseDeathTest, StaleTrimmedIndexAssertsInDebug) {
  Instance inst = BubbleChain(3, 2);
  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, StaircaseNfa(1, 2), inst.source,
                            inst.target);
  TrimmedIndex index(snap, ann);
  ASSERT_FALSE(index.empty());
  EXPECT_TRUE(static_cast<bool>(index.Useful(0, inst.source)));
  inst.db.AddEdge(inst.source, 0u, inst.target);  // invalidates the index
  EXPECT_DEATH((void)index.Useful(0, inst.source), "stale TrimmedIndex");
  EXPECT_DEATH((void)index.Candidates(0, inst.source), "stale TrimmedIndex");
}

TEST(DatabaseDeathTest, StaleSnapshotAssertsInDebug) {
  Database db;
  db.AddVertices(2);
  db.AddEdge(0, "l0", 1);
  Snapshot snap = db.Freeze();
  (void)snap.label_index();  // fresh: fine
  db.AddVertex();            // retires the snapshot
  EXPECT_DEATH((void)snap.label_index(), "stale Snapshot");
  EXPECT_DEATH((void)snap.OutEdges(0), "stale Snapshot");
}
#endif

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
TEST(StateSetViewDeathTest, NullViewProbesAssertInDebug) {
  // A null view is the lookup-miss sentinel; probing one is a missed
  // branch at the call site and must die loudly instead of reading
  // through nullptr.
  StateSetView null_view;
  EXPECT_DEATH((void)null_view.Test(0), "null StateSetView");
  EXPECT_DEATH(null_view.ForEach([](uint32_t) {}), "null StateSetView");
}
#endif

}  // namespace
}  // namespace dsw
