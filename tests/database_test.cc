// Unit tests for Database and LabelDictionary, pinning the contract the
// regex front-end relies on: mutable_dict() is a stable pointer into the
// database, and Intern is idempotent, so recompiling a query inside a
// bench loop never changes label ids or grows the dictionary.

#include <gtest/gtest.h>

#include <string>

#include "core/annotate.h"
#include "core/database.h"
#include "core/trimmed_index.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

TEST(LabelDictionaryTest, InternIsIdempotent) {
  LabelDictionary dict;
  uint32_t a = dict.Intern("a");
  uint32_t b = dict.Intern("b");
  EXPECT_NE(a, b);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(dict.Intern("a"), a);
    EXPECT_EQ(dict.Intern("b"), b);
  }
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Name(a), "a");
  EXPECT_EQ(dict.Name(b), "b");
}

TEST(LabelDictionaryTest, FindDoesNotCreate) {
  LabelDictionary dict;
  EXPECT_EQ(dict.Find("missing"), LabelDictionary::kInvalid);
  EXPECT_EQ(dict.size(), 0u);
  uint32_t id = dict.Intern("present");
  EXPECT_EQ(dict.Find("present"), id);
}

TEST(DatabaseTest, MutableDictIsStableAcrossMutations) {
  Database db;
  LabelDictionary* dict = db.mutable_dict();
  ASSERT_NE(dict, nullptr);
  EXPECT_EQ(dict, &db.labels());

  uint32_t l0 = dict->Intern("l0");
  db.AddVertices(100);
  for (uint32_t v = 0; v + 1 < 100; ++v) db.AddEdge(v, "l1", v + 1);

  // Same pointer, same ids, after vertex/edge growth.
  EXPECT_EQ(db.mutable_dict(), dict);
  EXPECT_EQ(dict->Intern("l0"), l0);
  EXPECT_EQ(dict->size(), 2u);
}

TEST(DatabaseTest, RepeatedInterningThroughInstanceIsIdempotent) {
  // Mirror of bench_regex's timed loop: interning the generator's
  // labels over and over through mutable_dict() must be a no-op.
  Instance inst = BubbleChain(3, 2);
  uint32_t size_before = inst.db.labels().size();
  uint32_t l0 = inst.db.labels().Find("l0");
  ASSERT_NE(l0, LabelDictionary::kInvalid);
  for (int round = 0; round < 10; ++round) {
    LabelDictionary* dict = inst.db.mutable_dict();
    EXPECT_EQ(dict->Intern("l0"), l0);
    std::string name("l");
    name += std::to_string(round % 2);
    EXPECT_EQ(dict->Intern(name),
              round % 2 == 0 ? l0 : inst.db.labels().Find("l1"));
  }
  EXPECT_EQ(inst.db.labels().size(), size_before);
}

TEST(DatabaseTest, GenerationCountsStructuralMutationsOnly) {
  Database db;
  EXPECT_EQ(db.generation(), 0u);
  db.AddVertex();
  uint64_t after_vertex = db.generation();
  EXPECT_GT(after_vertex, 0u);
  db.AddVertices(4);
  uint64_t after_vertices = db.generation();
  EXPECT_GT(after_vertices, after_vertex);
  db.AddEdge(0, "l0", 1);
  EXPECT_GT(db.generation(), after_vertices);

  // Label interning and read-only accessors are not mutations: a query
  // recompiled against a live database must not flag the indexes stale.
  uint64_t gen = db.generation();
  db.mutable_dict()->Intern("l1");
  db.labels().Find("l0");
  (void)db.label_index();
  (void)db.tgt_idx(0);
  EXPECT_EQ(db.generation(), gen);
}

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
// The stale-snapshot hazard, made loud: an index built before a
// mutation must assert on its next access instead of serving spans and
// positions that describe the pre-mutation adjacency.
TEST(DatabaseDeathTest, StaleTrimmedIndexAssertsInDebug) {
  Instance inst = BubbleChain(3, 2);
  Annotation ann = Annotate(inst.db, StaircaseNfa(1, 2), inst.source,
                            inst.target);
  TrimmedIndex index(inst.db, ann);
  ASSERT_FALSE(index.empty());
  EXPECT_TRUE(static_cast<bool>(index.Useful(0, inst.source)));
  inst.db.AddEdge(inst.source, 0u, inst.target);  // invalidates the index
  EXPECT_DEATH((void)index.Useful(0, inst.source), "stale TrimmedIndex");
  EXPECT_DEATH((void)index.Candidates(0, inst.source), "stale TrimmedIndex");
}
#endif

}  // namespace
}  // namespace dsw
