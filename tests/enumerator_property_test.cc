// Property test: on randomized small instances, the trimmed enumerator
// must agree with the naive product-path baseline as a *set* of walks,
// emit zero duplicates, and emit only walks of length lambda. The naive
// baseline is independent enough (it never builds the trimmed structure
// and dedupes by brute force) to serve as the oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "baseline/naive.h"
#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/trimmed_index.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

void ExpectTrimmedMatchesNaive(Instance& inst, const Nfa& query,
                               const char* what) {
  SCOPED_TRACE(what);
  Snapshot snap = inst.db.Freeze();
  NaiveResult naive = NaiveDistinctShortestWalks(snap, query, inst.source,
                                                 inst.target);
  ASSERT_FALSE(naive.budget_exhausted);

  Annotation ann = Annotate(snap, query, inst.source, inst.target);
  TrimmedIndex index(snap, ann);
  EXPECT_EQ(ann.lambda, naive.lambda);

  std::set<std::vector<uint32_t>> trimmed_set;
  size_t emitted = 0;
  for (TrimmedEnumerator en(ann, index, inst.source, inst.target);
       en.Valid(); en.Next()) {
    ++emitted;
    EXPECT_EQ(en.walk().length(), static_cast<size_t>(ann.lambda));
    trimmed_set.insert(en.walk().edges);
  }
  EXPECT_EQ(emitted, trimmed_set.size()) << "trimmed emitted duplicates";

  std::set<std::vector<uint32_t>> naive_set;
  for (const Walk& w : naive.walks) naive_set.insert(w.edges);
  EXPECT_EQ(trimmed_set, naive_set);
}

TEST(EnumeratorPropertyTest, MatchesNaiveOnBubbleChains) {
  for (uint32_t k = 1; k <= 6; ++k) {
    Instance inst = BubbleChain(k, 2);
    ExpectTrimmedMatchesNaive(inst, StaircaseNfa(1, 2), "staircase1");
    ExpectTrimmedMatchesNaive(inst, StaircaseNfa(2, 2), "staircase2");
    ExpectTrimmedMatchesNaive(inst, CompleteNfa(3, 2), "complete3");
  }
}

TEST(EnumeratorPropertyTest, MatchesNaiveOnRandomLayeredGraphs) {
  for (uint64_t seed : {3u, 7u, 11u, 19u, 23u, 31u, 43u, 59u}) {
    LayeredGraphParams params;
    params.layers = 3 + seed % 3;
    params.width = 3 + seed % 2;
    params.edges_per_vertex = 2 + seed % 2;
    params.num_labels = 2;
    params.extra_labels = 1;
    params.multi_label_p = 0.4;
    params.seed = seed;
    Instance inst = LayeredGraph(params);
    ExpectTrimmedMatchesNaive(inst, StaircaseNfa(1, 2), "staircase1");
    ExpectTrimmedMatchesNaive(inst, StaircaseNfa(2, 2), "staircase2");
  }
}

TEST(EnumeratorPropertyTest, MatchesNaiveOnGrids) {
  for (uint32_t n = 2; n <= 4; ++n) {
    Instance inst = Grid(n, n);
    ExpectTrimmedMatchesNaive(inst, StaircaseNfa(1, 1), "staircase1");
    ExpectTrimmedMatchesNaive(inst, AnyKDfa(2 * (n - 1), 1), "anyk");
  }
}

TEST(EnumeratorPropertyTest, NaiveCountsDuplicatesTrimmedAvoids) {
  // BubbleChain(4) under the width-2 staircase: 16 answers, each with
  // C(8, 2) = 28 accepting runs; the naive baseline must report the
  // excess as duplicates while the trimmed enumerator emits 16 walks.
  Instance inst = BubbleChain(4, 2);
  Nfa query = StaircaseNfa(2, 2);
  Snapshot snap = inst.db.Freeze();
  NaiveResult naive = NaiveDistinctShortestWalks(snap, query, inst.source,
                                                 inst.target);
  EXPECT_EQ(naive.walks.size(), 16u);
  EXPECT_EQ(naive.duplicates, 16u * 28 - 16u);

  Annotation ann = Annotate(snap, query, inst.source, inst.target);
  TrimmedIndex index(snap, ann);
  size_t emitted = 0;
  for (TrimmedEnumerator en(ann, index, inst.source, inst.target);
       en.Valid(); en.Next())
    ++emitted;
  EXPECT_EQ(emitted, 16u);
}

TEST(EnumeratorPropertyTest, NoiseEmbeddingPreservesTheAnswerSet) {
  Instance core = BubbleChain(5, 2);
  Nfa query = StaircaseNfa(1, 2);
  NaiveResult base = NaiveDistinctShortestWalks(core.db.Freeze(), query,
                                                core.source, core.target);
  Instance noisy = EmbedInNoise(core, 50, 200, 41);
  ASSERT_GT(noisy.db.size(), core.db.size());
  ExpectTrimmedMatchesNaive(noisy, query, "noisy");
  NaiveResult after = NaiveDistinctShortestWalks(noisy.db.Freeze(), query,
                                                 noisy.source, noisy.target);
  EXPECT_EQ(after.walks.size(), base.walks.size());
  EXPECT_EQ(after.lambda, base.lambda);
}

}  // namespace
}  // namespace dsw
