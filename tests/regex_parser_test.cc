// Unit tests for the regex front-end parser: tokenization of multi-char
// label atoms, operator precedence, grouping/nesting, postfix stacking,
// and error reporting through the status-or result. A few language-level
// checks run the parsed AST through both automaton constructions and
// compare Accepts() verdicts, so the parse tree shape is pinned down by
// semantics as well as structure.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automaton/glushkov.h"
#include "automaton/thompson.h"
#include "core/database.h"
#include "regex/regex_parser.h"

namespace dsw {
namespace {

using Kind = RegexNode::Kind;

const RegexNode& Parse(const std::string& pattern, RegexParseResult* out) {
  *out = ParseRegex(pattern);
  EXPECT_TRUE(out->ok()) << pattern << ": " << out->error();
  return *out->value();
}

TEST(RegexParserTest, SingleAtomKeepsTheWholeName) {
  RegexParseResult r;
  const RegexNode& node = Parse("knows_v2", &r);
  EXPECT_EQ(node.kind, Kind::kAtom);
  EXPECT_EQ(node.label, "knows_v2");
  EXPECT_EQ(node.NumAtoms(), 1u);
}

TEST(RegexParserTest, DigitsBelongToTheAtom) {
  // "l10" is one label; "l1 l0" is a concatenation of two.
  RegexParseResult r;
  const RegexNode& one = Parse("l10", &r);
  EXPECT_EQ(one.kind, Kind::kAtom);
  EXPECT_EQ(one.label, "l10");

  const RegexNode& two = Parse("l1 l0", &r);
  ASSERT_EQ(two.kind, Kind::kConcat);
  ASSERT_EQ(two.children.size(), 2u);
  EXPECT_EQ(two.children[0]->label, "l1");
  EXPECT_EQ(two.children[1]->label, "l0");
}

TEST(RegexParserTest, RepetitionBindsTighterThanConcatenation) {
  RegexParseResult r;
  const RegexNode& node = Parse("a b*", &r);
  ASSERT_EQ(node.kind, Kind::kConcat);
  ASSERT_EQ(node.children.size(), 2u);
  EXPECT_EQ(node.children[0]->kind, Kind::kAtom);
  ASSERT_EQ(node.children[1]->kind, Kind::kStar);
  EXPECT_EQ(node.children[1]->children[0]->label, "b");
}

TEST(RegexParserTest, ConcatenationBindsTighterThanAlternation) {
  RegexParseResult r;
  const RegexNode& node = Parse("a b|c d", &r);
  ASSERT_EQ(node.kind, Kind::kAlternation);
  ASSERT_EQ(node.children.size(), 2u);
  EXPECT_EQ(node.children[0]->kind, Kind::kConcat);
  EXPECT_EQ(node.children[1]->kind, Kind::kConcat);
}

TEST(RegexParserTest, GroupingOverridesPrecedence) {
  RegexParseResult r;
  const RegexNode& node = Parse("(a|b) c", &r);
  ASSERT_EQ(node.kind, Kind::kConcat);
  ASSERT_EQ(node.children.size(), 2u);
  EXPECT_EQ(node.children[0]->kind, Kind::kAlternation);
  EXPECT_EQ(node.children[1]->label, "c");

  const RegexNode& starred = Parse("(a b)*", &r);
  ASSERT_EQ(starred.kind, Kind::kStar);
  EXPECT_EQ(starred.children[0]->kind, Kind::kConcat);
}

TEST(RegexParserTest, RedundantParenthesesCollapse) {
  RegexParseResult r;
  const RegexNode& node = Parse("((a))", &r);
  EXPECT_EQ(node.kind, Kind::kAtom);
  EXPECT_EQ(node.label, "a");
}

TEST(RegexParserTest, AlternationFlattensAcrossBranches) {
  RegexParseResult r;
  const RegexNode& node = Parse("a|b|c|d", &r);
  ASSERT_EQ(node.kind, Kind::kAlternation);
  EXPECT_EQ(node.children.size(), 4u);
  EXPECT_EQ(node.NumAtoms(), 4u);
}

TEST(RegexParserTest, PostfixOperatorsStack) {
  RegexParseResult r;
  const RegexNode& node = Parse("a+?", &r);
  ASSERT_EQ(node.kind, Kind::kOptional);
  ASSERT_EQ(node.children[0]->kind, Kind::kPlus);
  EXPECT_EQ(node.children[0]->children[0]->label, "a");
}

TEST(RegexParserTest, ErrorCasesReturnNotOk) {
  const char* bad[] = {
      "",        // empty pattern
      "   ",     // only whitespace
      "(",       // unterminated group
      "(a",      // unterminated group with content
      "a)",      // unmatched close
      "()",      // empty group
      "|a",      // leading bare alternation
      "a|",      // trailing bare alternation
      "a||b",    // empty middle branch
      "*",       // repetition with no operand
      "a (*)",   // repetition with no operand, nested
      "a&b",     // character outside the atom alphabet
  };
  for (const char* pattern : bad) {
    RegexParseResult r = ParseRegex(pattern);
    EXPECT_FALSE(r.ok()) << "accepted: \"" << pattern << "\"";
    EXPECT_EQ(r.value(), nullptr);
    EXPECT_FALSE(r.error().empty()) << pattern;
  }
}

TEST(RegexParserTest, PathologicalDepthFailsInsteadOfOverflowingTheStack) {
  // Parsing, both automaton builders, and the AST destructor all
  // recurse over the tree; hostile inputs must come back through the
  // status-or path, not crash the process.
  std::string deep_open(100000, '(');
  EXPECT_FALSE(ParseRegex(deep_open).ok());
  std::string deep_balanced(100000, '(');
  deep_balanced += "a";
  deep_balanced += std::string(100000, ')');
  EXPECT_FALSE(ParseRegex(deep_balanced).ok());
  std::string star_stack("a");
  star_stack += std::string(100000, '*');
  EXPECT_FALSE(ParseRegex(star_stack).ok());

  // Reasonable nesting and stacking stay accepted.
  std::string ok_nested(50, '(');
  ok_nested += "a";
  ok_nested += std::string(50, ')');
  EXPECT_TRUE(ParseRegex(ok_nested).ok());
  std::string ok_stars("a");
  ok_stars += std::string(8, '*');
  EXPECT_TRUE(ParseRegex(ok_stars).ok());
}

TEST(RegexParserTest, ErrorMessagesCarryAPosition) {
  RegexParseResult r = ParseRegex("a b &");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("position 4"), std::string::npos) << r.error();
}

// Semantic pin: both constructions of the same AST agree with hand
// membership expectations, including epsilon acceptance.
TEST(RegexParserTest, ParsedLanguageMatchesExpectations) {
  RegexParseResult r = ParseRegex("(a|b)* b (a|b)*");
  ASSERT_TRUE(r.ok()) << r.error();
  LabelDictionary dict;
  uint32_t a = dict.Intern("a"), b = dict.Intern("b");
  Nfa thompson = ThompsonNfa(*r.value(), &dict);
  Nfa glushkov = GlushkovNfa(*r.value(), &dict);
  EXPECT_GT(thompson.num_epsilon_transitions(), 0u);
  EXPECT_EQ(glushkov.num_epsilon_transitions(), 0u);

  std::vector<std::vector<uint32_t>> accepted = {
      {b}, {a, b}, {b, a}, {b, b}, {a, b, a}};
  std::vector<std::vector<uint32_t>> rejected = {{}, {a}, {a, a}};
  for (const auto& word : accepted) {
    EXPECT_TRUE(thompson.Accepts(word));
    EXPECT_TRUE(glushkov.Accepts(word));
  }
  for (const auto& word : rejected) {
    EXPECT_FALSE(thompson.Accepts(word));
    EXPECT_FALSE(glushkov.Accepts(word));
  }
}

TEST(RegexParserTest, OptionalAndPlusSemantics) {
  LabelDictionary dict;
  uint32_t a = dict.Intern("a");

  RegexParseResult plus = ParseRegex("a+");
  ASSERT_TRUE(plus.ok());
  Nfa plus_nfa = ThompsonNfa(*plus.value(), &dict);
  EXPECT_FALSE(plus_nfa.Accepts({}));
  EXPECT_TRUE(plus_nfa.Accepts({a}));
  EXPECT_TRUE(plus_nfa.Accepts({a, a, a}));

  RegexParseResult opt = ParseRegex("a?");
  ASSERT_TRUE(opt.ok());
  Nfa opt_nfa = ThompsonNfa(*opt.value(), &dict);
  EXPECT_TRUE(opt_nfa.Accepts({}));
  EXPECT_TRUE(opt_nfa.Accepts({a}));
  EXPECT_FALSE(opt_nfa.Accepts({a, a}));
}

}  // namespace
}  // namespace dsw
