// Cross-oracle harness for the memoryless pipeline (Theorem 18).
//
// The stateful TrimmedEnumerator is the oracle: on every instance x
// query, ResumableEnumerator's full scan must reproduce its answer
// sequence exactly (order included), the SeekAfter chain — each answer
// recomputed from the previous one alone — must reproduce it again,
// and a *fresh* enumerator SeekAfter'ed to any answer w must emit
// exactly the suffix after w, with the last answer invalidating
// cleanly. Adversarial walks (wrong length, non-candidate edges, dead
// reachable-run sets) pin the rejection contract: release builds
// return false, debug builds assert (death tests, mirroring
// label_index_test). The delay-accounting test asserts the Theorem 18
// bound as an operation-count proxy: per-output work of the SeekAfter
// chain stays flat while the in-degree sweeps 4 -> 256.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "automaton/glushkov.h"
#include "automaton/thompson.h"
#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/resumable_index.h"
#include "core/trimmed_index.h"
#include "regex/regex_parser.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

using WalkSeq = std::vector<std::vector<uint32_t>>;

template <typename Enumerator>
WalkSeq Drain(Enumerator& en) {
  WalkSeq out;
  for (; en.Valid(); en.Next()) out.push_back(en.walk().edges);
  return out;
}

// The three properties of the harness header, on one (instance, query).
void ExpectResumableMatchesStateful(Instance inst, const Nfa& query,
                                    const char* what) {
  SCOPED_TRACE(what);
  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, query, inst.source, inst.target);
  TrimmedIndex tindex(snap, ann);
  ResumableIndex rindex(snap, ann);

  TrimmedEnumerator ref_en(ann, tindex, inst.source, inst.target);
  const WalkSeq ref = Drain(ref_en);

  // (a) full scan, order included.
  ResumableEnumerator full(ann, rindex, inst.source, inst.target);
  ASSERT_EQ(Drain(full), ref);

  // (a') the memoryless chain — every answer recomputed from its
  // predecessor alone — is the same sequence again.
  if (!ref.empty()) {
    ResumableEnumerator chain(ann, rindex, inst.source, inst.target);
    ASSERT_TRUE(chain.Valid());
    WalkSeq chained{chain.walk().edges};
    Walk prev;
    prev.edges = chain.walk().edges;
    while (chain.SeekAfter(prev) && chain.Valid()) {
      chained.push_back(chain.walk().edges);
      prev.edges = chain.walk().edges;
    }
    EXPECT_EQ(chained, ref);
  }

  // (b) a fresh SeekAfter from every answer yields exactly its suffix;
  // the last answer invalidates cleanly (empty suffix).
  for (size_t k = 0; k < ref.size(); ++k) {
    ResumableEnumerator en(ann, rindex, inst.source, inst.target);
    Walk w;
    w.edges = ref[k];
    ASSERT_TRUE(en.SeekAfter(w)) << "answer " << k << " rejected";
    WalkSeq suffix = Drain(en);
    ASSERT_EQ(suffix, WalkSeq(ref.begin() + k + 1, ref.end()))
        << "wrong suffix after answer " << k;
  }
}

Nfa CompileRegex(const std::string& pattern, Database* db, bool thompson) {
  RegexParseResult ast = ParseRegex(pattern);
  EXPECT_TRUE(ast.ok()) << ast.error();
  return thompson ? ThompsonNfa(*ast.value(), db->mutable_dict())
                  : GlushkovNfa(*ast.value(), db->mutable_dict());
}

TEST(ResumableCrossOracleTest, GridsWithFixedNfas) {
  for (uint32_t n = 2; n <= 4; ++n) {
    Instance inst = Grid(n, n);
    ExpectResumableMatchesStateful(inst, StaircaseNfa(1, 1), "staircase1");
    ExpectResumableMatchesStateful(inst, AnyKDfa(2 * (n - 1), 1), "anyk");
  }
  ExpectResumableMatchesStateful(Grid(3, 5), StaircaseNfa(2, 1),
                                 "grid3x5-staircase2");
}

TEST(ResumableCrossOracleTest, GridsWithRegexFrontEnds) {
  for (bool thompson : {false, true}) {
    Instance inst = Grid(3, 3);
    Nfa query = CompileRegex("l0 l0 l0 l0", &inst.db, thompson);
    ExpectResumableMatchesStateful(inst, query,
                                   thompson ? "thompson" : "glushkov");
    Nfa plus = CompileRegex("(l0)+", &inst.db, thompson);
    ExpectResumableMatchesStateful(inst, plus, "plus");
  }
}

TEST(ResumableCrossOracleTest, StarOfChainsSweepsShapeAndQueries) {
  for (uint32_t d : {1u, 2u, 5u, 9u}) {
    for (uint32_t depth : {1u, 2u, 5u}) {
      Instance inst = StarOfChains(d, depth, 2);
      ExpectResumableMatchesStateful(inst, StaircaseNfa(1, 2),
                                     "staircase1");
      ExpectResumableMatchesStateful(inst, CompleteNfa(3, 2), "complete3");
    }
  }
  // "ends in l0" keeps only every other chain — trimming must drop the
  // rest from the queues, not just from the answers.
  for (bool thompson : {false, true}) {
    Instance inst = StarOfChains(6, 4, 2);
    Nfa query = CompileRegex("(l0|l1)* l0", &inst.db, thompson);
    ExpectResumableMatchesStateful(inst, query, "ends-in-l0");
  }
}

TEST(ResumableCrossOracleTest, NoiseEmbeddedRandomInstances) {
  for (uint64_t seed : {5u, 17u, 29u, 47u}) {
    Instance core = BubbleChain(3 + seed % 2, 2);
    Instance inst =
        EmbedInNoise(core, 40, 160, seed);
    ExpectResumableMatchesStateful(inst, StaircaseNfa(1, 2), "staircase1");
    ExpectResumableMatchesStateful(inst, StaircaseNfa(2, 2), "staircase2");
    for (bool thompson : {false, true}) {
      Nfa query = CompileRegex("l0 (l0|l1)* l1?", &inst.db, thompson);
      ExpectResumableMatchesStateful(inst, query, "regex");
    }
  }
  for (uint64_t seed : {7u, 13u}) {
    Instance inst = EmbedInNoise(StarOfChains(4, 3, 2), 30, 120, seed);
    for (bool thompson : {false, true}) {
      Nfa query = CompileRegex("(l0|l1)+", &inst.db, thompson);
      ExpectResumableMatchesStateful(inst, query, "any-plus");
    }
  }
}

TEST(ResumableCrossOracleTest, LambdaZeroEmptyWalk) {
  // source == target and the query accepts the empty word: the single
  // empty walk is the answer; SeekAfter(empty) accepts it and reports
  // no successor.
  Instance inst = Grid(2, 2);
  inst.target = inst.source;
  Nfa query = StaircaseNfa(0, 1);  // accepts every word incl. epsilon
  ExpectResumableMatchesStateful(inst, query, "lambda0");

  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, query, inst.source, inst.target);
  ASSERT_EQ(ann.lambda, 0);
  ResumableIndex index(snap, ann);
  ResumableEnumerator en(ann, index, inst.source, inst.target);
  ASSERT_TRUE(en.Valid());
  EXPECT_TRUE(en.walk().edges.empty());
  Walk empty;
  EXPECT_TRUE(en.SeekAfter(empty));
  EXPECT_FALSE(en.Valid());
}

TEST(ResumableCrossOracleTest, UnreachableTargetHasNoAnswers) {
  Instance inst = StarOfChains(3, 4, 2);
  Nfa query = AnyKDfa(3, 2);  // wrong length: no accepting walk
  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, query, inst.source, inst.target);
  ASSERT_FALSE(ann.reachable());
  ResumableIndex index(snap, ann);
  EXPECT_TRUE(index.empty());
  ResumableEnumerator en(ann, index, inst.source, inst.target);
  EXPECT_FALSE(en.Valid());
}

// Structural invariants of the index itself, on a noisy random
// instance: every queue mirrors the trimmed candidate list of its
// (level, vertex), ascending in tgt_idx; SeekGe lands exactly on each
// member and on the first entry at-or-after any other out-edge of the
// vertex; SlotOf agrees with SlotAt for every useful state; level
// lambda has no queues.
TEST(ResumableIndexTest, QueueStructureInvariants) {
  Instance inst = EmbedInNoise(StarOfChains(5, 4, 2), 25, 100, 3);
  Nfa query = StaircaseNfa(2, 2);
  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, query, inst.source, inst.target);
  ASSERT_TRUE(ann.reachable());
  ResumableIndex index(snap, ann);
  const TrimmedIndex& trimmed = index.trimmed();
  ASSERT_EQ(trimmed.num_levels(), static_cast<uint32_t>(ann.lambda) + 1);
  EXPECT_GT(index.num_queues(), 0u);

  for (uint32_t s = 0; s < index.num_queues(); ++s) {
    const uint32_t level = index.level_of(s);
    const uint32_t v = index.vertex_of(s);
    EXPECT_LT(level, static_cast<uint32_t>(ann.lambda));
    EXPECT_EQ(index.SlotAt(level, v), s);

    auto queue = index.Queue(s);
    auto ref = trimmed.Candidates(level, v);
    ASSERT_EQ(queue.size(), ref.size());
    ASSERT_FALSE(queue.empty()) << "useful vertex without candidates";
    for (size_t i = 0; i < queue.size(); ++i) {
      EXPECT_EQ(queue[i].edge, ref[i].edge);
      EXPECT_EQ(queue[i].next_pos, ref[i].next_pos);
      EXPECT_EQ(queue[i].dst, inst.db.dst(queue[i].edge));
      EXPECT_EQ(queue[i].label, inst.db.edge(queue[i].edge).label);
      EXPECT_EQ(queue[i].tgt_idx, snap.tgt_idx(queue[i].edge));
      if (i > 0) {
        EXPECT_LT(queue[i - 1].tgt_idx, queue[i].tgt_idx);
      }
      // SeekGe on a member is exact.
      EXPECT_EQ(index.SeekGe(s, queue[i].edge),
                index.RestartCursor(s) + static_cast<uint32_t>(i));
    }

    // SeekGe on *any* out-edge of v is the first entry at-or-after it.
    for (uint32_t e : inst.db.OutEdges(v)) {
      ASSERT_TRUE(index.SpanContains(s, e));
      uint32_t cur = index.SeekGe(s, e);
      uint32_t key = snap.tgt_idx(e);
      for (uint32_t c = index.RestartCursor(s); c != cur;
           c = index.Advanced(s, c))
        EXPECT_LT(index.Peek(s, c).tgt_idx, key);
      if (!index.Exhausted(s, cur)) {
        EXPECT_GE(index.Peek(s, cur).tgt_idx, key);
      }
    }

    // The per-(vertex, state) view resolves to this queue for every
    // useful state at (level, v).
    trimmed.Useful(level, v).ForEach(
        [&](uint32_t p) { EXPECT_EQ(index.SlotOf(v, p), s); });
  }

  // Level lambda (the target's level) has no queues, and states useful
  // nowhere have no slot.
  EXPECT_EQ(index.SlotAt(static_cast<uint32_t>(ann.lambda), inst.target),
            kNoSlot);
  EXPECT_EQ(index.SlotOf(inst.target, 0), kNoSlot);
}

// ------------------------------------------------------- adversarial

// Fixture: labels a/b, query (a b | b a). s -e0:a,e1:b-> m; m -e2:b,
// e3:a-> t, plus a dead-end b-edge e4 out of m. Answers: [e0, e2] and
// [e1, e3]. [e0, e3] spells "a a": every edge is a candidate but the
// reachable-run set dies at the last level. [e0, e4] uses an edge the
// trimming dropped (its dst never reaches the target). Members
// initialize in declaration order, so ann/index see the finished
// instance; ids are deterministic (vertices s=0, m=1, t=2, x=3 and
// edges e0..e4 = 0..4 by insertion order).
struct AdversarialFixture {
  static constexpr uint32_t e0 = 0, e1 = 1, e2 = 2, e3 = 3, e4 = 4;

  Instance inst = MakeInstance();
  Nfa query = MakeQuery();
  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, query, inst.source, inst.target);
  ResumableIndex index{snap, ann};

  static Instance MakeInstance() {
    Instance inst;
    uint32_t a = inst.db.labels().Intern("a");
    uint32_t b = inst.db.labels().Intern("b");
    uint32_t s = inst.db.AddVertex();
    uint32_t m = inst.db.AddVertex();
    uint32_t t = inst.db.AddVertex();
    uint32_t x = inst.db.AddVertex();  // dead end
    inst.source = s;
    inst.target = t;
    inst.db.AddEdge(s, a, m);  // e0
    inst.db.AddEdge(s, b, m);  // e1
    inst.db.AddEdge(m, b, t);  // e2
    inst.db.AddEdge(m, a, t);  // e3
    inst.db.AddEdge(m, b, x);  // e4
    return inst;
  }

  static Nfa MakeQuery() {
    Nfa query(4);  // 0 -a-> 1 -b-> 3, 0 -b-> 2 -a-> 3; a = 0, b = 1
    query.AddInitial(0);
    query.AddFinal(3);
    query.AddTransition(0, 0u, 1);
    query.AddTransition(1, 1u, 3);
    query.AddTransition(0, 1u, 2);
    query.AddTransition(2, 0u, 3);
    return query;
  }
};

// Sanity: the fixture's honest answers round-trip through the full
// cross-oracle harness and come out in the expected order.
TEST(ResumableAdversarialTest, FixtureAnswersAreSane) {
  AdversarialFixture fx;
  ExpectResumableMatchesStateful(fx.inst, fx.query, "ab-or-ba");
  TrimmedEnumerator ref(fx.ann, fx.index.trimmed(), fx.inst.source,
                        fx.inst.target);
  WalkSeq answers = Drain(ref);
  ASSERT_EQ(answers, (WalkSeq{{fx.e0, fx.e2}, {fx.e1, fx.e3}}));
}

#ifdef NDEBUG
// Release builds: every non-answer walk is rejected gracefully —
// SeekAfter returns false and the enumerator invalidates.
TEST(ResumableAdversarialTest, RejectsNonAnswersInRelease) {
  AdversarialFixture fx;
  auto expect_rejected = [&](std::vector<uint32_t> edges,
                             const char* what) {
    SCOPED_TRACE(what);
    ResumableEnumerator en(fx.ann, fx.index, fx.inst.source,
                           fx.inst.target);
    Walk w;
    w.edges = std::move(edges);
    EXPECT_FALSE(en.SeekAfter(w));
    EXPECT_FALSE(en.Valid());
  };
  expect_rejected({fx.e0}, "wrong length: too short");
  expect_rejected({fx.e0, fx.e2, fx.e3}, "wrong length: too long");
  expect_rejected({}, "wrong length: empty");
  expect_rejected({fx.e0, fx.e3}, "dead reachable-run set (word aa)");
  expect_rejected({fx.e1, fx.e2}, "dead reachable-run set (word bb)");
  expect_rejected({fx.e0, fx.e4}, "edge trimmed away (dead-end dst)");
  expect_rejected({fx.e2, fx.e3}, "edge of the wrong vertex at level 0");
  expect_rejected({fx.e0, 1000000}, "garbage edge id");

  // A rejected seek must not wedge the enumerator: a valid SeekAfter
  // right after still works (memorylessness).
  ResumableEnumerator en(fx.ann, fx.index, fx.inst.source, fx.inst.target);
  Walk bad;
  bad.edges = {fx.e0, fx.e3};
  EXPECT_FALSE(en.SeekAfter(bad));
  Walk first;
  first.edges = {fx.e0, fx.e2};
  EXPECT_TRUE(en.SeekAfter(first));
  ASSERT_TRUE(en.Valid());
  EXPECT_EQ(en.walk().edges, (std::vector<uint32_t>{fx.e1, fx.e3}));
}
#endif  // NDEBUG

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
// Debug builds: the same walks are documented UB and assert.
TEST(ResumableAdversarialDeathTest, AssertsOnNonAnswersInDebug) {
  AdversarialFixture fx;
  auto seek = [&](std::vector<uint32_t> edges) {
    ResumableEnumerator en(fx.ann, fx.index, fx.inst.source,
                           fx.inst.target);
    Walk w;
    w.edges = std::move(edges);
    en.SeekAfter(w);
  };
  EXPECT_DEATH(seek({fx.e0}), "not an answer");
  EXPECT_DEATH(seek({fx.e0, fx.e3}), "not an answer");
  EXPECT_DEATH(seek({fx.e0, fx.e4}), "not an answer");
  EXPECT_DEATH(seek({fx.e2, fx.e3}), "not an answer");
  EXPECT_DEATH(seek({fx.e0, 1000000}), "not an answer");
}
#endif

// -------------------------------------------------- delay accounting

// Theorem 18 as an operation-count proxy (CI-stable, unlike wall
// clock): on StarOfChains(d, 32, 2) the SeekAfter chain's per-output
// work — SeekGe repositionings + queue cells examined + delta-row ORs
// — must stay flat as the in-degree d sweeps 4 -> 256. The linear
// re-advance strawman is Theta(d) per output on this family.
TEST(ResumableDelayTest, SeekAfterChainOpsStayFlatInInDegree) {
  constexpr uint32_t kDepth = 32;
  std::vector<double> per_output;
  for (uint32_t d : {4u, 16u, 64u, 256u}) {
    Instance inst = StarOfChains(d, kDepth, 2);
    Nfa query = StaircaseNfa(1, 2);
    Snapshot snap = inst.db.Freeze();
    Annotation ann = Annotate(snap, query, inst.source, inst.target);
    ResumableIndex index(snap, ann);
    ResumableEnumerator en(ann, index, inst.source, inst.target);
    ASSERT_TRUE(en.Valid());
    Walk prev = en.walk();
    uint64_t outputs = 1;
    en.ResetStats();
    while (en.SeekAfter(prev) && en.Valid()) {
      prev = en.walk();
      ++outputs;
    }
    ASSERT_EQ(outputs, d) << "StarOfChains must have one answer per chain";
    // outputs - 1 successful SeekAfter steps plus the final one that
    // detects the end; average per recomputed output.
    per_output.push_back(static_cast<double>(en.stats().total()) /
                         static_cast<double>(outputs - 1));
  }
  double lo = *std::min_element(per_output.begin(), per_output.end());
  double hi = *std::max_element(per_output.begin(), per_output.end());
  EXPECT_GT(lo, 0.0);
  EXPECT_LE(hi, lo * 1.25)
      << "per-output SeekAfter work grew with the in-degree (lo=" << lo
      << ", hi=" << hi << ")";
}

// The stats themselves: a single SeekAfter recomputation is O(lambda)
// seeks and cells on a chain family — pin the constants loosely so a
// regression to linear reseek (or per-level rescans) trips it.
TEST(ResumableDelayTest, SingleSeekAfterOpBudget) {
  constexpr uint32_t kDepth = 16;
  Instance inst = StarOfChains(8, kDepth, 2);
  Nfa query = StaircaseNfa(1, 2);
  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, query, inst.source, inst.target);
  ResumableIndex index(snap, ann);
  ResumableEnumerator en(ann, index, inst.source, inst.target);
  ASSERT_TRUE(en.Valid());
  Walk first = en.walk();
  en.ResetStats();
  ASSERT_TRUE(en.SeekAfter(first));
  ASSERT_TRUE(en.Valid());
  EXPECT_EQ(en.stats().seeks, kDepth);  // one SeekGe per level, exactly
  // Guided run + one DFS step: a small multiple of lambda, never
  // lambda * in-degree (= 128 here) or lambda^2.
  EXPECT_LE(en.stats().cells, 2 * kDepth);
  EXPECT_LE(en.stats().row_ors, 4 * kDepth);
}

}  // namespace
}  // namespace dsw
