// Tier-1 gate: the full pipeline on the worked example. Checks the
// answer set exactly, output order, label-consistency against the query,
// the trimming of the dead-end vertex, and — via the regex front-end —
// that compiling the example's query from its RPQ string (through both
// Thompson and Glushkov) reproduces the same answers.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "automaton/glushkov.h"
#include "automaton/thompson.h"
#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/trimmed_index.h"
#include "regex/regex_parser.h"
#include "workload/figure1.h"

namespace dsw {
namespace {

std::vector<Walk> Drain(TrimmedEnumerator* en) {
  std::vector<Walk> out;
  for (; en->Valid(); en->Next()) out.push_back(en->walk());
  return out;
}

class Figure1Test : public ::testing::Test {
 protected:
  // Declaration order is initialization order: the snapshot is frozen
  // before anything downstream of it is built.
  Figure1Test()
      : fig_(MakeFigure1()),
        snap_(fig_.db.Freeze()),
        ann_(Annotate(snap_, fig_.query, fig_.alix, fig_.bob)),
        index_(snap_, ann_) {}

  Figure1 fig_;
  Snapshot snap_;
  Annotation ann_;
  TrimmedIndex index_;
};

TEST_F(Figure1Test, LambdaIsTwo) {
  ASSERT_TRUE(ann_.reachable());
  EXPECT_EQ(ann_.lambda, Figure1::kLambda);
}

TEST_F(Figure1Test, EnumeratesExactlyTheFourAnswers) {
  TrimmedEnumerator en(ann_, index_, fig_.alix, fig_.bob);
  std::vector<Walk> walks = Drain(&en);
  ASSERT_EQ(walks.size(), Figure1::kNumAnswers);

  std::set<std::vector<uint32_t>> got;
  for (const Walk& w : walks) got.insert(w.edges);
  EXPECT_EQ(got.size(), walks.size()) << "duplicate walk emitted";

  // Edge ids in MakeFigure1 insertion order:
  // 0: alix-a->mid1  1: alix-b->mid1  2: mid1-a->bob  3: mid1-b->bob
  // 4: alix-a->mid2  5: mid2-b->bob   6: alix-b->carl 7: carl-b->mid2
  std::set<std::vector<uint32_t>> expected = {
      {0, 3}, {1, 2}, {1, 3}, {4, 5}};
  EXPECT_EQ(got, expected);
}

TEST_F(Figure1Test, AnswersInNonDecreasingLengthOrder) {
  TrimmedEnumerator en(ann_, index_, fig_.alix, fig_.bob);
  size_t prev = 0;
  for (const Walk& w : Drain(&en)) {
    EXPECT_GE(w.length(), prev);
    EXPECT_EQ(w.length(), static_cast<size_t>(ann_.lambda));
    prev = w.length();
  }
}

TEST_F(Figure1Test, EveryAnswerIsLabelConsistentWithTheQuery) {
  TrimmedEnumerator en(ann_, index_, fig_.alix, fig_.bob);
  for (const Walk& w : Drain(&en)) {
    EXPECT_TRUE(fig_.query.Accepts(w.LabelWord(fig_.db)));
    std::vector<uint32_t> path = w.VertexPath(fig_.db, fig_.alix);
    EXPECT_EQ(path.front(), fig_.alix);
    EXPECT_EQ(path.back(), fig_.bob);
    for (size_t i = 0; i + 1 < path.size(); ++i)
      EXPECT_EQ(fig_.db.edge(w.edges[i]).src, path[i]);
  }
}

TEST_F(Figure1Test, TrimmingRemovesTheDeadEndVertex) {
  // carl is reachable in the product at level 1 but on no shortest
  // answer, so no level may keep it.
  for (uint32_t level = 0; level <= Figure1::kLambda; ++level)
    EXPECT_FALSE(index_.Useful(level, fig_.carl)) << "level " << level;
  EXPECT_GT(index_.num_slots(), 0u);
}

TEST_F(Figure1Test, RegexFrontEndReproducesTheAnswerSet) {
  // The paper states the example query as the regex (a|b)* b (a|b)*;
  // driving the pipeline from that string must match the hand-built NFA
  // exactly, for both compilation routes. Thompson exercises the
  // epsilon-aware pipeline, Glushkov the epsilon-free one.
  RegexParseResult ast = ParseRegex("(a|b)* b (a|b)*");
  ASSERT_TRUE(ast.ok()) << ast.error();
  std::set<std::vector<uint32_t>> expected = {{0, 3}, {1, 2}, {1, 3}, {4, 5}};

  for (bool use_thompson : {true, false}) {
    SCOPED_TRACE(use_thompson ? "thompson" : "glushkov");
    Nfa nfa = use_thompson
                  ? ThompsonNfa(*ast.value(), fig_.db.mutable_dict())
                  : GlushkovNfa(*ast.value(), fig_.db.mutable_dict());
    EXPECT_EQ(nfa.has_epsilon(), use_thompson);
    Annotation ann = Annotate(snap_, nfa, fig_.alix, fig_.bob);
    ASSERT_TRUE(ann.reachable());
    EXPECT_EQ(ann.lambda, Figure1::kLambda);
    TrimmedIndex index(snap_, ann);
    TrimmedEnumerator en(ann, index, fig_.alix, fig_.bob);
    std::set<std::vector<uint32_t>> got;
    for (const Walk& w : Drain(&en)) got.insert(w.edges);
    EXPECT_EQ(got, expected);
    // The front-end interned nothing new: a and b were already ids 0, 1.
    EXPECT_EQ(fig_.db.labels().size(), 2u);
  }
}

TEST_F(Figure1Test, EnumeratorIsRestartable) {
  TrimmedEnumerator first(ann_, index_, fig_.alix, fig_.bob);
  TrimmedEnumerator second(ann_, index_, fig_.alix, fig_.bob);
  std::vector<Walk> a = Drain(&first);
  std::vector<Walk> b = Drain(&second);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].edges, b[i].edges);
}

}  // namespace
}  // namespace dsw
