// The Theorem 2 certificate machinery, pinned from three sides:
//
//  1. Structure: TrimmedIndex::BList answers "first candidate >= c
//     usable from q" exactly as a trial AdvanceStates scan would, for
//     every useful (level, vertex, state) slot.
//  2. Delay: per-output operation counts (delta-row ORs + certificate
//     probes, timer-free) respect the worst-case O(lambda x |A|) bound
//     — row_ors <= lambda x |Q| and probes <= (2 lambda + 1) x |Q|
//     between any two outputs — and stay *flat* on the adversarial
//     dead-candidate family as the fanout grows 4 -> 512, where the
//     pre-certificate trial-filter baseline degrades linearly.
//  3. Order: the certificate enumerator, the pre-change trial-filter
//     enumerator and the memoryless ResumableEnumerator emit
//     byte-identical answer sequences on the property-suite workload
//     families (answer-for-answer compatibility of the refactor).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "automaton/glushkov.h"
#include "automaton/thompson.h"
#include "baseline/trial_filter_enumerator.h"
#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/resumable_index.h"
#include "core/trimmed_index.h"
#include "regex/regex_parser.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

using WalkSeq = std::vector<std::vector<uint32_t>>;

template <typename Enumerator>
WalkSeq Drain(Enumerator& en) {
  WalkSeq out;
  for (; en.Valid(); en.Next()) out.push_back(en.walk().edges);
  return out;
}

// Per-output op-count deltas of a full enumeration, the final
// (invalidating) Next included — the end-of-enumeration scan is a delay
// like any other. deltas[k] is the work of the Next() after output k.
struct OpDeltas {
  std::vector<uint64_t> row_ors;
  std::vector<uint64_t> probes;
  uint64_t outputs = 0;

  uint64_t MaxTotal() const {
    uint64_t m = 0;
    for (size_t i = 0; i < row_ors.size(); ++i)
      m = std::max(m, row_ors[i] + probes[i]);
    return m;
  }
};

template <typename Enumerator>
OpDeltas DrainCountingOps(Enumerator& en) {
  OpDeltas d;
  uint64_t last_rows = en.stats().row_ors;
  uint64_t last_probes = en.stats().probes;
  while (en.Valid()) {
    ++d.outputs;
    en.Next();
    d.row_ors.push_back(en.stats().row_ors - last_rows);
    d.probes.push_back(en.stats().probes - last_probes);
    last_rows = en.stats().row_ors;
    last_probes = en.stats().probes;
  }
  return d;
}

// ------------------------------------------------------ 1. structure

// Every BList row must agree with the ground truth: candidate c is
// usable from q iff advancing the singleton {q} across c survives.
TEST(BListStructureTest, NextUsableMatchesTrialAdvance) {
  struct Case {
    Instance inst;
    Nfa query;
    const char* what;
  };
  std::vector<Case> cases;
  cases.push_back({DeadFanout(9, 3), ForkChainNfa(3), "dead-fanout"});
  cases.push_back({Grid(3, 4), StaircaseNfa(1, 1), "grid"});
  cases.push_back(
      {EmbedInNoise(StarOfChains(5, 4, 2), 25, 100, 3),
       StaircaseNfa(2, 2), "noisy-star"});
  {
    LayeredGraphParams params;
    params.layers = 4;
    params.width = 4;
    params.edges_per_vertex = 3;
    params.num_labels = 2;
    params.extra_labels = 1;
    params.multi_label_p = 0.4;
    params.seed = 11;
    cases.push_back({LayeredGraph(params), CompleteNfa(3, 2), "layered"});
  }

  for (Case& c : cases) {
    SCOPED_TRACE(c.what);
    Snapshot snap = c.inst.db.Freeze();
    Annotation ann = Annotate(snap, c.query, c.inst.source, c.inst.target);
    ASSERT_TRUE(ann.reachable());
    TrimmedIndex index(snap, ann);
    const uint32_t wps = index.words_per_set();
    StateSet singleton(ann.num_states);
    StateSet scratch(ann.num_states);

    for (uint32_t level = 0; level + 1 < index.num_levels(); ++level) {
      const LevelSets& lvl = index.UsefulLevel(level);
      for (size_t pos = 0; pos < lvl.size(); ++pos) {
        auto cand = index.CandidatesAt(level, pos);
        TrimmedIndex::BList blist = index.BListAt(level, pos);
        ASSERT_EQ(blist.num_cand, cand.size());
        lvl.states(pos).ForEach([&](uint32_t q) {
          singleton.ZeroAll();
          singleton.Set(q);
          // Ground truth per position: scan forward with trial advances.
          uint32_t expect = blist.num_cand;  // sentinel
          for (uint32_t c2 = blist.num_cand; c2-- > 0;) {
            if (enumerator_detail::AdvanceStates(
                    ann.delta, wps, singleton, cand[c2].label,
                    index.UsefulStates(level + 1, cand[c2].next_pos),
                    &scratch))
              expect = c2;
            EXPECT_EQ(blist.NextLive(singleton, c2), expect)
                << "level " << level << " pos " << pos << " state " << q
                << " from " << c2;
          }
          EXPECT_EQ(blist.NextLive(singleton, blist.num_cand),
                    blist.num_cand);
        });
      }
    }
  }
}

// ---------------------------------------------------------- 2. delay

// Worst-case per-output bound, as exact inequalities: between any two
// outputs the enumerator does at most lambda pushes (each <= |Q| row
// ORs) and 2 lambda + 1 NextLive calls (each <= |Q| probes).
void ExpectPerOutputBound(Instance inst, const Nfa& query,
                          const char* what) {
  SCOPED_TRACE(what);
  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, query, inst.source, inst.target);
  ASSERT_TRUE(ann.reachable());
  TrimmedIndex index(snap, ann);
  TrimmedEnumerator en(ann, index, inst.source, inst.target);
  OpDeltas d = DrainCountingOps(en);
  ASSERT_GT(d.outputs, 0u);
  const uint64_t lambda = static_cast<uint64_t>(ann.lambda);
  const uint64_t q = ann.num_states;
  for (size_t k = 0; k < d.row_ors.size(); ++k) {
    EXPECT_LE(d.row_ors[k], lambda * q) << "output " << k;
    EXPECT_LE(d.probes[k], (2 * lambda + 1) * q) << "output " << k;
  }
}

TEST(DelayBoundTest, PerOutputOpsRespectTheoremTwo) {
  ExpectPerOutputBound(DeadFanout(64, 8), ForkChainNfa(8), "dead-fanout");
  ExpectPerOutputBound(BubbleChain(6, 2), StaircaseNfa(2, 2),
                       "bubble-staircase");
  ExpectPerOutputBound(BubbleChain(5, 2), CompleteNfa(4, 2),
                       "bubble-complete");
  ExpectPerOutputBound(Grid(4, 4), AnyKDfa(6, 1), "grid-anyk");
  ExpectPerOutputBound(StarOfChains(9, 5, 2), StaircaseNfa(1, 2), "star");
}

// The headline: on the adversarial dead-candidate family the certificate
// enumerator's worst per-output work is *identical* as the fanout sweeps
// 4 -> 512 (same lambda, same |Q|; the dead candidates are never
// touched), while the trial-filter baseline's grows linearly with d.
TEST(DelayBoundTest, DeadFanoutOpsStayFlatWhereTrialFilterDegrades) {
  constexpr uint32_t kTail = 8;
  const Nfa query = ForkChainNfa(kTail);
  std::vector<uint64_t> max_ops;
  std::vector<uint64_t> ref_max_ops;
  for (uint32_t d : {4u, 64u, 512u}) {
    Instance inst = DeadFanout(d, kTail);
    Snapshot snap = inst.db.Freeze();
    Annotation ann = Annotate(snap, query, inst.source, inst.target);
    ASSERT_TRUE(ann.reachable());
    TrimmedIndex index(snap, ann);

    TrimmedEnumerator en(ann, index, inst.source, inst.target);
    OpDeltas ops = DrainCountingOps(en);
    EXPECT_EQ(ops.outputs, d + 1) << "one answer per fanout edge + one";
    max_ops.push_back(ops.MaxTotal());

    TrialFilterEnumerator ref(ann, index, inst.source, inst.target);
    uint64_t ref_max = 0;
    uint64_t last = ref.stats().row_ors;
    while (ref.Valid()) {
      ref.Next();
      ref_max = std::max(ref_max, ref.stats().row_ors - last);
      last = ref.stats().row_ors;
    }
    ref_max_ops.push_back(ref_max);
  }
  // Certificate: flat — bit-identical per-output worst case across a
  // 128x fanout sweep.
  EXPECT_EQ(max_ops[0], max_ops[1]);
  EXPECT_EQ(max_ops[1], max_ops[2]);
  // Trial filter: the dead scan is linear in d (all d dead edges are
  // trial-advanced between the l0-branch answer and the next output).
  EXPECT_GE(ref_max_ops[2], 512u);
  EXPECT_GE(ref_max_ops[1], 64u);
  // And the certificate enumerator's flat ceiling sits far below the
  // baseline's degraded one.
  EXPECT_LT(max_ops[2] * 4, ref_max_ops[2]);
}

// The memoryless enumerator shares the certificate machinery: same
// flatness on the same family (full-scan mode).
TEST(DelayBoundTest, ResumableDeadFanoutOpsStayFlat) {
  constexpr uint32_t kTail = 8;
  const Nfa query = ForkChainNfa(kTail);
  std::vector<uint64_t> max_ops;
  for (uint32_t d : {4u, 64u, 512u}) {
    Instance inst = DeadFanout(d, kTail);
    Snapshot snap = inst.db.Freeze();
    Annotation ann = Annotate(snap, query, inst.source, inst.target);
    ResumableIndex index(snap, ann);
    ResumableEnumerator en(ann, index, inst.source, inst.target);
    uint64_t max_total = 0;
    uint64_t last = en.stats().total();
    uint64_t outputs = 0;
    while (en.Valid()) {
      ++outputs;
      en.Next();
      max_total = std::max(max_total, en.stats().total() - last);
      last = en.stats().total();
    }
    EXPECT_EQ(outputs, d + 1);
    max_ops.push_back(max_total);
  }
  EXPECT_EQ(max_ops[0], max_ops[1]);
  EXPECT_EQ(max_ops[1], max_ops[2]);
}

// ---------------------------------------------------------- 3. order

// The refactor must be answer-for-answer invisible: certificate
// enumerator, pre-change trial-filter enumerator and the memoryless
// enumerator agree on the full sequence (order included).
void ExpectIdenticalSequences(Instance inst, const Nfa& query,
                              const char* what) {
  SCOPED_TRACE(what);
  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, query, inst.source, inst.target);
  TrimmedIndex tindex(snap, ann);
  ResumableIndex rindex(snap, ann);

  TrialFilterEnumerator ref(ann, tindex, inst.source, inst.target);
  const WalkSeq expected = Drain(ref);

  TrimmedEnumerator trimmed(ann, tindex, inst.source, inst.target);
  EXPECT_EQ(Drain(trimmed), expected);

  ResumableEnumerator resumable(ann, rindex, inst.source, inst.target);
  EXPECT_EQ(Drain(resumable), expected);
}

Nfa CompileRegex(const std::string& pattern, Database* db, bool thompson) {
  RegexParseResult ast = ParseRegex(pattern);
  EXPECT_TRUE(ast.ok()) << ast.error();
  return thompson ? ThompsonNfa(*ast.value(), db->mutable_dict())
                  : GlushkovNfa(*ast.value(), db->mutable_dict());
}

TEST(PreChangeOrderTest, MatchesOnPropertySuiteFamilies) {
  for (uint32_t k = 1; k <= 5; ++k) {
    Instance inst = BubbleChain(k, 2);
    ExpectIdenticalSequences(inst, StaircaseNfa(1, 2), "bubble-staircase1");
    ExpectIdenticalSequences(inst, StaircaseNfa(2, 2), "bubble-staircase2");
    ExpectIdenticalSequences(inst, CompleteNfa(3, 2), "bubble-complete3");
  }
  for (uint32_t n = 2; n <= 4; ++n) {
    Instance inst = Grid(n, n);
    ExpectIdenticalSequences(inst, StaircaseNfa(1, 1), "grid-staircase1");
    ExpectIdenticalSequences(inst, AnyKDfa(2 * (n - 1), 1), "grid-anyk");
  }
  for (uint32_t d : {2u, 5u, 9u}) {
    Instance inst = StarOfChains(d, 4, 2);
    ExpectIdenticalSequences(inst, StaircaseNfa(1, 2), "star-staircase1");
    ExpectIdenticalSequences(inst, CompleteNfa(3, 2), "star-complete3");
  }
  for (uint32_t d : {3u, 17u, 65u})
    ExpectIdenticalSequences(DeadFanout(d, 5), ForkChainNfa(5),
                             "dead-fanout");
}

TEST(PreChangeOrderTest, MatchesOnRandomAndRegexWorkloads) {
  for (uint64_t seed : {3u, 7u, 19u, 31u}) {
    LayeredGraphParams params;
    params.layers = 3 + seed % 3;
    params.width = 3 + seed % 2;
    params.edges_per_vertex = 2 + seed % 2;
    params.num_labels = 2;
    params.extra_labels = 1;
    params.multi_label_p = 0.4;
    params.seed = seed;
    Instance inst = LayeredGraph(params);
    ExpectIdenticalSequences(inst, StaircaseNfa(1, 2), "layered-staircase1");
    ExpectIdenticalSequences(inst, StaircaseNfa(2, 2), "layered-staircase2");
  }
  for (uint64_t seed : {5u, 17u, 29u}) {
    Instance inst = EmbedInNoise(BubbleChain(3 + seed % 2, 2), 40, 160,
                                 seed);
    ExpectIdenticalSequences(inst, StaircaseNfa(1, 2), "noise-staircase1");
    for (bool thompson : {false, true}) {
      Nfa query = CompileRegex("l0 (l0|l1)* l1?", &inst.db, thompson);
      ExpectIdenticalSequences(inst, query,
                               thompson ? "noise-thompson" : "noise-glushkov");
    }
  }
}

// lambda == 0: the single empty walk, no certificate machinery touched.
TEST(PreChangeOrderTest, LambdaZeroEmptyWalk) {
  Instance inst = Grid(2, 2);
  inst.target = inst.source;
  ExpectIdenticalSequences(inst, StaircaseNfa(0, 1), "lambda0");
}

}  // namespace
}  // namespace dsw
