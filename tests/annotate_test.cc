// Unit tests for the annotation stage: lambda computation, unreachable
// instances, self-loops, parallel multi-label edges, and epsilon-closure
// saturation for epsilon-NFA queries (Section 5.1).

#include <gtest/gtest.h>

#include <vector>

#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/trimmed_index.h"
#include "workload/queries.h"

namespace dsw {
namespace {

size_t CountAnswers(Database& db, const Nfa& query, uint32_t s,
                    uint32_t t) {
  Snapshot snap = db.Freeze();
  Annotation ann = Annotate(snap, query, s, t);
  TrimmedIndex index(snap, ann);
  size_t n = 0;
  for (TrimmedEnumerator en(ann, index, s, t); en.Valid(); en.Next())
    ++n;
  return n;
}

TEST(AnnotateTest, LambdaOnAChain) {
  Database db;
  uint32_t v0 = db.AddVertex(), v1 = db.AddVertex(), v2 = db.AddVertex();
  db.AddEdge(v0, "a", v1);
  db.AddEdge(v1, "a", v2);
  Annotation ann = Annotate(db.Freeze(), StaircaseNfa(1, 1), v0, v2);
  ASSERT_TRUE(ann.reachable());
  EXPECT_EQ(ann.lambda, 2);
}

TEST(AnnotateTest, ShortestAcceptingBeatsShortestPlain) {
  // The direct a-edge is shorter but the query demands a b somewhere.
  Database db;
  uint32_t s = db.AddVertex(), m = db.AddVertex(), t = db.AddVertex();
  uint32_t a = db.labels().Intern("a"), b = db.labels().Intern("b");
  db.AddEdge(s, a, t);  // length 1, word "a": rejected
  db.AddEdge(s, b, m);
  db.AddEdge(m, a, t);  // length 2, word "ba": accepted
  Nfa contains_b(2);
  contains_b.AddInitial(0);
  contains_b.AddFinal(1);
  contains_b.AddTransition(0, a, 0);
  contains_b.AddTransition(0, b, 1);
  contains_b.AddTransition(1, a, 1);
  contains_b.AddTransition(1, b, 1);
  Annotation ann = Annotate(db.Freeze(), contains_b, s, t);
  ASSERT_TRUE(ann.reachable());
  EXPECT_EQ(ann.lambda, 2);
}

TEST(AnnotateTest, UnreachableTargetYieldsEmptyEnumeration) {
  Database db;
  uint32_t s = db.AddVertex();
  uint32_t t = db.AddVertex();  // no edges at all
  Annotation ann = Annotate(db.Freeze(), StaircaseNfa(1, 1), s, t);
  EXPECT_FALSE(ann.reachable());
  EXPECT_EQ(ann.lambda, -1);

  TrimmedIndex index(db.Freeze(), ann);
  EXPECT_EQ(index.num_slots(), 0u);
  EXPECT_TRUE(index.empty());

  TrimmedEnumerator en(ann, index, s, t);
  EXPECT_FALSE(en.Valid());
}

TEST(AnnotateTest, LabelMismatchIsUnreachableToo) {
  // A path exists but its word is outside the query language.
  Database db;
  uint32_t s = db.AddVertex(), t = db.AddVertex();
  db.labels().Intern("l0");
  uint32_t l1 = db.labels().Intern("l1");
  db.AddEdge(s, l1, t);
  Annotation ann = Annotate(db.Freeze(), StaircaseNfa(1, 1), s, t);  // only l0
  EXPECT_FALSE(ann.reachable());
  TrimmedIndex index(db.Freeze(), ann);
  TrimmedEnumerator en(ann, index, s, t);
  EXPECT_FALSE(en.Valid());
}

TEST(AnnotateTest, SelfLoopOnShortestWalk) {
  // s has an a-loop; the query wants exactly "aab", so the loop must be
  // taken twice before the b-edge: one answer of length 3.
  Database db;
  uint32_t s = db.AddVertex(), t = db.AddVertex();
  uint32_t a = db.labels().Intern("a"), b = db.labels().Intern("b");
  uint32_t loop = db.AddEdge(s, a, s);
  uint32_t cross = db.AddEdge(s, b, t);
  Nfa aab(4);
  aab.AddInitial(0);
  aab.AddFinal(3);
  aab.AddTransition(0, a, 1);
  aab.AddTransition(1, a, 2);
  aab.AddTransition(2, b, 3);
  Annotation ann = Annotate(db.Freeze(), aab, s, t);
  ASSERT_TRUE(ann.reachable());
  EXPECT_EQ(ann.lambda, 3);

  TrimmedIndex index(db.Freeze(), ann);
  TrimmedEnumerator en(ann, index, s, t);
  ASSERT_TRUE(en.Valid());
  EXPECT_EQ(en.walk().edges, (std::vector<uint32_t>{loop, loop, cross}));
  en.Next();
  EXPECT_FALSE(en.Valid());
}

TEST(AnnotateTest, ParallelEdgesAreDistinctAnswers) {
  Database db;
  uint32_t s = db.AddVertex(), t = db.AddVertex();
  uint32_t a = db.labels().Intern("a"), b = db.labels().Intern("b");
  db.AddEdge(s, a, t);
  db.AddEdge(s, b, t);
  db.AddEdge(s, a, t);  // parallel duplicate of the first, same label
  EXPECT_EQ(CountAnswers(db, StaircaseNfa(1, 2), s, t), 3u);
}

TEST(AnnotateTest, EmptyWalkWhenSourceIsTargetAndQueryAcceptsEpsilon) {
  Database db;
  uint32_t s = db.AddVertex();
  db.labels().Intern("l0");
  db.AddEdge(s, 0u, s);  // loop must not produce a second answer
  Nfa query = StaircaseNfa(0, 1);  // accepts every word incl. epsilon
  Annotation ann = Annotate(db.Freeze(), query, s, s);
  ASSERT_TRUE(ann.reachable());
  EXPECT_EQ(ann.lambda, 0);

  TrimmedIndex index(db.Freeze(), ann);
  TrimmedEnumerator en(ann, index, s, s);
  ASSERT_TRUE(en.Valid());
  EXPECT_TRUE(en.walk().edges.empty());
  en.Next();
  EXPECT_FALSE(en.Valid());
}

TEST(AnnotateTest, EpsilonBeforeFirstLabeledStep) {
  // q0 -eps-> q1 -a-> q2: the initial level must be closure-saturated or
  // the a-edge is never taken.
  Database db;
  uint32_t s = db.AddVertex(), t = db.AddVertex();
  uint32_t a = db.labels().Intern("a");
  db.AddEdge(s, a, t);
  Nfa nfa(3);
  nfa.AddInitial(0);
  nfa.AddFinal(2);
  nfa.AddEpsilonTransition(0, 1);
  nfa.AddTransition(1, a, 2);
  Annotation ann = Annotate(db.Freeze(), nfa, s, t);
  ASSERT_TRUE(ann.reachable());
  EXPECT_EQ(ann.lambda, 1);
  EXPECT_TRUE(ann.has_epsilon());
  EXPECT_EQ(CountAnswers(db, nfa, s, t), 1u);
}

TEST(AnnotateTest, EpsilonAfterLastLabeledStep) {
  // q0 -a-> q1 -eps-> q2 (final): acceptance must see through the
  // trailing epsilon-move.
  Database db;
  uint32_t s = db.AddVertex(), t = db.AddVertex();
  uint32_t a = db.labels().Intern("a");
  db.AddEdge(s, a, t);
  Nfa nfa(3);
  nfa.AddInitial(0);
  nfa.AddFinal(2);
  nfa.AddTransition(0, a, 1);
  nfa.AddEpsilonTransition(1, 2);
  Annotation ann = Annotate(db.Freeze(), nfa, s, t);
  ASSERT_TRUE(ann.reachable());
  EXPECT_EQ(ann.lambda, 1);
  EXPECT_EQ(CountAnswers(db, nfa, s, t), 1u);
}

TEST(AnnotateTest, EpsilonCyclesTerminate) {
  // q0 and q1 form an epsilon-cycle (as Thompson's construction emits
  // for nested stars); closure saturation must not loop.
  Database db;
  uint32_t s = db.AddVertex(), t = db.AddVertex();
  uint32_t a = db.labels().Intern("a");
  db.AddEdge(s, a, t);
  Nfa nfa(3);
  nfa.AddInitial(0);
  nfa.AddFinal(2);
  nfa.AddEpsilonTransition(0, 1);
  nfa.AddEpsilonTransition(1, 0);
  nfa.AddTransition(1, a, 2);
  EXPECT_EQ(CountAnswers(db, nfa, s, t), 1u);
}

TEST(AnnotateTest, EpsilonOnlyAcceptanceYieldsTheEmptyWalk) {
  // source == target and the query accepts epsilon through a chain of
  // epsilon-moves only: lambda = 0, one empty answer.
  Database db;
  uint32_t s = db.AddVertex();
  db.labels().Intern("l0");
  db.AddEdge(s, 0u, s);
  Nfa nfa(3);
  nfa.AddInitial(0);
  nfa.AddFinal(2);
  nfa.AddEpsilonTransition(0, 1);
  nfa.AddEpsilonTransition(1, 2);
  nfa.AddTransition(0, 0u, 0);  // the loop label keeps longer walks legal
  Annotation ann = Annotate(db.Freeze(), nfa, s, s);
  ASSERT_TRUE(ann.reachable());
  EXPECT_EQ(ann.lambda, 0);
  EXPECT_EQ(CountAnswers(db, nfa, s, s), 1u);
}

TEST(AnnotateTest, EpsilonDoesNotShortenBelowTheLabeledDistance) {
  // Epsilon-moves advance the automaton, never the walk: lambda still
  // counts data edges.
  Database db;
  uint32_t v0 = db.AddVertex(), v1 = db.AddVertex(), v2 = db.AddVertex();
  uint32_t a = db.labels().Intern("a");
  db.AddEdge(v0, a, v1);
  db.AddEdge(v1, a, v2);
  Nfa nfa(4);
  nfa.AddInitial(0);
  nfa.AddFinal(3);
  nfa.AddTransition(0, a, 1);
  nfa.AddEpsilonTransition(1, 2);
  nfa.AddTransition(2, a, 3);
  Annotation ann = Annotate(db.Freeze(), nfa, v0, v2);
  ASSERT_TRUE(ann.reachable());
  EXPECT_EQ(ann.lambda, 2);
}

TEST(AnnotateTest, AnnotationSnapshotsTheQuery) {
  Database db;
  uint32_t s = db.AddVertex(), t = db.AddVertex();
  db.labels().Intern("l0");
  db.AddEdge(s, 0u, t);
  Annotation ann;
  {
    Nfa query = StaircaseNfa(1, 1);  // destroyed before use below
    ann = Annotate(db.Freeze(), query, s, t);
  }
  TrimmedIndex index(db.Freeze(), ann);
  TrimmedEnumerator en(ann, index, s, t);
  ASSERT_TRUE(en.Valid());
  en.Next();
  EXPECT_FALSE(en.Valid());
}

}  // namespace
}  // namespace dsw
