// The concurrent query engine, pinned from four sides:
//
//  1. Correctness: batches pumped through the worker pool concatenate
//     to exactly the single-threaded TrimmedEnumerator sequence (order
//     included), for every session, under every batch size.
//  2. Concurrency: N client threads park and SeekAfter-resume random
//     sessions off ONE shared snapshot while the pool's workers run
//     them on whichever thread is free; every session still matches the
//     oracle. Run under ThreadSanitizer in CI, this is the regression
//     test for the lazy-rebuild data race the snapshot layer removed —
//     the read path performs no lazy work, so TSan stays silent.
//  3. Retirement vs. upgrade: InstallSnapshot with an insert-only delta
//     that preserves lambda upgrades plans and parked sessions in place
//     (they resume the correct suffix of the NEW enumeration, no
//     kRetired); a delta that shortens lambda breaks the enumeration
//     order anchor, so started sessions are rejected gracefully
//     (PumpStatus::kRetired, stale index untouched).
//  4. The snapshot layer itself: raw reader threads sharing one
//     Snapshot build annotations/indexes/enumerators concurrently with
//     no engine and no synchronization.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/resumable_enumerator.h"
#include "core/resumable_index.h"
#include "core/trimmed_index.h"
#include "engine/engine.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

using EdgeSeq = std::vector<std::vector<uint32_t>>;

EdgeSeq Edges(const std::vector<Walk>& walks) {
  EdgeSeq out;
  out.reserve(walks.size());
  for (const Walk& w : walks) out.push_back(w.edges);
  return out;
}

// Single-threaded ground truth for (query, source, target) on a frozen
// snapshot.
EdgeSeq Oracle(const Snapshot& snap, const Nfa& query, uint32_t source,
               uint32_t target) {
  Annotation ann = Annotate(snap, query, source, target);
  TrimmedIndex index(snap, ann);
  EdgeSeq out;
  for (TrimmedEnumerator en(ann, index, source, target); en.Valid();
       en.Next())
    out.push_back(en.walk().edges);
  return out;
}

TEST(QueryEngineTest, DrainMatchesOracle) {
  Instance inst = BubbleChain(8, 2);
  Nfa query = StaircaseNfa(2, 2);
  Snapshot snap = inst.db.Freeze();
  EdgeSeq expected = Oracle(snap, query, inst.source, inst.target);
  ASSERT_EQ(expected.size(), 256u);  // 2^8 bubbles

  QueryEngine engine(2);
  engine.InstallSnapshot(snap);
  QueryId q = engine.Prepare(query, inst.source, inst.target);
  SessionId s = engine.OpenSession(q);
  PumpResult all = engine.Drain(s, 17);  // batch size not a divisor
  EXPECT_EQ(all.status, PumpStatus::kExhausted);
  EXPECT_EQ(Edges(all.walks), expected);

  // Once exhausted, further pumps report exhaustion and return nothing.
  PumpResult again = engine.Pump(s, 4);
  EXPECT_EQ(again.status, PumpStatus::kExhausted);
  EXPECT_TRUE(again.walks.empty());

  // The engine recorded a first-answer latency for each non-empty batch.
  EXPECT_GE(engine.FirstAnswerLatenciesNs().size(),
            expected.size() / 17);
}

TEST(QueryEngineTest, EveryBatchSizeParksAndResumesCorrectly) {
  Instance inst = StarOfChains(7, 5, 2);
  Nfa query = StaircaseNfa(1, 2);
  Snapshot snap = inst.db.Freeze();
  EdgeSeq expected = Oracle(snap, query, inst.source, inst.target);
  ASSERT_GT(expected.size(), 1u);

  QueryEngine engine(2);
  engine.InstallSnapshot(snap);
  QueryId q = engine.Prepare(query, inst.source, inst.target);
  for (uint32_t batch = 1; batch <= expected.size() + 1; ++batch) {
    SessionId s = engine.OpenSession(q);
    EdgeSeq got;
    for (;;) {
      PumpResult r = engine.Pump(s, batch);
      for (const Walk& w : r.walks) got.push_back(w.edges);
      ASSERT_NE(r.status, PumpStatus::kRetired);
      if (r.status != PumpStatus::kOk) break;
    }
    EXPECT_EQ(got, expected) << "batch " << batch;
  }
}

TEST(QueryEngineTest, SessionsWithNoAnswersExhaustImmediately) {
  Instance inst = Grid(3, 3);
  Snapshot snap = inst.db.Freeze();
  QueryEngine engine(2);
  engine.InstallSnapshot(snap);

  // Unreachable: wrong walk length for the staircase.
  QueryId unreachable = engine.Prepare(AnyKDfa(3, 2), inst.source,
                                       inst.target);
  PumpResult r = engine.Pump(engine.OpenSession(unreachable), 8);
  EXPECT_EQ(r.status, PumpStatus::kExhausted);
  EXPECT_TRUE(r.walks.empty());

  // lambda == 0: exactly the empty walk.
  QueryId lambda0 = engine.Prepare(StaircaseNfa(0, 1), inst.source,
                                   inst.source);
  PumpResult r0 = engine.Pump(engine.OpenSession(lambda0), 8);
  EXPECT_EQ(r0.status, PumpStatus::kExhausted);
  ASSERT_EQ(r0.walks.size(), 1u);
  EXPECT_TRUE(r0.walks[0].edges.empty());
}

// The multi-threaded stress suite: client threads interleave pumps of
// random batch sizes across many sessions sharing a handful of prepared
// queries on ONE snapshot; the pool resumes each parked cursor on
// whichever worker is free. Every session must reassemble its oracle
// sequence exactly.
TEST(QueryEngineStressTest, ConcurrentClientsRandomBatches) {
  Instance inst = BubbleChain(7, 2);
  Snapshot snap = inst.db.Freeze();
  struct Q {
    Nfa nfa;
    EdgeSeq expected;
  };
  std::vector<Q> qs;
  qs.push_back({StaircaseNfa(2, 2), {}});
  qs.push_back({StaircaseNfa(1, 2), {}});
  qs.push_back({CompleteNfa(3, 2), {}});
  for (Q& q : qs)
    q.expected = Oracle(snap, q.nfa, inst.source, inst.target);
  ASSERT_GT(qs[0].expected.size(), 100u);

  QueryEngine engine(4);
  engine.InstallSnapshot(snap);
  std::vector<QueryId> ids;
  for (const Q& q : qs)
    ids.push_back(engine.Prepare(q.nfa, inst.source, inst.target));

  constexpr int kClients = 4;
  constexpr int kSessionsPerClient = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::mt19937 rng(1000 + c);
      // Each client interleaves progress across its own sessions, so
      // park/resume happens mid-enumeration constantly.
      struct Live {
        SessionId session;
        size_t query;
        EdgeSeq got;
        bool done = false;
      };
      std::vector<Live> live;
      for (int i = 0; i < kSessionsPerClient; ++i) {
        size_t pick = rng() % ids.size();
        live.push_back({engine.OpenSession(ids[pick]), pick, {}, false});
      }
      size_t remaining = live.size();
      while (remaining > 0) {
        Live& l = live[rng() % live.size()];
        if (l.done) continue;
        uint32_t batch = 1 + rng() % 9;
        PumpResult r = engine.Pump(l.session, batch);
        if (r.status == PumpStatus::kRetired ||
            r.status == PumpStatus::kBusy) {
          ++failures;
          return;
        }
        for (const Walk& w : r.walks) l.got.push_back(w.edges);
        if (r.status == PumpStatus::kExhausted) {
          l.done = true;
          --remaining;
          if (l.got != qs[l.query].expected) ++failures;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(QueryEngineTest, RetiredSessionsAreRejectedGracefully) {
  Instance inst = BubbleChain(5, 2);
  Nfa query = StaircaseNfa(2, 2);
  Snapshot snap = inst.db.Freeze();
  QueryEngine engine(2);
  engine.InstallSnapshot(snap);
  QueryId q_old = engine.Prepare(query, inst.source, inst.target);
  SessionId s_old = engine.OpenSession(q_old);
  PumpResult first = engine.Pump(s_old, 4);
  ASSERT_EQ(first.status, PumpStatus::kOk);
  ASSERT_EQ(first.walks.size(), 4u);

  // A two-edge shortcut drops lambda from 10 to 2 (StaircaseNfa(2, 2)
  // accepts any word of length >= 2). The shorter lambda breaks the
  // enumeration-order anchor, so the incremental install must NOT
  // upgrade this started session — it is retired.
  uint32_t mid = inst.db.AddVertex();
  inst.db.AddEdge(inst.source, 0u, mid);
  inst.db.AddEdge(mid, 0u, inst.target);
  Snapshot snap2 = inst.db.Freeze();
  engine.InstallSnapshot(snap2);

  PumpResult rejected = engine.Pump(s_old, 4);
  EXPECT_EQ(rejected.status, PumpStatus::kRetired);
  EXPECT_TRUE(rejected.walks.empty());
  // Rejection is sticky.
  EXPECT_EQ(engine.Pump(s_old, 4).status, PumpStatus::kRetired);

  // A query re-prepared against the new snapshot sees the new edge and
  // runs to completion on the same engine.
  EdgeSeq expected = Oracle(snap2, query, inst.source, inst.target);
  QueryId q_new = engine.Prepare(query, inst.source, inst.target);
  PumpResult all = engine.Drain(engine.OpenSession(q_new), 8);
  EXPECT_EQ(all.status, PumpStatus::kExhausted);
  EXPECT_EQ(Edges(all.walks), expected);
}

// Two clients draining ONE session race for its pump lock; the loser
// of each round sees kBusy internally. Drain must absorb those (retry
// until the session parks or exhausts) rather than returning a partial
// batch under kBusy — the regression this pins: both clients finish
// kExhausted and together they partition the oracle sequence exactly.
TEST(QueryEngineTest, ConcurrentDrainsOfOneSessionPartitionTheAnswers) {
  Instance inst = BubbleChain(8, 2);
  Nfa query = StaircaseNfa(2, 2);
  Snapshot snap = inst.db.Freeze();
  EdgeSeq expected = Oracle(snap, query, inst.source, inst.target);
  ASSERT_EQ(expected.size(), 256u);

  QueryEngine engine(2);
  engine.InstallSnapshot(snap);
  SessionId s =
      engine.OpenSession(engine.Prepare(query, inst.source, inst.target));

  PumpResult a, b;
  std::thread ta([&] { a = engine.Drain(s, 3); });
  std::thread tb([&] { b = engine.Drain(s, 5); });
  ta.join();
  tb.join();

  EXPECT_EQ(a.status, PumpStatus::kExhausted);
  EXPECT_EQ(b.status, PumpStatus::kExhausted);
  EXPECT_EQ(a.walks.size() + b.walks.size(), expected.size());

  // Each client's stream is an in-order subsequence of the oracle...
  for (const PumpResult* r : {&a, &b}) {
    size_t pos = 0;
    for (const Walk& w : r->walks) {
      while (pos < expected.size() && expected[pos] != w.edges) ++pos;
      ASSERT_LT(pos, expected.size()) << "walk out of enumeration order";
      ++pos;
    }
  }
  // ...and together they cover it exactly.
  EdgeSeq merged = Edges(a.walks);
  EdgeSeq b_edges = Edges(b.walks);
  merged.insert(merged.end(), b_edges.begin(), b_edges.end());
  std::sort(merged.begin(), merged.end());
  EdgeSeq sorted_expected = expected;
  std::sort(sorted_expected.begin(), sorted_expected.end());
  EXPECT_EQ(merged, sorted_expected);
}

// The flip side of retirement: an insert-only delta that PRESERVES
// lambda (parallel duplicates of existing edges add new distinct
// shortest walks but no shorter one) upgrades the cached plan and the
// parked session in place. The session resumes — on the repaired
// index, against the new snapshot — the exact suffix of the NEW
// enumeration order after its last delivered walk, and is never
// retired.
TEST(QueryEngineTest, ParkedSessionsSurviveInsertOnlyInstall) {
  Instance inst = BubbleChain(6, 2);
  Nfa query = StaircaseNfa(2, 2);
  Snapshot snap = inst.db.Freeze();
  QueryEngine engine(2);
  engine.InstallSnapshot(snap);
  QueryId q = engine.Prepare(query, inst.source, inst.target);
  SessionId s = engine.OpenSession(q);
  PumpResult first = engine.Pump(s, 5);
  ASSERT_EQ(first.status, PumpStatus::kOk);
  ASSERT_EQ(first.walks.size(), 5u);
  // (Before mutating: the old snapshot's accessors assert freshness.)
  EdgeSeq old_expected = Oracle(snap, query, inst.source, inst.target);

  // Insert-only, lambda-preserving mutation: duplicate three existing
  // edges and grow the vertex set; freeze and publish incrementally.
  for (uint32_t id = 0; id < 3; ++id)
    inst.db.AddEdge(inst.db.src(id), inst.db.edge(id).label,
                    inst.db.dst(id));
  inst.db.AddVertices(2);
  Snapshot snap2 = inst.db.Freeze();
  engine.InstallSnapshot(snap2);

  EngineStats stats = engine.Stats();
  EXPECT_GT(stats.plans_upgraded, 0u);
  EXPECT_GT(stats.sessions_upgraded, 0u);
  EXPECT_EQ(stats.sessions_retired, 0u);

  // Suffix check against the new-snapshot oracle: everything after the
  // session's last delivered walk, in the new order. The duplicated
  // edges added genuinely new answers, so this is not the old suffix.
  EdgeSeq new_expected = Oracle(snap2, query, inst.source, inst.target);
  ASSERT_GT(new_expected.size(), old_expected.size());
  auto anchor = std::find(new_expected.begin(), new_expected.end(),
                          first.walks.back().edges);
  ASSERT_NE(anchor, new_expected.end());
  EdgeSeq want(anchor + 1, new_expected.end());

  PumpResult rest = engine.Drain(s, 7);
  EXPECT_EQ(rest.status, PumpStatus::kExhausted);
  EXPECT_EQ(Edges(rest.walks), want);
  EXPECT_EQ(engine.Stats().sessions_retired, 0u);
}

// No engine: the snapshot layer alone must let raw threads share one
// frozen snapshot — each thread builds its own annotation, index and
// enumerator concurrently. Before the snapshot refactor the first
// label_index() access rebuilt a mutable cache and this raced; now the
// build happened in Freeze() and the read path is const. TSan (CI
// matrix) verifies the absence of the race, the EXPECTs verify the
// shared data was not corrupted.
TEST(SnapshotConcurrencyTest, ReadersShareOneSnapshotWithoutLocks) {
  Instance inst = EmbedInNoise(BubbleChain(6, 2), 40, 160, 7);
  Snapshot snap = inst.db.Freeze();
  Nfa query = StaircaseNfa(2, 2);
  EdgeSeq expected = Oracle(snap, query, inst.source, inst.target);
  ASSERT_GT(expected.size(), 0u);

  constexpr int kReaders = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&] {
      Annotation ann = Annotate(snap, query, inst.source, inst.target);
      ResumableIndex index(snap, ann);
      ResumableEnumerator en(ann, index, inst.source, inst.target);
      EdgeSeq got;
      for (; en.Valid(); en.Next()) got.push_back(en.walk().edges);
      if (got != expected) ++mismatches;
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// And the sharing the engine actually performs: many enumerators over
// ONE prepared (annotation, index) pair, concurrently.
TEST(SnapshotConcurrencyTest, EnumeratorsShareOnePreparedQuery) {
  Instance inst = BubbleChain(8, 2);
  Snapshot snap = inst.db.Freeze();
  Nfa query = StaircaseNfa(2, 2);
  Annotation ann = Annotate(snap, query, inst.source, inst.target);
  ResumableIndex index(snap, ann);
  EdgeSeq expected = Oracle(snap, query, inst.source, inst.target);

  constexpr int kReaders = 4;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < kReaders; ++i) {
    readers.emplace_back([&, i] {
      // Stagger entry points: thread i starts from answer i via the
      // memoryless SeekAfter, then walks to the end.
      ResumableEnumerator en(ann, index, inst.source, inst.target);
      size_t start = static_cast<size_t>(i) % expected.size();
      if (start > 0) {
        Walk w;
        w.edges = expected[start - 1];
        if (!en.SeekAfter(w)) {
          ++mismatches;
          return;
        }
      }
      EdgeSeq got;
      for (; en.Valid(); en.Next()) got.push_back(en.walk().edges);
      EdgeSeq want(expected.begin() + static_cast<ptrdiff_t>(start),
                   expected.end());
      if (got != want) ++mismatches;
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace dsw
