// Oracle tests for the incremental maintenance layer: after every
// randomized edge insertion, the repaired Annotation, TrimmedIndex and
// B-lists must be *bit-identical* to a from-scratch rebuild against the
// new snapshot, and the repaired ResumableIndex must enumerate the same
// answers in the same order as a fresh one — with the naive product-path
// baseline as the independent set oracle. Scenarios cover the workload
// families (bubbles, grids, star-of-chains, noise-embedded cores, an
// initially-disconnected instance) and epsilon-NFAs via the Thompson
// front-end; together they apply well over 100 insertions.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "automaton/thompson.h"
#include "baseline/naive.h"
#include "core/delta_annotate.h"
#include "core/resumable_index.h"
#include "core/trimmed_index.h"
#include "regex/regex_parser.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

void ExpectAnnotationsEqual(const Annotation& got, const Annotation& want) {
  ASSERT_EQ(got.lambda, want.lambda);
  ASSERT_EQ(got.levels.size(), want.levels.size());
  const size_t words = want.words_per_set();
  for (size_t i = 0; i < want.levels.size(); ++i) {
    const LevelSets& g = got.levels[i];
    const LevelSets& w = want.levels[i];
    ASSERT_EQ(g.size(), w.size()) << "level " << i;
    for (size_t vi = 0; vi < w.size(); ++vi) {
      ASSERT_EQ(g.vertex(vi), w.vertex(vi)) << "level " << i;
      ASSERT_EQ(std::memcmp(g.states(vi).words(), w.states(vi).words(),
                            words * sizeof(uint64_t)),
                0)
          << "level " << i << " vertex " << w.vertex(vi);
    }
  }
}

void ExpectTrimsEqual(const TrimmedIndex& got, const TrimmedIndex& want) {
  ASSERT_EQ(got.num_levels(), want.num_levels());
  ASSERT_EQ(got.num_slots(), want.num_slots());
  if (want.num_levels() == 0) return;
  const size_t words = want.words_per_set();
  const uint32_t lambda = want.num_levels() - 1;
  for (uint32_t i = 0; i <= lambda; ++i) {
    const LevelSets& g = got.UsefulLevel(i);
    const LevelSets& w = want.UsefulLevel(i);
    ASSERT_EQ(g.size(), w.size()) << "useful level " << i;
    for (size_t vi = 0; vi < w.size(); ++vi) {
      ASSERT_EQ(g.vertex(vi), w.vertex(vi)) << "useful level " << i;
      ASSERT_EQ(std::memcmp(g.states(vi).words(), w.states(vi).words(),
                            words * sizeof(uint64_t)),
                0)
          << "useful level " << i << " vertex " << w.vertex(vi);
      if (i == lambda) continue;
      auto gc = got.CandidatesAt(i, vi);
      auto wc = want.CandidatesAt(i, vi);
      ASSERT_EQ(gc.size(), wc.size())
          << "candidates at level " << i << " vertex " << w.vertex(vi);
      for (size_t c = 0; c < wc.size(); ++c) {
        EXPECT_EQ(gc[c].edge, wc[c].edge);
        EXPECT_EQ(gc[c].dst, wc[c].dst);
        EXPECT_EQ(gc[c].label, wc[c].label);
        EXPECT_EQ(gc[c].next_pos, wc[c].next_pos)
            << "level " << i << " vertex " << w.vertex(vi) << " cand " << c;
      }
      TrimmedIndex::BList gb = got.BListAt(i, vi);
      TrimmedIndex::BList wb = want.BListAt(i, vi);
      ASSERT_EQ(gb.num_cand, wb.num_cand);
      const size_t rows = wb.useful.Count();
      ASSERT_EQ(std::memcmp(gb.nxt, wb.nxt,
                            rows * (wb.num_cand + 1) * sizeof(uint32_t)),
                0)
          << "B-list block at level " << i << " vertex " << w.vertex(vi);
    }
  }
}

using EdgeSeq = std::vector<std::vector<uint32_t>>;

EdgeSeq Enumerate(const Annotation& ann, const ResumableIndex& idx,
                  uint32_t source, uint32_t target) {
  EdgeSeq out;
  for (ResumableEnumerator en(ann, idx, source, target); en.Valid();
       en.Next()) {
    out.push_back(en.walk().edges);
    if (out.size() > 100000) {
      ADD_FAILURE() << "enumeration runaway";
      break;
    }
  }
  return out;
}

// Applies num_inserts random edge insertions (occasionally interleaved
// with vertex additions, so the delta's vertex suffix is exercised too)
// and checks the repaired structures against from-scratch rebuilds
// after every one.
void RunScenario(Instance inst, const Nfa& query, uint32_t num_inserts,
                 uint64_t seed) {
  std::mt19937_64 rng(seed);
  const uint32_t num_labels = inst.db.labels().size();
  ASSERT_GT(num_labels, 0u);

  Snapshot snap = inst.db.Freeze();
  uint64_t prev_gen = snap.generation();
  Annotation carried = Annotate(snap, query, inst.source, inst.target);
  TrimmedIndex carried_trim(snap, carried);

  for (uint32_t step = 0; step < num_inserts; ++step) {
    SCOPED_TRACE(testing::Message() << "insertion " << step);
    if (rng() % 8 == 0)
      inst.db.AddVertices(1 + static_cast<uint32_t>(rng() % 3));
    const uint32_t num_vertices = inst.db.num_vertices();
    const uint32_t u = static_cast<uint32_t>(rng() % num_vertices);
    const uint32_t v = static_cast<uint32_t>(rng() % num_vertices);
    inst.db.AddEdge(u, static_cast<uint32_t>(rng() % num_labels), v);

    Snapshot ns = inst.db.Freeze();
    EdgeDelta delta = ns.DeltaFrom(prev_gen);
    ASSERT_TRUE(delta.known);
    prev_gen = ns.generation();

    Annotation fresh = Annotate(ns, query, inst.source, inst.target);
    AnnotationRepair rep = DeltaAnnotate(ns, delta, &carried);
    if (!rep.ok) {
      // The only unrepairable state is an unreachable old annotation
      // (no level data to repair); rebuild and keep going.
      ASSERT_FALSE(carried.reachable());
      carried = fresh;
      carried_trim = TrimmedIndex(ns, carried);
      continue;
    }
    ExpectAnnotationsEqual(carried, fresh);

    TrimmedIndex fresh_trim(ns, fresh);
    DeltaContext ctx(ns);
    carried_trim =
        DeltaTrim(ns, carried, carried_trim, rep, delta, ctx);
    ExpectTrimsEqual(carried_trim, fresh_trim);

    if (!carried.reachable()) continue;
    ResumableIndex fresh_idx(ns, fresh);
    ResumableIndex repaired_idx(ns, carried, carried_trim);
    EdgeSeq got = Enumerate(carried, repaired_idx, inst.source, inst.target);
    EdgeSeq want = Enumerate(fresh, fresh_idx, inst.source, inst.target);
    ASSERT_EQ(got, want) << "repaired enumeration order diverged";

    // The naive baseline is the expensive oracle (it wanders every
    // level-consistent product path, noise included); sampling every
    // third insertion keeps the sanitizer jobs fast while the exact
    // fresh-vs-repaired comparison above still runs on every one.
    if (step % 3 != 0) continue;
    NaiveResult naive = NaiveDistinctShortestWalks(
        ns, query, inst.source, inst.target, uint64_t{1} << 19);
    if (!naive.budget_exhausted) {
      std::set<std::vector<uint32_t>> naive_set;
      for (const Walk& w : naive.walks) naive_set.insert(w.edges);
      std::set<std::vector<uint32_t>> got_set(got.begin(), got.end());
      ASSERT_EQ(got_set, naive_set) << "answer set diverged from naive";
    }
  }
}

TEST(DeltaAnnotateOracleTest, BubbleChainStaircase) {
  RunScenario(BubbleChain(6, 2), StaircaseNfa(2, 2), 30, 101);
}

TEST(DeltaAnnotateOracleTest, GridStaircase) {
  RunScenario(Grid(5, 5), StaircaseNfa(3, 1), 25, 202);
}

TEST(DeltaAnnotateOracleTest, StarOfChainsCompleteNfa) {
  RunScenario(StarOfChains(4, 6, 3), CompleteNfa(4, 3), 25, 303);
}

TEST(DeltaAnnotateOracleTest, NoisyBubblesEpsilonNfa) {
  Instance inst = EmbedInNoise(BubbleChain(5, 2), 40, 120, 7);
  RegexParseResult ast = ParseRegex(ContainsL0Regex(2));
  ASSERT_TRUE(ast.ok()) << ast.error();
  Nfa thompson = ThompsonNfa(*ast.value(), inst.db.mutable_dict());
  ASSERT_GT(thompson.num_epsilon_transitions(), 0u);
  RunScenario(std::move(inst), thompson, 30, 404);
}

TEST(DeltaAnnotateOracleTest, DisconnectedUntilInsertionsConnect) {
  // No edges at all to start: the annotation begins unreachable (the
  // unrepairable case) and flips to reachable once random insertions
  // connect source to target; the scenario exercises both the rebuild
  // fallback and repairs on a still-sparse graph.
  Instance inst;
  workload_detail::InternLabels(&inst.db, 2);
  inst.db.AddVertices(12);
  inst.source = 0;
  inst.target = 11;
  RunScenario(std::move(inst), StaircaseNfa(2, 2), 20, 505);
}

// The AddVertices-only delta: no new edges means no annotation change
// at all, and the repair must report that (empty changed lists, same
// lambda) while staying bit-identical.
TEST(DeltaAnnotateTest, VertexOnlyDeltaIsANoOpRepair) {
  Instance inst = BubbleChain(4, 2);
  Snapshot snap = inst.db.Freeze();
  uint64_t prev_gen = snap.generation();
  Annotation carried = Annotate(snap, StaircaseNfa(2, 2), inst.source,
                                inst.target);
  TrimmedIndex carried_trim(snap, carried);
  ASSERT_TRUE(carried.reachable());

  inst.db.AddVertices(5);
  Snapshot ns = inst.db.Freeze();
  EdgeDelta delta = ns.DeltaFrom(prev_gen);
  ASSERT_TRUE(delta.known);

  AnnotationRepair rep = DeltaAnnotate(ns, delta, &carried);
  ASSERT_TRUE(rep.ok);
  EXPECT_FALSE(rep.lambda_changed);
  for (const auto& level : rep.changed) EXPECT_TRUE(level.empty());

  Annotation fresh = Annotate(ns, StaircaseNfa(2, 2), inst.source,
                              inst.target);
  ExpectAnnotationsEqual(carried, fresh);
  DeltaContext ctx(ns);
  TrimmedIndex repaired =
      DeltaTrim(ns, carried, carried_trim, rep, delta, ctx);
  TrimmedIndex fresh_trim(ns, fresh);
  ExpectTrimsEqual(repaired, fresh_trim);
}

TEST(DeltaAnnotateTest, UnknownDeltaIsRejected) {
  Instance inst = BubbleChain(3, 2);
  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, StaircaseNfa(2, 2), inst.source,
                            inst.target);
  Annotation before = ann;
  AnnotationRepair rep = DeltaAnnotate(snap, EdgeDelta{}, &ann);
  EXPECT_FALSE(rep.ok);
  ExpectAnnotationsEqual(ann, before);  // untouched on rejection
}

}  // namespace
}  // namespace dsw
