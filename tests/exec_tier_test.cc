// The execution-tier layer (core/query_traits.h, util/word_kernel.h):
//
//  - ClassifyQuery unit tests: the three tiers, the traits flags, and
//    the deterministic-automaton edge cases (duplicate parallel
//    transitions, multiple initials, epsilon moves).
//  - SimpleEnumerator::Applicable negatives: multi-label data,
//    nondeterministic query, epsilon-transitions.
//  - Cross-tier bit-identity: the collapsed single-word kernels vs the
//    generic multi-word loops forced onto the same one-word query
//    (AnnotateOptions::force_multi_word, the enumerators' ctor flag)
//    must agree level for level, candidate for candidate, B-list row
//    for B-list row, answer for answer — and probe for probe (OpStats).
//    Queries over 64 states exercise the genuinely-multi-word path.
//  - Simple-vs-trimmed oracle: SimpleEnumerator's answer sequence is
//    bit-identical to the general pipeline's on simple instances.
//  - Engine per-tier prepare counters.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "automaton/thompson.h"
#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/query_traits.h"
#include "core/resumable_enumerator.h"
#include "core/resumable_index.h"
#include "core/simple_enumerator.h"
#include "core/trimmed_index.h"
#include "engine/engine.h"
#include "regex/regex_parser.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

// ------------------------------------------------------- bit equality

void ExpectLevelSetsEqual(const LevelSets& a, const LevelSets& b,
                          const char* what, uint32_t level) {
  SCOPED_TRACE(std::string(what) + " level " + std::to_string(level));
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.words_per_set(), b.words_per_set());
  ASSERT_EQ(a.vertices(), b.vertices());
  for (size_t i = 0; i < a.size(); ++i) {
    StateSetView av = a.states(i);
    StateSetView bv = b.states(i);
    ASSERT_EQ(av.num_words(), bv.num_words());
    for (size_t w = 0; w < av.num_words(); ++w)
      ASSERT_EQ(av.words()[w], bv.words()[w])
          << "vertex " << a.vertex(i) << " word " << w;
  }
}

void ExpectAnnotationsEqual(const Annotation& a, const Annotation& b) {
  ASSERT_EQ(a.lambda, b.lambda);
  ASSERT_EQ(a.num_states, b.num_states);
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (size_t i = 0; i < a.levels.size(); ++i)
    ExpectLevelSetsEqual(a.levels[i], b.levels[i], "annotation",
                         static_cast<uint32_t>(i));
}

void ExpectTrimmedEqual(const TrimmedIndex& a, const TrimmedIndex& b) {
  ASSERT_EQ(a.num_slots(), b.num_slots());
  ASSERT_EQ(a.num_levels(), b.num_levels());
  ASSERT_EQ(a.words_per_set(), b.words_per_set());
  for (uint32_t l = 0; l < a.num_levels(); ++l) {
    ExpectLevelSetsEqual(a.UsefulLevel(l), b.UsefulLevel(l), "useful", l);
    if (l + 1 == a.num_levels()) continue;  // level lambda: no candidates
    for (size_t p = 0; p < a.UsefulLevel(l).size(); ++p) {
      auto ca = a.CandidatesAt(l, p);
      auto cb = b.CandidatesAt(l, p);
      ASSERT_EQ(ca.size(), cb.size()) << "level " << l << " pos " << p;
      for (size_t c = 0; c < ca.size(); ++c) {
        EXPECT_EQ(ca[c].edge, cb[c].edge);
        EXPECT_EQ(ca[c].dst, cb[c].dst);
        EXPECT_EQ(ca[c].label, cb[c].label);
        EXPECT_EQ(ca[c].next_pos, cb[c].next_pos);
      }
      TrimmedIndex::BList ba = a.BListAt(l, p);
      TrimmedIndex::BList bb = b.BListAt(l, p);
      ASSERT_EQ(ba.num_cand, bb.num_cand);
      const size_t rows = ba.useful.Count();
      ASSERT_EQ(rows, static_cast<size_t>(bb.useful.Count()));
      ASSERT_EQ(std::memcmp(ba.nxt, bb.nxt,
                            rows * (ba.num_cand + 1) * sizeof(uint32_t)),
                0)
          << "B-list block differs at level " << l << " pos " << p;
    }
  }
}

// Drains up to \p cap answers. Answer sets can be huge (the Thompson
// family's layered graphs); a capped prefix compared on BOTH sides is
// still a bit-identity check — same cap, same claimed order.
template <typename Enumerator>
std::vector<Walk> DrainAll(Enumerator* en, size_t cap = 1 << 14) {
  std::vector<Walk> walks;
  while (en->Valid() && walks.size() < cap) {
    walks.push_back(en->walk());
    en->Next();
  }
  return walks;
}

void ExpectSameWalks(const std::vector<Walk>& a, const std::vector<Walk>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i].edges, b[i].edges) << "answer " << i;
}

// The whole cross-tier oracle: default (single-word for one-word
// queries) vs forced multi-word — annotation, trimmed structure,
// enumeration sequence, op accounting.
void ExpectTiersBitIdentical(Instance& inst, const Nfa& query) {
  Snapshot snap = inst.db.Freeze();
  Annotation fast_ann = Annotate(snap, query, inst.source, inst.target);
  AnnotateOptions forced;
  forced.force_multi_word = true;
  Annotation slow_ann =
      Annotate(snap, query, inst.source, inst.target, forced);
  ExpectAnnotationsEqual(fast_ann, slow_ann);

  TrimmedIndex fast_index(snap, fast_ann);
  TrimmedIndex slow_index(snap, slow_ann, forced);
  ExpectTrimmedEqual(fast_index, slow_index);

  TrimmedEnumerator fast_en(fast_ann, fast_index, inst.source, inst.target);
  TrimmedEnumerator slow_en(slow_ann, slow_index, inst.source, inst.target,
                            /*force_multi_word=*/true);
  std::vector<Walk> fast = DrainAll(&fast_en);
  std::vector<Walk> slow = DrainAll(&slow_en);
  ExpectSameWalks(fast, slow);
  // The Theorem 2 op accounting must not depend on the kernel tier.
  EXPECT_EQ(fast_en.stats().row_ors, slow_en.stats().row_ors);
  EXPECT_EQ(fast_en.stats().probes, slow_en.stats().probes);

  ResumableIndex fast_ri(snap, fast_ann);
  ResumableIndex slow_ri(snap, slow_ann, forced);
  ResumableEnumerator fast_ren(fast_ann, fast_ri, inst.source, inst.target);
  ResumableEnumerator slow_ren(slow_ann, slow_ri, inst.source, inst.target,
                               /*force_multi_word=*/true);
  std::vector<Walk> fast_r = DrainAll(&fast_ren);
  std::vector<Walk> slow_r = DrainAll(&slow_ren);
  ExpectSameWalks(fast_r, fast);  // and both match the stateful order
  ExpectSameWalks(fast_r, slow_r);
  EXPECT_EQ(fast_ren.stats().total(), slow_ren.stats().total());

  // SeekAfter mid-sequence: both tiers resume onto the same successor.
  if (fast.size() >= 2) {
    const Walk& anchor = fast[fast.size() / 2];
    ASSERT_TRUE(fast_ren.SeekAfter(anchor));
    ASSERT_TRUE(slow_ren.SeekAfter(anchor));
    ASSERT_EQ(fast_ren.Valid(), slow_ren.Valid());
    if (fast_ren.Valid()) {
      EXPECT_EQ(fast_ren.walk().edges, slow_ren.walk().edges);
    }
  }
}

// ------------------------------------------------------ classification

TEST(QueryTraitsTest, GridAnyKIsSimple) {
  Instance inst = Grid(4, 5);
  Snapshot snap = inst.db.Freeze();
  QueryTraits traits = ClassifyQuery(snap, AnyKDfa(7, 1));
  EXPECT_EQ(traits.tier, ExecTier::kSimple);
  EXPECT_TRUE(traits.data_single_label);
  EXPECT_TRUE(traits.query_deterministic);
  EXPECT_TRUE(traits.single_word);
  EXPECT_TRUE(SimpleEnumerator::Applicable(snap, AnyKDfa(7, 1)));
}

TEST(QueryTraitsTest, MultiLabelDataIsSingleWordNotSimple) {
  Instance inst = BubbleChain(5, 2);  // top l0, bottom l1
  Snapshot snap = inst.db.Freeze();
  Nfa dfa = AnyKDfa(10, 2);  // still deterministic
  QueryTraits traits = ClassifyQuery(snap, dfa);
  EXPECT_EQ(traits.tier, ExecTier::kSingleWord);
  EXPECT_FALSE(traits.data_single_label);
  EXPECT_TRUE(traits.query_deterministic);
  EXPECT_FALSE(SimpleEnumerator::Applicable(snap, dfa));
}

TEST(QueryTraitsTest, NondeterministicQueryIsNotSimple) {
  Instance inst = Grid(4, 4);  // single-labeled
  Snapshot snap = inst.db.Freeze();
  Nfa staircase = StaircaseNfa(2, 1);  // loop + advance on one label
  QueryTraits traits = ClassifyQuery(snap, staircase);
  EXPECT_EQ(traits.tier, ExecTier::kSingleWord);
  EXPECT_TRUE(traits.data_single_label);
  EXPECT_FALSE(traits.query_deterministic);
  EXPECT_FALSE(SimpleEnumerator::Applicable(snap, staircase));
}

TEST(QueryTraitsTest, EpsilonQueryIsNotSimple) {
  Instance inst = Grid(4, 4);
  Snapshot snap = inst.db.Freeze();
  RegexParseResult ast = ParseRegex(ContainsL0Regex(1));
  ASSERT_TRUE(ast.ok()) << ast.error();
  Nfa thompson = ThompsonNfa(*ast.value(), inst.db.mutable_dict());
  ASSERT_GT(thompson.num_epsilon_transitions(), 0u);
  QueryTraits traits = ClassifyQuery(snap, thompson);
  EXPECT_FALSE(traits.query_deterministic);
  EXPECT_NE(traits.tier, ExecTier::kSimple);
  EXPECT_FALSE(SimpleEnumerator::Applicable(snap, thompson));
}

TEST(QueryTraitsTest, Over64StatesIsGeneral) {
  Instance inst = BubbleChain(4, 2);
  Snapshot snap = inst.db.Freeze();
  Nfa big = StaircaseNfa(70, 2);  // 71 states: two words per set
  QueryTraits traits = ClassifyQuery(snap, big);
  EXPECT_EQ(traits.tier, ExecTier::kGeneral);
  EXPECT_FALSE(traits.single_word);
}

TEST(QueryTraitsTest, SimpleBeatsSingleWord) {
  // A simple query with |Q| <= 64 reports kSimple, not kSingleWord.
  Instance inst = Grid(3, 3);
  Snapshot snap = inst.db.Freeze();
  QueryTraits traits = ClassifyQuery(snap, AnyKDfa(4, 1));
  EXPECT_TRUE(traits.single_word);
  EXPECT_EQ(traits.tier, ExecTier::kSimple);
}

TEST(QueryTraitsTest, DeterminismEdgeCases) {
  Instance inst = Grid(2, 2);
  Snapshot snap = inst.db.Freeze();

  // Duplicate parallel transitions to the SAME successor are tolerated.
  Nfa dup(2);
  dup.AddInitial(0);
  dup.AddFinal(1);
  dup.AddTransition(0, 0u, 1);
  dup.AddTransition(0, 0u, 1);
  EXPECT_TRUE(QueryDeterministic(dup));
  EXPECT_EQ(ClassifyQuery(snap, dup).tier, ExecTier::kSimple);

  // Two distinct successors on one (state, label) are not.
  Nfa fork(3);
  fork.AddInitial(0);
  fork.AddFinal(2);
  fork.AddTransition(0, 0u, 1);
  fork.AddTransition(0, 0u, 2);
  EXPECT_FALSE(QueryDeterministic(fork));

  // Multiple initial states are not.
  Nfa two_init(2);
  two_init.AddInitial(0);
  two_init.AddInitial(1);
  two_init.AddFinal(1);
  two_init.AddTransition(0, 0u, 1);
  EXPECT_FALSE(QueryDeterministic(two_init));

  // The empty automaton is not (vacuously rejected).
  EXPECT_FALSE(QueryDeterministic(Nfa(0)));
}

TEST(QueryTraitsTest, EdgelessSnapshotIsSingleLabeled) {
  Database db;
  db.labels().Intern("l0");
  db.AddVertices(3);
  Snapshot snap = db.Freeze();
  EXPECT_TRUE(DataSingleLabeled(snap));
  EXPECT_EQ(ClassifyQuery(snap, AnyKDfa(2, 1)).tier, ExecTier::kSimple);
}

TEST(ExecTierTest, TierNames) {
  EXPECT_STREQ(ExecTierName(ExecTier::kSimple), "simple");
  EXPECT_STREQ(ExecTierName(ExecTier::kSingleWord), "single_word");
  EXPECT_STREQ(ExecTierName(ExecTier::kGeneral), "general");
}

// ---------------------------------------- cross-tier bit-identity

TEST(ExecTierTest, GridBitIdenticalAcrossKernels) {
  Instance inst = Grid(7, 9);
  ExpectTiersBitIdentical(inst, StaircaseNfa(1, 1));
}

TEST(ExecTierTest, BubbleChainBitIdenticalAcrossKernels) {
  Instance inst = BubbleChain(7, 2);
  ExpectTiersBitIdentical(inst, StaircaseNfa(2, 2));
}

TEST(ExecTierTest, DeadFanoutCertificatesBitIdenticalAcrossKernels) {
  // The dead-candidate B-list machinery: NextLive's non-full path must
  // probe identically in both kernel instantiations.
  Instance inst = DeadFanout(13, 4);
  ExpectTiersBitIdentical(inst, ForkChainNfa(4));
}

TEST(ExecTierTest, LayeredGraphBitIdenticalAcrossKernels) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    LayeredGraphParams params;
    params.layers = 6;
    params.width = 12;
    params.edges_per_vertex = 3;
    params.seed = seed;
    Instance inst = LayeredGraph(params);
    ExpectTiersBitIdentical(inst, StaircaseNfa(2, 2));
  }
}

TEST(ExecTierTest, ThompsonEpsilonBitIdenticalAcrossKernels) {
  Instance inst = LayeredGraph({});
  RegexParseResult ast = ParseRegex(ContainsL0Regex(2));
  ASSERT_TRUE(ast.ok()) << ast.error();
  Nfa thompson = ThompsonNfa(*ast.value(), inst.db.mutable_dict());
  ASSERT_GT(thompson.num_epsilon_transitions(), 0u);
  ExpectTiersBitIdentical(inst, thompson);
}

TEST(ExecTierTest, Over64StatesRunsMultiWordEitherWay) {
  // wps = 2: force_multi_word is a no-op by construction, and the
  // genuinely multi-word instantiation must still be self-consistent.
  Instance inst = BubbleChain(4, 2);
  Nfa big = StaircaseNfa(70, 2);
  ASSERT_GT(big.num_states(), 64u);
  ExpectTiersBitIdentical(inst, big);
}

TEST(ExecTierTest, UnreachableTargetBitIdenticalAcrossKernels) {
  Instance inst = DeadFanout(4, 3);
  Nfa query(2);
  query.AddInitial(0);
  query.AddFinal(1);
  query.AddTransition(0, 1u, 1);  // demands an l1 step the data lacks
  query.AddTransition(1, 1u, 1);
  ExpectTiersBitIdentical(inst, query);
}

// ------------------------------------------- simple-vs-trimmed oracle

void ExpectSimpleMatchesTrimmed(Instance& inst, const Nfa& dfa) {
  Snapshot snap = inst.db.Freeze();
  ASSERT_TRUE(SimpleEnumerator::Applicable(snap, dfa));
  SimpleEnumerator simple(snap, dfa, inst.source, inst.target);

  Annotation ann = Annotate(snap, dfa, inst.source, inst.target);
  TrimmedIndex index(snap, ann);
  TrimmedEnumerator general(ann, index, inst.source, inst.target);

  EXPECT_EQ(simple.lambda(), ann.lambda);
  std::vector<Walk> fast = DrainAll(&simple);
  std::vector<Walk> slow = DrainAll(&general);
  ExpectSameWalks(fast, slow);
}

TEST(SimpleEnumeratorTest, GridMatchesGeneralPipeline) {
  Instance inst = Grid(5, 7);
  ExpectSimpleMatchesTrimmed(inst, AnyKDfa(10, 1));
}

TEST(SimpleEnumeratorTest, BubbleChainMatchesGeneralPipeline) {
  Instance inst = BubbleChain(8, 1);  // 256 answers, lambda = 16
  ExpectSimpleMatchesTrimmed(inst, AnyKDfa(16, 1));
}

TEST(SimpleEnumeratorTest, StarOfChainsMatchesGeneralPipeline) {
  Instance inst = StarOfChains(9, 5, 1);
  ExpectSimpleMatchesTrimmed(inst, AnyKDfa(5, 1));
}

TEST(SimpleEnumeratorTest, NoAnswerIsInvalid) {
  Instance inst = Grid(3, 3);
  Snapshot snap = inst.db.Freeze();
  // Walks of length 3 cannot end at the far corner (lambda = 4).
  Nfa dfa = AnyKDfa(3, 1);
  ASSERT_TRUE(SimpleEnumerator::Applicable(snap, dfa));
  SimpleEnumerator en(snap, dfa, inst.source, inst.target);
  EXPECT_FALSE(en.Valid());
  EXPECT_EQ(en.lambda(), -1);
}

TEST(SimpleEnumeratorTest, LambdaZeroYieldsTheEmptyWalk) {
  Instance inst = Grid(3, 3);
  Snapshot snap = inst.db.Freeze();
  Nfa dfa = AnyKDfa(0, 1);  // accepts exactly the empty word
  ASSERT_TRUE(SimpleEnumerator::Applicable(snap, dfa));
  SimpleEnumerator en(snap, dfa, inst.source, inst.source);
  ASSERT_TRUE(en.Valid());
  EXPECT_EQ(en.lambda(), 0);
  EXPECT_TRUE(en.walk().edges.empty());
  en.Next();
  EXPECT_FALSE(en.Valid());
}

// --------------------------------------------------- engine counters

TEST(ExecTierTest, EnginePerTierPrepareCounters) {
  Instance inst = Grid(4, 4);
  QueryEngine engine(2);
  engine.InstallSnapshot(inst.db.Freeze());

  engine.Prepare(AnyKDfa(6, 1), inst.source, inst.target);     // simple
  engine.Prepare(StaircaseNfa(2, 1), inst.source, inst.target);  // 1-word
  engine.Prepare(StaircaseNfa(70, 1), inst.source, inst.target);  // general
  EngineStats stats = engine.Stats();
  EXPECT_EQ(stats.tier_simple, 1u);
  EXPECT_EQ(stats.tier_single_word, 1u);
  EXPECT_EQ(stats.tier_general, 1u);

  // Cache hits count too: the counters tally plans handed out.
  engine.Prepare(AnyKDfa(6, 1), inst.source, inst.target);
  stats = engine.Stats();
  EXPECT_EQ(stats.tier_simple, 2u);
  EXPECT_EQ(stats.plan_cache.hits, 1u);

  // PrepareBatch classifies once and tags every slice.
  std::vector<uint32_t> sources = {inst.source, 1u, 2u};
  engine.PrepareBatch(AnyKDfa(6, 1), sources, inst.target);
  stats = engine.Stats();
  EXPECT_EQ(stats.tier_simple, 5u);
}

}  // namespace
}  // namespace dsw
