// Unit tests for the label-stratified data layer: the snapshot's CSR
// LabelIndex (grouping, ordering, rebuild on Freeze after mutation) and
// the precompiled CompiledDelta transition relation (forward rows with
// after-side epsilon-closure composition, reverse rows, label/source
// masks).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <utility>
#include <vector>

#include "core/database.h"
#include "core/nfa.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

// The CSR must partition each vertex's out-edges into label groups,
// groups sorted by label id, edges inside a group in insertion order.
void ExpectIndexMatchesAdjacency(Database& db) {
  Snapshot snap = db.Freeze();
  const LabelIndex& ix = snap.label_index();
  for (uint32_t v = 0; v < db.num_vertices(); ++v) {
    std::map<uint32_t, std::vector<uint32_t>> expected;  // label -> edges
    for (uint32_t e : db.OutEdges(v)) expected[db.edge(e).label].push_back(e);

    uint32_t prev_label = 0;
    bool first = true;
    std::map<uint32_t, std::vector<uint32_t>> got;
    for (const LabelIndex::Group& g : ix.GroupsOf(v)) {
      if (!first) {
        EXPECT_LT(prev_label, g.label) << "groups not sorted";
      }
      first = false;
      prev_label = g.label;
      for (const LabelIndex::Target& t : ix.Targets(g)) {
        EXPECT_EQ(db.edge(t.edge).src, v);
        EXPECT_EQ(db.edge(t.edge).label, g.label);
        EXPECT_EQ(db.edge(t.edge).dst, t.dst) << "denormalized dst is stale";
        got[g.label].push_back(t.edge);
      }
    }
    EXPECT_EQ(got, expected) << "vertex " << v;
  }
}

TEST(LabelIndexTest, StratifiesRandomGraphs) {
  LayeredGraphParams params;
  params.layers = 4;
  params.width = 6;
  params.edges_per_vertex = 3;
  params.num_labels = 3;
  params.extra_labels = 2;
  params.multi_label_p = 0.5;
  params.seed = 12345;
  Instance inst = LayeredGraph(params);
  ExpectIndexMatchesAdjacency(inst.db);
}

TEST(LabelIndexTest, ParallelEdgesStayAdjacentInInsertionOrder) {
  Database db;
  uint32_t s = db.AddVertex(), t = db.AddVertex();
  uint32_t a = db.labels().Intern("a"), b = db.labels().Intern("b");
  uint32_t e0 = db.AddEdge(s, b, t);
  uint32_t e1 = db.AddEdge(s, a, t);
  uint32_t e2 = db.AddEdge(s, b, t);  // parallel to e0, same label
  Snapshot snap = db.Freeze();
  const LabelIndex& ix = snap.label_index();
  auto groups = ix.GroupsOf(s);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].label, a);
  EXPECT_EQ(groups[1].label, b);
  ASSERT_EQ(ix.Targets(groups[0]).size(), 1u);
  EXPECT_EQ(ix.Targets(groups[0])[0].edge, e1);
  ASSERT_EQ(ix.Targets(groups[1]).size(), 2u);
  EXPECT_EQ(ix.Targets(groups[1])[0].edge, e0);
  EXPECT_EQ(ix.Targets(groups[1])[1].edge, e2);
}

TEST(LabelIndexTest, FreezeAfterMutationSeesTheNewEdges) {
  Database db;
  uint32_t s = db.AddVertex(), t = db.AddVertex();
  db.AddEdge(s, "a", t);
  EXPECT_EQ(db.Freeze().label_index().GroupsOf(s).size(), 1u);

  // Mutations retire the frozen index; the next Freeze() rebuilds and
  // sees the new edges.
  db.AddEdge(s, "b", t);
  uint32_t u = db.AddVertex();
  db.AddEdge(s, "a", u);
  Snapshot snap = db.Freeze();
  const LabelIndex& ix = snap.label_index();
  ASSERT_EQ(ix.GroupsOf(s).size(), 2u);
  EXPECT_EQ(ix.Targets(ix.GroupsOf(s)[0]).size(), 2u);  // two a-edges
  EXPECT_TRUE(ix.GroupsOf(u).empty());
  ExpectIndexMatchesAdjacency(db);
}

// Brute-force oracle for CompiledDelta on an arbitrary Nfa.
void ExpectDeltaMatchesNfa(const Nfa& nfa) {
  CompiledDelta delta(nfa);
  ASSERT_EQ(delta.num_states(), nfa.num_states());
  std::vector<StateSet> closures;
  if (nfa.has_epsilon()) closures = nfa.EpsilonClosures();

  std::set<uint32_t> used_labels;
  std::map<std::pair<uint32_t, uint32_t>, std::set<uint32_t>> succ;
  std::map<uint32_t, std::set<uint32_t>> sources;
  for (uint32_t q = 0; q < nfa.num_states(); ++q)
    for (const auto& [label, to] : nfa.Transitions(q)) {
      used_labels.insert(label);
      sources[label].insert(q);
      if (closures.empty()) {
        succ[{label, q}].insert(to);
      } else {
        closures[to].ForEach(
            [&](uint32_t r) { succ[{label, q}].insert(r); });
      }
    }

  for (uint32_t l = 0; l < delta.num_labels(); ++l) {
    EXPECT_EQ(delta.HasLabel(l), used_labels.count(l) > 0);
    if (!delta.HasLabel(l)) continue;
    std::set<uint32_t> src_got;
    delta.Sources(l).ForEach([&](uint32_t q) { src_got.insert(q); });
    EXPECT_EQ(src_got, sources[l]);
    for (uint32_t q = 0; q < nfa.num_states(); ++q) {
      std::set<uint32_t> got;
      delta.Successors(l, q).ForEach([&](uint32_t r) { got.insert(r); });
      EXPECT_EQ(got, (succ[{l, q}])) << "label " << l << " state " << q;
      // Reverse rows are the transpose of the forward rows.
      for (uint32_t t = 0; t < nfa.num_states(); ++t)
        EXPECT_EQ(delta.Predecessors(l, t).Test(q),
                  delta.Successors(l, q).Test(t))
            << "rev/fwd mismatch at l=" << l << " q=" << q << " t=" << t;
    }
  }
  EXPECT_FALSE(delta.HasLabel(delta.num_labels()));
  EXPECT_FALSE(delta.HasLabel(UINT32_MAX));
}

TEST(CompiledDeltaTest, MatchesTransitionsEpsilonFree) {
  ExpectDeltaMatchesNfa(StaircaseNfa(3, 2));
  ExpectDeltaMatchesNfa(AnyKDfa(4, 3));
  ExpectDeltaMatchesNfa(CompleteNfa(5, 2));

  std::mt19937_64 rng(7);
  for (int round = 0; round < 5; ++round) {
    Nfa nfa(6);
    nfa.AddInitial(0);
    nfa.AddFinal(5);
    for (int i = 0; i < 20; ++i)
      nfa.AddTransition(rng() % 6, rng() % 4, rng() % 6);
    ExpectDeltaMatchesNfa(nfa);
  }
}

TEST(CompiledDeltaTest, ComposesAfterSideEpsilonClosure) {
  // q0 -a-> q1 -eps-> q2 -eps-> q3: delta[a][q0] must be {q1, q2, q3}.
  Nfa nfa(4);
  nfa.AddInitial(0);
  nfa.AddFinal(3);
  nfa.AddTransition(0, 0u, 1);
  nfa.AddEpsilonTransition(1, 2);
  nfa.AddEpsilonTransition(2, 3);
  CompiledDelta delta(nfa);
  EXPECT_EQ(delta.Successors(0, 0).Count(), 3u);
  EXPECT_TRUE(delta.Successors(0, 0).Test(1));
  EXPECT_TRUE(delta.Successors(0, 0).Test(3));
  // Reverse: every closure member points back at q0.
  EXPECT_TRUE(delta.Predecessors(0, 3).Test(0));
  ExpectDeltaMatchesNfa(nfa);
}

TEST(CompiledDeltaTest, EpsilonCyclesAndRandomEpsilonNfas) {
  std::mt19937_64 rng(11);
  for (int round = 0; round < 5; ++round) {
    Nfa nfa(7);
    nfa.AddInitial(0);
    nfa.AddFinal(6);
    for (int i = 0; i < 14; ++i)
      nfa.AddTransition(rng() % 7, rng() % 3, rng() % 7);
    for (int i = 0; i < 6; ++i)
      nfa.AddEpsilonTransition(rng() % 7, rng() % 7);  // cycles likely
    ExpectDeltaMatchesNfa(nfa);
  }
}

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)
TEST(DatabaseDeathTest, AddEdgeAssertsOnBadVertexIds) {
  Database db;
  uint32_t v = db.AddVertex();
  db.labels().Intern("a");
  EXPECT_DEATH(db.AddEdge(v, 0u, v + 1), "dst is not a vertex id");
  EXPECT_DEATH(db.AddEdge(v + 7, 0u, v), "src is not a vertex id");
}
#endif

}  // namespace
}  // namespace dsw
