// Property tests for the regex front-end as a whole: on random
// LayeredGraph and Grid instances, the Thompson (epsilon) and Glushkov
// (epsilon-free) compilations of the same regex must drive the pipeline
// to the *same* lambda and the same set of distinct shortest walks —
// the Section 5.1 claim that epsilon handling is free. The naive
// product-path baseline over the Glushkov NFA (epsilon-free, so it uses
// the original code path) is the independent oracle; running it over
// the Thompson NFA additionally exercises the epsilon-aware effective
// steps of the Annotation snapshot.
//
// A size check pins the translation bounds: Thompson's transition count
// (labeled + epsilon) grows linearly in the alphabet size m of the E9
// regex family, Glushkov's quadratically.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "automaton/glushkov.h"
#include "automaton/thompson.h"
#include "baseline/naive.h"
#include "core/annotate.h"
#include "core/enumerator.h"
#include "core/trimmed_index.h"
#include "regex/regex_parser.h"
#include "workload/generators.h"
#include "workload/queries.h"

namespace dsw {
namespace {

struct PipelineResult {
  int32_t lambda;
  std::set<std::vector<uint32_t>> walks;
};

PipelineResult RunPipeline(Instance& inst, const Nfa& nfa) {
  PipelineResult res;
  Snapshot snap = inst.db.Freeze();
  Annotation ann = Annotate(snap, nfa, inst.source, inst.target);
  res.lambda = ann.lambda;
  TrimmedIndex index(snap, ann);
  size_t emitted = 0;
  for (TrimmedEnumerator en(ann, index, inst.source, inst.target);
       en.Valid(); en.Next()) {
    ++emitted;
    EXPECT_TRUE(res.walks.insert(en.walk().edges).second)
        << "duplicate walk emitted";
  }
  EXPECT_EQ(emitted, res.walks.size());
  return res;
}

void ExpectFrontEndsAgree(Instance& inst, const std::string& pattern,
                          bool check_naive_oracle = true) {
  SCOPED_TRACE(pattern);
  RegexParseResult ast = ParseRegex(pattern);
  ASSERT_TRUE(ast.ok()) << ast.error();

  LabelDictionary* dict = inst.db.mutable_dict();
  Nfa thompson = ThompsonNfa(*ast.value(), dict);
  Nfa glushkov = GlushkovNfa(*ast.value(), dict);
  ASSERT_EQ(glushkov.num_epsilon_transitions(), 0u);

  PipelineResult via_thompson = RunPipeline(inst, thompson);
  PipelineResult via_glushkov = RunPipeline(inst, glushkov);
  EXPECT_EQ(via_thompson.lambda, via_glushkov.lambda);
  EXPECT_EQ(via_thompson.walks.size(), via_glushkov.walks.size());
  EXPECT_EQ(via_thompson.walks, via_glushkov.walks);

  if (!check_naive_oracle) return;  // skip when the answer set is huge
  // The oracle runs on the epsilon-free Glushkov NFA: naive explores
  // individual runs, and over an epsilon-NFA every closure member is a
  // distinct run, which blows up exponentially in lambda. (A dedicated
  // small-instance test below covers naive's epsilon-aware path.)
  NaiveResult naive = NaiveDistinctShortestWalks(inst.db.Freeze(), glushkov,
                                                 inst.source, inst.target);
  ASSERT_FALSE(naive.budget_exhausted);
  EXPECT_EQ(naive.lambda, via_glushkov.lambda);
  std::set<std::vector<uint32_t>> naive_set;
  for (const Walk& w : naive.walks) naive_set.insert(w.edges);
  EXPECT_EQ(naive_set, via_glushkov.walks);
}

TEST(FrontendEquivalenceTest, AgreeOnRandomLayeredGraphs) {
  for (uint64_t seed : {5u, 13u, 29u, 47u, 61u}) {
    LayeredGraphParams params;
    params.layers = 3 + seed % 3;
    params.width = 3 + seed % 2;
    params.edges_per_vertex = 2 + seed % 2;
    params.num_labels = 2 + seed % 2;
    params.seed = seed;
    Instance inst = LayeredGraph(params);
    ExpectFrontEndsAgree(inst, ContainsL0Regex(params.num_labels));
    ExpectFrontEndsAgree(inst, "(l0|l1)* l1 (l0|l1)?");
    ExpectFrontEndsAgree(inst, "(l0|l1)+ (l0 l1)* l0*");
  }
}

TEST(FrontendEquivalenceTest, AgreeOnGrids) {
  for (uint32_t n = 2; n <= 4; ++n) {
    Instance inst = Grid(n, n);
    ExpectFrontEndsAgree(inst, "l0*");
    ExpectFrontEndsAgree(inst, "l0 l0+");
    ExpectFrontEndsAgree(inst, "(l0 l0)* l0?");
  }
}

TEST(FrontendEquivalenceTest, AgreeOnBubbleChains) {
  for (uint32_t k = 1; k <= 5; ++k) {
    Instance inst = BubbleChain(k, 2);
    ExpectFrontEndsAgree(inst, "(l0|l1)*");
    ExpectFrontEndsAgree(inst, "(l0|l1)* l1 (l0|l1)*");
  }
}

TEST(FrontendEquivalenceTest, EpsilonHeavyRegexesStillAgree) {
  // Nested stars and optionals produce epsilon-cycles in Thompson's
  // automaton; closure saturation must terminate and stay equivalent.
  Instance inst = BubbleChain(3, 2);
  ExpectFrontEndsAgree(inst, "(l0* l1*)*");
  ExpectFrontEndsAgree(inst, "((l0|l1)?)+");
  ExpectFrontEndsAgree(inst, "(l0+|l1+)*");
}

TEST(FrontendEquivalenceTest, ThompsonLinearGlushkovQuadratic) {
  // Transition totals of the E9 family, |R| = 2m + 1 atoms: doubling m
  // should roughly double Thompson's total but roughly quadruple
  // Glushkov's.
  LabelDictionary dict;
  auto totals = [&dict](uint32_t m) {
    RegexParseResult ast = ParseRegex(ContainsL0Regex(m));
    EXPECT_TRUE(ast.ok());
    Nfa t = ThompsonNfa(*ast.value(), &dict);
    Nfa g = GlushkovNfa(*ast.value(), &dict);
    EXPECT_EQ(t.num_transitions(), 2 * m + 1);  // one per atom occurrence
    return std::pair<size_t, size_t>(
        t.num_transitions() + t.num_epsilon_transitions(),
        g.num_transitions() + g.num_epsilon_transitions());
  };
  auto [t16, g16] = totals(16);
  auto [t32, g32] = totals(32);
  auto [t64, g64] = totals(64);
  EXPECT_LT(t32, t16 * 3);  // ~2x: linear
  EXPECT_LT(t64, t32 * 3);
  EXPECT_GT(g32, g16 * 3);  // ~4x: quadratic
  EXPECT_GT(g64, g32 * 3);
  EXPECT_GT(g64, t64 * 4);  // and the gap is wide at m = 64
}

TEST(FrontendEquivalenceTest, NaiveBaselineHandlesEpsilonNfas) {
  // Small instance (lambda = 4) so the run blow-up stays tiny: the
  // epsilon-aware naive search over the Thompson NFA must find the same
  // walk set as the trimmed pipeline.
  Instance inst = BubbleChain(2, 2);
  RegexParseResult ast = ParseRegex("(l0|l1)* l1 (l0|l1)*");
  ASSERT_TRUE(ast.ok());
  Nfa thompson = ThompsonNfa(*ast.value(), inst.db.mutable_dict());
  ASSERT_TRUE(thompson.has_epsilon());
  PipelineResult trimmed = RunPipeline(inst, thompson);

  NaiveResult naive = NaiveDistinctShortestWalks(inst.db.Freeze(), thompson,
                                                 inst.source, inst.target);
  ASSERT_FALSE(naive.budget_exhausted);
  EXPECT_EQ(naive.lambda, trimmed.lambda);
  std::set<std::vector<uint32_t>> naive_set;
  for (const Walk& w : naive.walks) naive_set.insert(w.edges);
  EXPECT_EQ(naive_set, trimmed.walks);
}

TEST(FrontendEquivalenceTest, RepeatedCompilationIsStable) {
  // bench_regex recompiles the regex against the live database inside
  // the timed loop; interning must be idempotent so every compilation
  // yields the identical automaton and answer count.
  Instance inst = BubbleChain(3, 2);
  RegexParseResult ast = ParseRegex("(l0|l1)* l0 (l0|l1)*");
  ASSERT_TRUE(ast.ok());
  uint32_t dict_size_before = inst.db.labels().size();
  size_t first_count = 0;
  for (int round = 0; round < 3; ++round) {
    Nfa nfa = ThompsonNfa(*ast.value(), inst.db.mutable_dict());
    PipelineResult res = RunPipeline(inst, nfa);
    if (round == 0)
      first_count = res.walks.size();
    else
      EXPECT_EQ(res.walks.size(), first_count);
    EXPECT_EQ(inst.db.labels().size(), dict_size_before);
  }
  EXPECT_GT(first_count, 0u);
}

}  // namespace
}  // namespace dsw
