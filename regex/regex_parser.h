// Regular-expression front-end for RPQ strings. Atoms are label *names*
// (maximal runs of [A-Za-z0-9_], so "l10" is one atom and "l1 l0" is a
// concatenation — graph labels are words, not characters); operators are
// grouping "()", alternation "|", and the postfix repetitions "*", "+",
// "?". Whitespace separates atoms and is otherwise ignored.
//
// Precedence, loosest to tightest: alternation, concatenation,
// repetition. "a b|c*" parses as (a.b) | (c*).
//
// ParseRegex returns a status-or result: ok() + value() on success (a
// heap-allocated AST the caller owns through the result object), or
// !ok() + error() with a position-annotated message. The AST is the
// input to the Thompson (automaton/thompson.h) and Glushkov
// (automaton/glushkov.h) translations; |R| in the paper's Theorem 19 /
// Corollary 20 bounds is RegexNode::NumAtoms().

#ifndef DSW_REGEX_REGEX_PARSER_H_
#define DSW_REGEX_REGEX_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dsw {

struct RegexNode {
  enum class Kind {
    kAtom,         // a label name; `label` is set, no children
    kConcat,       // >= 2 children, in order
    kAlternation,  // >= 2 children
    kStar,         // one child, zero or more repetitions
    kPlus,         // one child, one or more repetitions
    kOptional,     // one child, zero or one occurrence
  };

  Kind kind;
  std::string label;  // kAtom only
  std::vector<std::unique_ptr<RegexNode>> children;

  /// Number of atom occurrences — the size measure |R| of the paper's
  /// translation bounds (Thompson O(|R|), Glushkov O(|R|^2)).
  size_t NumAtoms() const {
    if (kind == Kind::kAtom) return 1;
    size_t n = 0;
    for (const auto& c : children) n += c->NumAtoms();
    return n;
  }
};

/// Status-or result of ParseRegex: ok() iff parsing succeeded, in which
/// case value() is the AST root; otherwise error() describes the failure.
class RegexParseResult {
 public:
  /// Default state is a failure with an empty message; use the factories.
  RegexParseResult() = default;

  static RegexParseResult Success(std::unique_ptr<RegexNode> node) {
    RegexParseResult r;
    r.node_ = std::move(node);
    return r;
  }
  static RegexParseResult Failure(std::string message) {
    RegexParseResult r;
    r.error_ = std::move(message);
    return r;
  }

  bool ok() const { return node_ != nullptr; }
  /// The AST root; non-null iff ok().
  const RegexNode* value() const { return node_.get(); }
  /// Human-readable failure description; empty iff ok().
  const std::string& error() const { return error_; }

 private:
  std::unique_ptr<RegexNode> node_;
  std::string error_;
};

namespace regex_detail {

inline bool IsAtomChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

inline bool IsSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

// Recursive-descent parser. On error sets error_ once (the first error
// wins) and unwinds by returning nullptr.
//
// Depth limits: parsing, both automaton constructions, and the AST's
// own destructor all recurse over the tree, so pathological inputs
// ("(((((...", "a*****...") must fail through the status-or path, not
// blow the stack. Group nesting and per-atom postfix stacking are
// capped; the product of the two bounds the depth of every recursion
// in the front-end. Real RPQs sit orders of magnitude below both caps.
class Parser {
 public:
  explicit Parser(std::string_view in) : in_(in) {}

  RegexParseResult Parse() {
    std::unique_ptr<RegexNode> node = ParseAlternation();
    if (node != nullptr) {
      SkipSpace();
      if (pos_ < in_.size()) {
        Fail(in_[pos_] == ')' ? "unmatched ')'" : "trailing input");
        node = nullptr;
      }
    }
    if (node == nullptr) return RegexParseResult::Failure(error_);
    return RegexParseResult::Success(std::move(node));
  }

 private:
  static constexpr int kMaxGroupDepth = 500;
  static constexpr int kMaxPostfixStack = 16;

  void SkipSpace() {
    while (pos_ < in_.size() && IsSpace(in_[pos_])) ++pos_;
  }

  // Peeks past whitespace; '\0' at end of input.
  char Peek() {
    SkipSpace();
    return pos_ < in_.size() ? in_[pos_] : '\0';
  }

  void Fail(std::string_view what) {
    if (!error_.empty()) return;  // keep the innermost, earliest error
    error_ = std::string(what);
    error_ += " at position ";
    error_ += std::to_string(pos_);
  }

  static std::unique_ptr<RegexNode> Wrap(RegexNode::Kind kind,
                                         std::unique_ptr<RegexNode> child) {
    auto node = std::make_unique<RegexNode>();
    node->kind = kind;
    node->children.push_back(std::move(child));
    return node;
  }

  // Collapses a one-element child list to the child itself so "((a))"
  // and "a|b" (each branch) yield minimal trees.
  static std::unique_ptr<RegexNode> Collapse(
      RegexNode::Kind kind, std::vector<std::unique_ptr<RegexNode>> parts) {
    if (parts.size() == 1) return std::move(parts.front());
    auto node = std::make_unique<RegexNode>();
    node->kind = kind;
    node->children = std::move(parts);
    return node;
  }

  // alternation := concat ('|' concat)*
  std::unique_ptr<RegexNode> ParseAlternation() {
    std::vector<std::unique_ptr<RegexNode>> branches;
    do {
      std::unique_ptr<RegexNode> branch = ParseConcat();
      if (branch == nullptr) return nullptr;
      branches.push_back(std::move(branch));
    } while (Consume('|'));
    return Collapse(RegexNode::Kind::kAlternation, std::move(branches));
  }

  bool Consume(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }

  // concat := repeat+ (juxtaposition; stops at '|', ')' or end)
  std::unique_ptr<RegexNode> ParseConcat() {
    std::vector<std::unique_ptr<RegexNode>> parts;
    while (true) {
      char c = Peek();
      if (c == '\0' || c == '|' || c == ')') break;
      std::unique_ptr<RegexNode> part = ParseRepeat();
      if (part == nullptr) return nullptr;
      parts.push_back(std::move(part));
    }
    if (parts.empty()) {
      Fail("empty expression");
      return nullptr;
    }
    return Collapse(RegexNode::Kind::kConcat, std::move(parts));
  }

  // repeat := atom ('*' | '+' | '?')*  (postfix operators stack)
  std::unique_ptr<RegexNode> ParseRepeat() {
    std::unique_ptr<RegexNode> node = ParseAtom();
    int stacked = 0;
    while (node != nullptr) {
      char c = Peek();
      if (c == '*')
        node = Wrap(RegexNode::Kind::kStar, std::move(node));
      else if (c == '+')
        node = Wrap(RegexNode::Kind::kPlus, std::move(node));
      else if (c == '?')
        node = Wrap(RegexNode::Kind::kOptional, std::move(node));
      else
        break;
      if (++stacked > kMaxPostfixStack) {
        Fail("repetition operators stacked too deep");
        return nullptr;
      }
      ++pos_;
    }
    return node;
  }

  // atom := LABEL | '(' alternation ')'
  std::unique_ptr<RegexNode> ParseAtom() {
    char c = Peek();
    if (c == '(') {
      if (++group_depth_ > kMaxGroupDepth) {
        Fail("groups nested too deep");
        return nullptr;
      }
      ++pos_;
      std::unique_ptr<RegexNode> inner = ParseAlternation();
      if (inner == nullptr) return nullptr;
      if (!Consume(')')) {
        Fail("expected ')'");
        return nullptr;
      }
      --group_depth_;
      return inner;
    }
    if (!IsAtomChar(c)) {
      Fail(c == '\0' ? std::string_view("unexpected end of input")
           : c == '*' || c == '+' || c == '?'
               ? std::string_view("repetition operator with no operand")
               : std::string_view("unexpected character"));
      return nullptr;
    }
    size_t start = pos_;
    while (pos_ < in_.size() && IsAtomChar(in_[pos_])) ++pos_;
    auto node = std::make_unique<RegexNode>();
    node->kind = RegexNode::Kind::kAtom;
    node->label = std::string(in_.substr(start, pos_ - start));
    return node;
  }

  std::string_view in_;
  size_t pos_ = 0;
  int group_depth_ = 0;
  std::string error_;
};

}  // namespace regex_detail

/// Parses \p pattern into a RegexNode AST. Never throws; syntax errors
/// are reported through the returned status-or.
inline RegexParseResult ParseRegex(std::string_view pattern) {
  return regex_detail::Parser(pattern).Parse();
}

}  // namespace dsw

#endif  // DSW_REGEX_REGEX_PARSER_H_
