// Regex-AST canonicalizer: rewrites a parsed RPQ into a normal form so
// that *textually different but equivalent* queries produce the same
// tree — the front half of the plan cache's key. Two queries whose
// canonical ASTs are equal compile (through the same front-end) to
// byte-identical automata, so they collide on one cached prepared
// structure instead of paying two O(|D| x |A|) preprocessing runs.
//
// The normal form applies the cheap, sound rewrites:
//
//  - associativity: nested concatenations and alternations are
//    flattened into their parent ("a (b c)" == "(a b) c" == "a b c");
//  - commutativity of |: alternands are sorted by their canonical
//    printed form ("b|a" == "a|b");
//  - idempotence of |: duplicate alternands are removed ("a|b|a" ==
//    "a|b"), and a one-element alternation collapses to its element;
//  - repetition-stack collapse: two stacked repetition operators reduce
//    to one. Same operator twice keeps it ((x*)* == x*, (x+)+ == x+,
//    (x?)? == x?); any *mixed* pair is x* — each mix accepts both the
//    empty word and every positive iteration ((x+)? == (x?)+ == (x*)?
//    == ... == x*). Canonical trees therefore never stack repetitions.
//
// The grammar has no epsilon/empty-set literals (regex_parser.h rejects
// empty branches), so the classic eps/emptyset identities (eps . x = x,
// emptyset | x = x, ...) have no source-level representation to
// collapse — flattening plus the rules above is the complete identity
// set for this AST. The normalizer is sound (every rewrite preserves
// the accepted language) but deliberately not complete: distributivity,
// (x|y)* vs (x* y*)* and friends are semantic equivalences a structural
// cache key does not chase — a miss there costs one redundant build,
// never a wrong answer.
//
// CanonicalPattern prints the canonical tree fully parenthesized; the
// output reparses to the same tree, which the tests use to round-trip.

#ifndef DSW_REGEX_CANONICAL_H_
#define DSW_REGEX_CANONICAL_H_

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "regex/regex_parser.h"

namespace dsw {

/// Canonical fully-parenthesized rendering of \p node: atoms bare,
/// concatenations "(a b)", alternations "(a|b)", repetitions postfix on
/// the printed child. Reparses to an equal tree; equal strings <=>
/// equal trees, so this doubles as the child sort/dedup key.
inline std::string CanonicalPattern(const RegexNode& node) {
  switch (node.kind) {
    case RegexNode::Kind::kAtom:
      return node.label;
    case RegexNode::Kind::kConcat:
    case RegexNode::Kind::kAlternation: {
      const char sep = node.kind == RegexNode::Kind::kConcat ? ' ' : '|';
      std::string out = "(";
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (i > 0) out += sep;
        out += CanonicalPattern(*node.children[i]);
      }
      out += ')';
      return out;
    }
    case RegexNode::Kind::kStar:
      return CanonicalPattern(*node.children.front()) + "*";
    case RegexNode::Kind::kPlus:
      return CanonicalPattern(*node.children.front()) + "+";
    case RegexNode::Kind::kOptional:
      return CanonicalPattern(*node.children.front()) + "?";
  }
  return {};  // unreachable; silences -Wreturn-type
}

namespace canonical_detail {

inline bool IsRepetition(RegexNode::Kind k) {
  return k == RegexNode::Kind::kStar || k == RegexNode::Kind::kPlus ||
         k == RegexNode::Kind::kOptional;
}

inline std::unique_ptr<RegexNode> Make(
    RegexNode::Kind kind, std::vector<std::unique_ptr<RegexNode>> children) {
  auto node = std::make_unique<RegexNode>();
  node->kind = kind;
  node->children = std::move(children);
  return node;
}

inline std::unique_ptr<RegexNode> Canonicalize(const RegexNode& node) {
  switch (node.kind) {
    case RegexNode::Kind::kAtom: {
      auto atom = std::make_unique<RegexNode>();
      atom->kind = RegexNode::Kind::kAtom;
      atom->label = node.label;
      return atom;
    }
    case RegexNode::Kind::kConcat: {
      // Canonicalize children, splicing nested concatenations in place
      // (associativity). Canonical children are never concatenations
      // themselves, so one level of splicing flattens completely.
      std::vector<std::unique_ptr<RegexNode>> parts;
      for (const auto& child : node.children) {
        std::unique_ptr<RegexNode> c = Canonicalize(*child);
        if (c->kind == RegexNode::Kind::kConcat) {
          for (auto& grand : c->children) parts.push_back(std::move(grand));
        } else {
          parts.push_back(std::move(c));
        }
      }
      if (parts.size() == 1) return std::move(parts.front());
      return Make(RegexNode::Kind::kConcat, std::move(parts));
    }
    case RegexNode::Kind::kAlternation: {
      // Flatten (associativity), then sort by canonical form
      // (commutativity) and drop duplicates (idempotence).
      std::vector<std::unique_ptr<RegexNode>> branches;
      for (const auto& child : node.children) {
        std::unique_ptr<RegexNode> c = Canonicalize(*child);
        if (c->kind == RegexNode::Kind::kAlternation) {
          for (auto& grand : c->children)
            branches.push_back(std::move(grand));
        } else {
          branches.push_back(std::move(c));
        }
      }
      std::vector<std::pair<std::string, std::unique_ptr<RegexNode>>> keyed;
      keyed.reserve(branches.size());
      for (auto& b : branches)
        keyed.emplace_back(CanonicalPattern(*b), std::move(b));
      std::sort(keyed.begin(), keyed.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      std::vector<std::unique_ptr<RegexNode>> unique;
      for (auto& [key, b] : keyed)
        if (unique.empty() || key != CanonicalPattern(*unique.back()))
          unique.push_back(std::move(b));
      if (unique.size() == 1) return std::move(unique.front());
      return Make(RegexNode::Kind::kAlternation, std::move(unique));
    }
    case RegexNode::Kind::kStar:
    case RegexNode::Kind::kPlus:
    case RegexNode::Kind::kOptional: {
      std::unique_ptr<RegexNode> c = Canonicalize(*node.children.front());
      if (IsRepetition(c->kind)) {
        // Collapse the stack: same operator keeps it, mixed pairs are
        // star (see the header comment). The canonical child c never
        // stacks repetitions itself, so the result doesn't either.
        RegexNode::Kind combined =
            c->kind == node.kind ? node.kind : RegexNode::Kind::kStar;
        if (combined == c->kind) return c;  // (x*)? == x*: reuse the child
        c->kind = combined;
        return c;
      }
      std::vector<std::unique_ptr<RegexNode>> child;
      child.push_back(std::move(c));
      return Make(node.kind, std::move(child));
    }
  }
  return nullptr;  // unreachable; silences -Wreturn-type
}

}  // namespace canonical_detail

/// Returns the canonical form of \p node as a fresh tree (the input is
/// not modified). Equivalent-by-the-identities inputs yield structurally
/// equal outputs; CanonicalPattern on the result is the string form of
/// the same key.
inline std::unique_ptr<RegexNode> CanonicalizeRegex(const RegexNode& node) {
  return canonical_detail::Canonicalize(node);
}

}  // namespace dsw

#endif  // DSW_REGEX_CANONICAL_H_
