// Kernel policies behind the execution-tier layer (core/query_traits.h).
//
// Every hot loop of the pipeline — the product-BFS frontier move in
// core/annotate.cc, the trim reverse sweep in core/trimmed_index.cc, the
// enumerators' AdvanceStates and the certificate's NextLive — is
// word-width generic: it iterates ceil(|Q|/64) words per state set. For
// |Q| <= 64 (the common RPQ case) that loop runs exactly once, and the
// loop control, pointer arithmetic and unknown trip count cost more than
// the single OR/AND they guard. The policies here let each hot function
// be written once, templated over a kernel, and instantiated twice:
//
//  - MultiWordKernel carries the runtime word count; its instantiation
//    is the exact loop structure the pipeline always had, so the general
//    tier is bit-identical to the pre-tier code by construction.
//  - SingleWordKernel's wps() is a compile-time 1: after inlining, every
//    loop below folds to one scalar uint64_t operation — the
//    "one-uint64_t kernels" of the single-word tier.
//
// Dispatch happens at the entry points (Annotate, trim_detail::
// TrimVertex, enumerator_detail::AdvanceStates, BList::NextLive) on
// words-per-set == 1; callers never name a kernel. Tests and benches
// force the multi-word instantiation onto one-word queries
// (AnnotateOptions::force_multi_word, the enumerators' trailing ctor
// flag) to assert bit-identity and to measure the kernel win in
// isolation.

#ifndef DSW_UTIL_WORD_KERNEL_H_
#define DSW_UTIL_WORD_KERNEL_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>

namespace dsw {

/// Shared op vocabulary over raw word arrays of Derived::wps() words.
/// CRTP instead of a virtual interface: the whole point is that the
/// compiler sees the trip count (a constant 1 for SingleWordKernel) and
/// erases the loops.
template <typename Derived>
struct WordKernelOps {
  uint32_t W() const { return static_cast<const Derived&>(*this).wps(); }

  void Zero(uint64_t* dst) const {
    for (uint32_t w = 0; w < W(); ++w) dst[w] = 0;
  }

  void Or(uint64_t* dst, const uint64_t* src) const {
    for (uint32_t w = 0; w < W(); ++w) dst[w] |= src[w];
  }

  void And(uint64_t* dst, const uint64_t* src) const {
    for (uint32_t w = 0; w < W(); ++w) dst[w] &= src[w];
  }

  bool Any(const uint64_t* a) const {
    uint64_t acc = 0;
    for (uint32_t w = 0; w < W(); ++w) acc |= a[w];
    return acc != 0;
  }

  bool Equal(const uint64_t* a, const uint64_t* b) const {
    for (uint32_t w = 0; w < W(); ++w)
      if (a[w] != b[w]) return false;
    return true;
  }

  /// add = src & ~seen, word by word; returns the OR of add (nonzero iff
  /// any genuinely new bit). The product BFS's per-edge relax step.
  uint64_t NewBits(uint64_t* add, const uint64_t* src,
                   const uint64_t* seen) const {
    uint64_t any = 0;
    for (uint32_t w = 0; w < W(); ++w) {
      add[w] = src[w] & ~seen[w];
      any |= add[w];
    }
    return any;
  }

  /// a |= add and b |= add in one pass — committing new bits to the seen
  /// matrix and the next-frontier accumulator together.
  void CommitInto(uint64_t* a, uint64_t* b, const uint64_t* add) const {
    for (uint32_t w = 0; w < W(); ++w) {
      a[w] |= add[w];
      b[w] |= add[w];
    }
  }

  /// fn(bit index) for every set bit of \p a, ascending.
  template <typename Fn>
  void ForEachBit(const uint64_t* a, Fn&& fn) const {
    for (uint32_t wi = 0; wi < W(); ++wi) {
      uint64_t w = a[wi];
      while (w) {
        fn(static_cast<uint32_t>(wi * 64 +
                                 static_cast<uint32_t>(std::countr_zero(w))));
        w &= w - 1;
      }
    }
  }

  /// fn(bit index) for every set bit of a & b, ascending, without
  /// materializing the intersection.
  template <typename Fn>
  void ForEachAnd(const uint64_t* a, const uint64_t* b, Fn&& fn) const {
    for (uint32_t wi = 0; wi < W(); ++wi) {
      uint64_t w = a[wi] & b[wi];
      while (w) {
        fn(static_cast<uint32_t>(wi * 64 +
                                 static_cast<uint32_t>(std::countr_zero(w))));
        w &= w - 1;
      }
    }
  }
};

/// General tier: runtime word count, arbitrary |Q|.
struct MultiWordKernel : WordKernelOps<MultiWordKernel> {
  explicit MultiWordKernel(uint32_t wps) : wps_(wps) {}
  uint32_t wps() const { return wps_; }
  uint32_t wps_;
};

/// Single-word tier (|Q| <= 64): the trip count is a compile-time 1, so
/// every WordKernelOps loop disappears after inlining.
struct SingleWordKernel : WordKernelOps<SingleWordKernel> {
  explicit SingleWordKernel(uint32_t wps = 1) {
    assert(wps == 1 && "SingleWordKernel requires |Q| <= 64");
    (void)wps;
  }
  static constexpr uint32_t wps() { return 1; }
};

}  // namespace dsw

#endif  // DSW_UTIL_WORD_KERNEL_H_
