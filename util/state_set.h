// Dynamic bitset over automaton states. Product-BFS annotation, trimming
// and enumeration all manipulate sets of NFA states; |Q| is small (tens
// to a few hundred) so a flat word array beats std::set/unordered_set by
// a wide margin and gives O(|Q|/64) unions and intersections.

#ifndef DSW_UTIL_STATE_SET_H_
#define DSW_UTIL_STATE_SET_H_

#include <bit>
#include <cstdint>
#include <vector>

namespace dsw {

class StateSet {
 public:
  StateSet() = default;
  explicit StateSet(uint32_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  uint32_t capacity() const { return num_bits_; }

  void Resize(uint32_t num_bits) {
    words_.resize((num_bits + 63) / 64, 0);
    if (num_bits < num_bits_) {  // clear stale bits above the new size
      uint32_t tail = num_bits & 63;
      if (!words_.empty() && tail != 0)
        words_.back() &= (uint64_t{1} << tail) - 1;
    }
    num_bits_ = num_bits;
  }

  void Set(uint32_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(uint32_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  bool Test(uint32_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  bool Any() const {
    for (uint64_t w : words_)
      if (w) return true;
    return false;
  }
  bool None() const { return !Any(); }

  uint32_t Count() const {
    uint32_t n = 0;
    for (uint64_t w : words_) n += static_cast<uint32_t>(std::popcount(w));
    return n;
  }

  void ZeroAll() {
    for (uint64_t& w : words_) w = 0;
  }

  StateSet& operator|=(const StateSet& o) {
    if (o.num_bits_ > num_bits_) Resize(o.num_bits_);
    for (size_t i = 0; i < o.words_.size(); ++i) words_[i] |= o.words_[i];
    return *this;
  }

  StateSet& operator&=(const StateSet& o) {
    for (size_t i = 0; i < words_.size(); ++i)
      words_[i] &= i < o.words_.size() ? o.words_[i] : 0;
    return *this;
  }

  bool Intersects(const StateSet& o) const {
    size_t n = words_.size() < o.words_.size() ? words_.size() : o.words_.size();
    for (size_t i = 0; i < n; ++i)
      if (words_[i] & o.words_[i]) return true;
    return false;
  }

  /// Calls \p fn(state) for every set bit, in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w) {
        uint32_t bit = static_cast<uint32_t>(std::countr_zero(w));
        fn(static_cast<uint32_t>(wi * 64 + bit));
        w &= w - 1;
      }
    }
  }

  friend bool operator==(const StateSet& a, const StateSet& b) {
    size_t n = a.words_.size() > b.words_.size() ? a.words_.size()
                                                 : b.words_.size();
    for (size_t i = 0; i < n; ++i) {
      uint64_t wa = i < a.words_.size() ? a.words_[i] : 0;
      uint64_t wb = i < b.words_.size() ? b.words_[i] : 0;
      if (wa != wb) return false;
    }
    return true;
  }

 private:
  uint32_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace dsw

#endif  // DSW_UTIL_STATE_SET_H_
