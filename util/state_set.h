// Dynamic bitset over automaton states. Product-BFS annotation, trimming
// and enumeration all manipulate sets of NFA states; |Q| is small (tens
// to a few hundred) so a flat word array beats std::set/unordered_set by
// a wide margin and gives O(|Q|/64) unions and intersections.
//
// Two types: StateSet owns its words; StateSetView is a non-owning
// (words, num_bits) pair over word storage owned elsewhere — the
// annotation levels and the trimmed index store thousands of sets in
// contiguous pools and hand out views, so the hot paths never allocate
// or copy per set. A default-constructed view is "null" (tests false),
// which is the lookup-miss sentinel throughout the pipeline.

#ifndef DSW_UTIL_STATE_SET_H_
#define DSW_UTIL_STATE_SET_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace dsw {

namespace state_set_detail {

constexpr size_t WordsFor(uint32_t num_bits) { return (num_bits + 63) / 64; }

template <typename Fn>
void ForEachBit(const uint64_t* words, size_t num_words, Fn&& fn) {
  for (size_t wi = 0; wi < num_words; ++wi) {
    uint64_t w = words[wi];
    while (w) {
      uint32_t bit = static_cast<uint32_t>(std::countr_zero(w));
      fn(static_cast<uint32_t>(wi * 64 + bit));
      w &= w - 1;
    }
  }
}

}  // namespace state_set_detail

class StateSet;

/// Non-owning view of a bitset whose words live in someone else's pool.
/// Null (default-constructed) views test false; they stand for "no set
/// here" in level/index lookups.
class StateSetView {
 public:
  constexpr StateSetView() = default;
  constexpr StateSetView(const uint64_t* words, uint32_t num_bits)
      : words_(words), num_bits_(num_bits) {}

  explicit operator bool() const { return words_ != nullptr; }
  uint32_t capacity() const { return num_bits_; }
  const uint64_t* words() const { return words_; }
  size_t num_words() const { return state_set_detail::WordsFor(num_bits_); }

  bool Test(uint32_t i) const {
    // A null view is the lookup-miss sentinel: callers must branch on
    // the view (or its capacity) before probing bits. Dereferencing the
    // null words pointer is UB that usually reads as "bit not set" —
    // die loudly instead, like the index generation checks.
    assert(words_ != nullptr && "Test on a null StateSetView");
    assert(i < num_bits_ && "Test past the view's capacity");
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  bool Any() const {
    for (size_t i = 0; i < num_words(); ++i)
      if (words_[i]) return true;
    return false;
  }
  bool None() const { return !Any(); }

  uint32_t Count() const {
    uint32_t n = 0;
    for (size_t i = 0; i < num_words(); ++i)
      n += static_cast<uint32_t>(std::popcount(words_[i]));
    return n;
  }

  bool Intersects(StateSetView o) const {
    size_t n = num_words() < o.num_words() ? num_words() : o.num_words();
    for (size_t i = 0; i < n; ++i)
      if (words_[i] & o.words_[i]) return true;
    return false;
  }

  /// out = *this & o, word-parallel; out is resized to capacity().
  inline void IntersectInto(StateSetView o, StateSet* out) const;

  /// Calls \p fn(state) for every set bit, in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    // A null view happens to iterate zero words today, but calling
    // ForEach on one is a missed lookup-miss branch at the call site —
    // surface the misuse instead of masking it.
    assert(words_ != nullptr && "ForEach on a null StateSetView");
    state_set_detail::ForEachBit(words_, num_words(), fn);
  }

 private:
  const uint64_t* words_ = nullptr;
  uint32_t num_bits_ = 0;
};

class StateSet {
 public:
  StateSet() = default;
  explicit StateSet(uint32_t num_bits)
      : num_bits_(num_bits), words_(state_set_detail::WordsFor(num_bits), 0) {}

  uint32_t capacity() const { return num_bits_; }

  /// Raw word access for the word-parallel hot paths. Writers must keep
  /// bits above capacity() clear in the last word (Resize defensively
  /// re-clears the tail when growing, so stale dirt never resurfaces).
  const uint64_t* words() const { return words_.data(); }
  uint64_t* mutable_words() { return words_.data(); }
  size_t num_words() const { return words_.size(); }

  /// Implicit read-only view; lets every view-taking helper accept an
  /// owning set directly.
  operator StateSetView() const { return {words_.data(), num_bits_}; }
  StateSetView view() const { return {words_.data(), num_bits_}; }

  void Resize(uint32_t num_bits) {
    if (num_bits > num_bits_) {
      // Growing: bits in [num_bits_, 64 * num_words()) of the old last
      // word may be dirty (raw word writers), and would silently come
      // into range — clear them before they do.
      ClearTail();
      words_.resize(state_set_detail::WordsFor(num_bits), 0);
    } else if (num_bits < num_bits_) {
      words_.resize(state_set_detail::WordsFor(num_bits), 0);
      num_bits_ = num_bits;
      ClearTail();  // clear stale bits above the new size
      return;
    }
    num_bits_ = num_bits;
  }

  /// *this = o (capacity and bits).
  void Assign(StateSetView o) {
    num_bits_ = o.capacity();
    words_.assign(o.words(), o.words() + o.num_words());
  }

  void Set(uint32_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Clear(uint32_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  bool Test(uint32_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  bool Any() const {
    for (uint64_t w : words_)
      if (w) return true;
    return false;
  }
  bool None() const { return !Any(); }

  uint32_t Count() const {
    uint32_t n = 0;
    for (uint64_t w : words_) n += static_cast<uint32_t>(std::popcount(w));
    return n;
  }

  void ZeroAll() {
    for (uint64_t& w : words_) w = 0;
  }

  /// *this |= o, growing capacity if needed; returns true iff any bit
  /// was newly set — the fixed-point loops (closure saturation,
  /// backward sweeps) key on the changed-flag instead of re-comparing.
  bool UnionWith(StateSetView o) {
    if (o.capacity() > num_bits_) Resize(o.capacity());
    return UnionWithWords(o.words(), o.num_words());
  }

  /// Word-parallel OR of \p n raw words (n <= num_words()); returns
  /// true iff any bit changed.
  bool UnionWithWords(const uint64_t* w, size_t n) {
    uint64_t changed = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t add = w[i] & ~words_[i];
      changed |= add;
      words_[i] |= add;
    }
    return changed != 0;
  }

  /// out = *this & o, word-parallel; out is resized to capacity().
  void IntersectInto(StateSetView o, StateSet* out) const {
    view().IntersectInto(o, out);
  }

  StateSet& operator|=(const StateSet& o) {
    UnionWith(o.view());
    return *this;
  }

  StateSet& operator&=(StateSetView o) {
    for (size_t i = 0; i < words_.size(); ++i)
      words_[i] &= i < o.num_words() ? o.words()[i] : 0;
    return *this;
  }
  StateSet& operator&=(const StateSet& o) { return *this &= o.view(); }

  bool Intersects(StateSetView o) const { return view().Intersects(o); }

  /// Calls \p fn(state) for every set bit, in increasing order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    state_set_detail::ForEachBit(words_.data(), words_.size(), fn);
  }

  friend bool operator==(const StateSet& a, const StateSet& b) {
    size_t n = a.words_.size() > b.words_.size() ? a.words_.size()
                                                 : b.words_.size();
    for (size_t i = 0; i < n; ++i) {
      uint64_t wa = i < a.words_.size() ? a.words_[i] : 0;
      uint64_t wb = i < b.words_.size() ? b.words_[i] : 0;
      if (wa != wb) return false;
    }
    return true;
  }

 private:
  void ClearTail() {
    uint32_t tail = num_bits_ & 63;
    if (!words_.empty() && tail != 0)
      words_.back() &= (uint64_t{1} << tail) - 1;
  }

  uint32_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

inline void StateSetView::IntersectInto(StateSetView o, StateSet* out) const {
  out->Resize(num_bits_);
  uint64_t* ow = out->mutable_words();
  size_t n = num_words() < o.num_words() ? num_words() : o.num_words();
  for (size_t i = 0; i < n; ++i) ow[i] = words_[i] & o.words()[i];
  for (size_t i = n; i < out->num_words(); ++i) ow[i] = 0;
}

/// Calls \p fn(i) for every bit set in a & mask, in increasing order,
/// without materializing the intersection — the hot paths use it to walk
/// "frontier states that actually have a transition on this label".
template <typename Fn>
void ForEachAnd(StateSetView a, StateSetView mask, Fn&& fn) {
  size_t n = a.num_words() < mask.num_words() ? a.num_words()
                                              : mask.num_words();
  for (size_t wi = 0; wi < n; ++wi) {
    uint64_t w = a.words()[wi] & mask.words()[wi];
    while (w) {
      uint32_t bit = static_cast<uint32_t>(std::countr_zero(w));
      fn(static_cast<uint32_t>(wi * 64 + bit));
      w &= w - 1;
    }
  }
}

}  // namespace dsw

#endif  // DSW_UTIL_STATE_SET_H_
