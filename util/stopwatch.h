// Minimal steady-clock stopwatch used for delay measurements (the gap
// between consecutive enumerator outputs, the quantity bounded by
// Theorem 2 of the paper).

#ifndef DSW_UTIL_STOPWATCH_H_
#define DSW_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace dsw {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  int64_t ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dsw

#endif  // DSW_UTIL_STOPWATCH_H_
