// Stage 1 of the pipeline: BFS over the product D x A from
// (source, initial states), recording for every level i <= lambda the set
// of states q such that (v, q) is at BFS distance exactly i. lambda is
// the length of the shortest walk from source to target whose label word
// the query accepts (-1 when none exists).
//
// Key property used downstream (trimming and enumeration): for any
// *shortest* answer walk v_0 ... v_lambda and any accepting run
// q_0 ... q_lambda over it, the BFS distance of (v_i, q_i) is exactly i —
// a smaller distance would splice into a shorter accepting walk. So the
// per-level annotation captures every run of every answer, and each
// product pair lives on exactly one level.
//
// Cost: O(|D| x |A|) — each product edge (e, t) with e in E and t in
// Delta is relaxed at most once.
//
// The annotation also snapshots the query's transition table and final
// states so the later stages (TrimmedIndex, enumerators, whose
// bench-fixed constructors do not receive the Nfa) need no reference
// back to it.

#ifndef DSW_CORE_ANNOTATE_H_
#define DSW_CORE_ANNOTATE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/database.h"
#include "core/nfa.h"
#include "util/state_set.h"

namespace dsw {

struct Annotation {
  /// Length of the shortest accepting walk; -1 if target is unreachable
  /// under the query.
  int32_t lambda = -1;
  uint32_t num_states = 0;
  uint32_t source = 0;
  uint32_t target = 0;

  /// levels[i]: vertex -> states q with BFS distance of (v, q) exactly i.
  /// Populated for i in [0, lambda] when reachable() is true.
  std::vector<std::unordered_map<uint32_t, StateSet>> levels;

  /// Snapshot of the query, for the Nfa-free downstream stages.
  std::vector<Nfa::TransitionList> transitions;
  StateSet final_states;

  bool reachable() const { return lambda >= 0; }

  /// States annotated at (level, v), or nullptr if none.
  const StateSet* StatesAt(uint32_t level, uint32_t v) const {
    if (level >= levels.size()) return nullptr;
    auto it = levels[level].find(v);
    return it == levels[level].end() ? nullptr : &it->second;
  }
};

Annotation Annotate(const Database& db, const Nfa& query, uint32_t source,
                    uint32_t target);

}  // namespace dsw

#endif  // DSW_CORE_ANNOTATE_H_
