// Stage 1 of the pipeline: BFS over the product D x A from
// (source, initial states), recording for every level i <= lambda the set
// of states q such that (v, q) is at BFS distance exactly i. lambda is
// the length of the shortest walk from source to target whose label word
// the query accepts (-1 when none exists).
//
// Key property used downstream (trimming and enumeration): for any
// *shortest* answer walk v_0 ... v_lambda and any accepting run
// q_0 ... q_lambda over it, the BFS distance of (v_i, q_i) is exactly i —
// a smaller distance would splice into a shorter accepting walk. So the
// per-level annotation captures every run of every answer, and each
// product pair lives on exactly one level.
//
// Cost: O(|D| x |A|) — each product edge (e, t) with e in E and t in
// Delta is relaxed at most once.
//
// Epsilon-NFAs (Section 5.1, the Thompson front-end) are handled "for
// free": every per-vertex state set the BFS produces is saturated with
// epsilon-closures before it becomes a level, and each (v, q) pair is
// still marked at most once, so the extra cost is bounded by the number
// of epsilon-transitions. Downstream, levels being closure-saturated
// means a labeled transition out of *any* member covers the "epsilon
// before the edge" half of an effective step; the "epsilon after" half
// is composed into the trimmed moves by TrimmedIndex using the
// eps_closure snapshot below, so TrimmedEnumerator's state-set
// propagation needs no change at all.
//
// The annotation also snapshots the query's transition table, final
// states, and per-state epsilon-closures so the later stages
// (TrimmedIndex, enumerators, whose bench-fixed constructors do not
// receive the Nfa) need no reference back to it.

#ifndef DSW_CORE_ANNOTATE_H_
#define DSW_CORE_ANNOTATE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/database.h"
#include "core/nfa.h"
#include "util/state_set.h"

namespace dsw {

struct Annotation {
  /// Length of the shortest accepting walk; -1 if target is unreachable
  /// under the query.
  int32_t lambda = -1;
  uint32_t num_states = 0;
  uint32_t source = 0;
  uint32_t target = 0;

  /// levels[i]: vertex -> states q with BFS distance of (v, q) exactly i.
  /// Populated for i in [0, lambda] when reachable() is true.
  std::vector<std::unordered_map<uint32_t, StateSet>> levels;

  /// Snapshot of the query, for the Nfa-free downstream stages.
  std::vector<Nfa::TransitionList> transitions;
  StateSet final_states;

  /// Per-state epsilon-closures (each contains the state itself); empty
  /// when the query is epsilon-free, in which case closure(q) = {q}.
  std::vector<StateSet> eps_closure;

  bool reachable() const { return lambda >= 0; }
  bool has_epsilon() const { return !eps_closure.empty(); }

  /// True iff q alone accepts, i.e. reaches a final state by epsilon
  /// moves only (q itself included).
  bool AcceptsAt(uint32_t q) const {
    return has_epsilon() ? eps_closure[q].Intersects(final_states)
                         : final_states.Test(q);
  }

  /// Calls \p fn for every state reachable from \p q by one *effective*
  /// labeled step eps* . label . eps*. May repeat a state when distinct
  /// epsilon-paths converge; callers needing distinctness dedup with a
  /// scratch StateSet. Used by the naive baseline; the trimmed pipeline
  /// composes closures once, at TrimmedIndex build time.
  template <typename Fn>
  void ForEachEffectiveStep(uint32_t q, uint32_t label, Fn&& fn) const {
    auto scan = [&](uint32_t q1) {
      for (const auto& [l, to] : transitions[q1]) {
        if (l != label) continue;
        if (has_epsilon())
          eps_closure[to].ForEach(fn);
        else
          fn(to);
      }
    };
    if (has_epsilon())
      eps_closure[q].ForEach(scan);
    else
      scan(q);
  }

  /// States annotated at (level, v), or nullptr if none.
  const StateSet* StatesAt(uint32_t level, uint32_t v) const {
    if (level >= levels.size()) return nullptr;
    auto it = levels[level].find(v);
    return it == levels[level].end() ? nullptr : &it->second;
  }
};

Annotation Annotate(const Database& db, const Nfa& query, uint32_t source,
                    uint32_t target);

}  // namespace dsw

#endif  // DSW_CORE_ANNOTATE_H_
