// Stage 1 of the pipeline: BFS over the product D x A from
// (source, initial states), recording for every level i <= lambda the set
// of states q such that (v, q) is at BFS distance exactly i. lambda is
// the length of the shortest walk from source to target whose label word
// the query accepts (-1 when none exists).
//
// Key property used downstream (trimming and enumeration): for any
// *shortest* answer walk v_0 ... v_lambda and any accepting run
// q_0 ... q_lambda over it, the BFS distance of (v_i, q_i) is exactly i —
// a smaller distance would splice into a shorter accepting walk. So the
// per-level annotation captures every run of every answer, and each
// product pair lives on exactly one level.
//
// Cost: O(|D| x |A|) — each product edge (e, t) with e in E and t in
// Delta is relaxed at most once. The hot path is label-stratified: the
// BFS walks the database's CSR LabelIndex ("distinct labels out of v",
// then "edges of v with label l") and, once per (vertex, label), moves
// the whole frontier state set with a word-parallel OR of precompiled
// CompiledDelta rows — shared across every edge of the group. Levels are
// flat sorted-vertex arrays with contiguous word storage (LevelSets);
// the only per-level hash-free scratch is a dense slot table plus a
// touched list.
//
// Epsilon-NFAs (Section 5.1, the Thompson front-end) are handled "for
// free": CompiledDelta composes the after-side epsilon-closure into
// every successor row, so a frontier moved through it stays
// closure-saturated by induction (the initial level is saturated
// explicitly), and each (v, q) pair is still marked at most once via the
// seen bitmap. Downstream, levels being closure-saturated means a
// labeled transition out of *any* member covers the "epsilon before the
// edge" half of an effective step; the "epsilon after" half is already
// inside the delta rows TrimmedIndex reuses, so TrimmedEnumerator's
// state-set propagation needs no change at all.
//
// The annotation also snapshots the compiled query (delta rows, final
// states, per-state epsilon-closures) so the later stages (TrimmedIndex,
// enumerators, whose bench-fixed constructors do not receive the Nfa)
// need no reference back to it.

#ifndef DSW_CORE_ANNOTATE_H_
#define DSW_CORE_ANNOTATE_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "core/level_sets.h"
#include "core/nfa.h"
#include "util/state_set.h"

namespace dsw {

/// Knobs of the preprocessing stages (annotate + trim). num_shards = 1
/// is the sequential path; > 1 partitions the vertices into that many
/// shards (clamped, see ShardPlan::ClampShards) and runs the product
/// BFS and the backward trim sweep Pregel-style — one thread per shard,
/// supersteps per BFS level, (dst-vertex, state-set-delta) word messages
/// over per-(src-shard, dst-shard) SPSC rings — producing results
/// bit-identical to the sequential path (core/sharded_annotate.h).
/// The engine's Prepare() forwards these, so sharding is opt-in per
/// query.
struct AnnotateOptions {
  uint32_t num_shards = 1;
  /// Per-(src-shard, dst-shard) ring capacity in words; 0 picks the
  /// default (1 << 12). Tiny values are legal (the rings apply
  /// backpressure, they never drop) — the stress tests shrink this to
  /// force the full-ring path.
  size_t ring_capacity_words = 0;
  /// Test/bench knob for the execution-tier layer (util/word_kernel.h):
  /// when true, the sequential annotate and trim sweeps run the generic
  /// multi-word kernels even for one-word (|Q| <= 64) queries, instead
  /// of dispatching to the collapsed single-word kernels. Results are
  /// bit-identical either way (asserted by tests/exec_tier_test.cc);
  /// bench_fastpath uses the flag to measure the kernel win in
  /// isolation. No effect on the sharded path, which always runs the
  /// generic loops.
  bool force_multi_word = false;
};

struct Annotation {
  /// Length of the shortest accepting walk; -1 if target is unreachable
  /// under the query.
  int32_t lambda = -1;
  uint32_t num_states = 0;
  uint32_t source = 0;
  uint32_t target = 0;

  /// levels[i]: sorted vertices with the states q whose product pair
  /// (v, q) has BFS distance exactly i; contiguous word storage.
  /// Populated for i in [0, lambda] when reachable() is true.
  std::vector<LevelSets> levels;

  /// Snapshot of the query, for the Nfa-free downstream stages: the
  /// precompiled per-(label, state) successor rows (after-side
  /// epsilon-closure composed in) and the final states.
  CompiledDelta delta;
  StateSet final_states;

  /// Per-state epsilon-closures (each contains the state itself); empty
  /// when the query is epsilon-free, in which case closure(q) = {q}.
  std::vector<StateSet> eps_closure;

  bool reachable() const { return lambda >= 0; }
  bool has_epsilon() const { return !eps_closure.empty(); }
  uint32_t words_per_set() const { return (num_states + 63) / 64; }

  /// True iff q alone accepts, i.e. reaches a final state by epsilon
  /// moves only (q itself included).
  bool AcceptsAt(uint32_t q) const {
    return has_epsilon() ? eps_closure[q].Intersects(final_states)
                         : final_states.Test(q);
  }

  /// ORs into \p out every state reachable from \p q by one *effective*
  /// labeled step eps* . label . eps* (out is not cleared; capacity must
  /// be num_states). Used by the naive baseline; the trimmed pipeline
  /// reads the delta rows directly.
  void EffectiveSuccessorsInto(uint32_t q, uint32_t label,
                               StateSet* out) const {
    if (!delta.HasLabel(label)) return;
    uint32_t wps = words_per_set();
    if (!has_epsilon()) {
      out->UnionWithWords(delta.SuccessorWords(label, q), wps);
      return;
    }
    eps_closure[q].ForEach([&](uint32_t q1) {
      out->UnionWithWords(delta.SuccessorWords(label, q1), wps);
    });
  }

  /// States annotated at (level, v); null view if none.
  StateSetView StatesAt(uint32_t level, uint32_t v) const {
    return level < levels.size() ? levels[level].Find(v) : StateSetView();
  }

  /// Heap footprint estimate, for the plan cache's byte budget.
  size_t ApproxBytes() const {
    size_t bytes = sizeof(Annotation) + delta.ApproxBytes() +
                   final_states.num_words() * sizeof(uint64_t);
    for (const LevelSets& lvl : levels) bytes += lvl.ApproxBytes();
    for (const StateSet& c : eps_closure)
      bytes += sizeof(StateSet) + c.num_words() * sizeof(uint64_t);
    return bytes;
  }
};

/// Result of one block-replicated product BFS from a source *set*: the
/// multi-source prefix-sharing mode of the plan cache. Each source j
/// owns an independent "block" of |Q| states — block j occupies words
/// [j * block_words, (j + 1) * block_words) of every wide state set, so
/// the word-parallel frontier machinery runs all blocks at once while
/// the blocks never mix (delta rows are |Q|-bit, so a block's relax
/// writes stay inside its word-aligned slice). Per-block BFS therefore
/// evolves exactly as a per-source Annotate would, and Slice(j) peels
/// block j back out *bit-identically* — same levels, same sorted
/// vertices, same words (asserted against per-source runs in
/// tests/multi_source_annotate_test.cc).
///
/// A block is deactivated (no further relaxation) the moment its
/// (target, final) pair appears at a sealed level — mirroring the
/// per-source early return — so sources with small lambda stop paying
/// for sources with large lambda. Invalid (out-of-range) and exhausted
/// sources end with lambda = -1, exactly like Annotate.
struct MultiSourceAnnotation {
  uint32_t num_states = 0;
  uint32_t num_blocks = 0;   // == sources.size()
  uint32_t block_words = 0;  // ceil(num_states / 64)
  uint32_t target = 0;
  std::vector<uint32_t> sources;
  std::vector<int32_t> lambdas;  // per block; -1 = unreachable

  /// Wide levels: level i holds, for every touched vertex, the
  /// num_blocks * block_words * 64-bit concatenation of all blocks'
  /// state sets at distance exactly i (distance is per block).
  std::vector<LevelSets> wide_levels;

  // Query snapshot shared by every slice (see Annotation).
  CompiledDelta delta;
  StateSet final_states;
  std::vector<StateSet> eps_closure;

  /// Extracts source j's view as a standalone Annotation, bit-identical
  /// to Annotate(snap, query, sources[j], target). O(sum of wide level
  /// sizes) word copies plus one CompiledDelta copy.
  Annotation Slice(size_t j) const;

  /// Heap footprint estimate, for the plan cache's byte budget.
  size_t ApproxBytes() const {
    size_t bytes = sizeof(MultiSourceAnnotation) + delta.ApproxBytes() +
                   final_states.num_words() * sizeof(uint64_t) +
                   sources.capacity() * sizeof(uint32_t) +
                   lambdas.capacity() * sizeof(int32_t);
    for (const LevelSets& lvl : wide_levels) bytes += lvl.ApproxBytes();
    for (const StateSet& c : eps_closure)
      bytes += sizeof(StateSet) + c.num_words() * sizeof(uint64_t);
    return bytes;
  }
};

/// Runs one product BFS that annotates from every source in \p sources
/// at once (block-replicated; see MultiSourceAnnotation). Sequential —
/// the batch dimension already saturates the word-level parallelism
/// that sharding would otherwise chase, so \p opts' num_shards is
/// ignored here. Duplicate sources are legal (independent equal
/// blocks); invalid sources yield lambda = -1 slices.
MultiSourceAnnotation AnnotateMultiSource(const Snapshot& snap,
                                          const Nfa& query,
                                          const std::vector<uint32_t>& sources,
                                          uint32_t target,
                                          const AnnotateOptions& opts = {});

/// Runs the product BFS against a frozen snapshot. The snapshot carries
/// the label-stratified adjacency built at Freeze() time, so annotation
/// is a pure read — any number of Annotate calls can run concurrently
/// against one shared Snapshot (each sharded call spawns and joins its
/// own worker threads internally; the result is identical either way).
Annotation Annotate(const Snapshot& snap, const Nfa& query, uint32_t source,
                    uint32_t target, const AnnotateOptions& opts = {});

}  // namespace dsw

#endif  // DSW_CORE_ANNOTATE_H_
