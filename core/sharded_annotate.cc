#include "core/sharded_annotate.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/level_sets.h"
#include "core/shard_plan.h"
#include "util/state_set.h"

namespace dsw {
namespace {

constexpr uint32_t kNoSlot = UINT32_MAX;

/// Ring capacity when the caller does not pin one: 4096 words per
/// (src, dst) pair, shrinking quadratically once S * S rings would
/// otherwise dominate memory. The rings are flow control, not storage —
/// small capacities only cost extra drain calls.
size_t DefaultRingWords(uint32_t num_shards, uint32_t wps) {
  const size_t budget = (size_t{1} << 21) /
                        (static_cast<size_t>(num_shards) * num_shards);
  return std::max<size_t>(wps + 1, std::min<size_t>(size_t{1} << 12, budget));
}

/// Reusable N-thread rendezvous (mutex + condvar generation counter).
/// Deliberately not std::barrier: the semantics needed here are tiny,
/// and this version is portable across every toolchain/sanitizer combo
/// in the CI matrix.
class LevelBarrier {
 public:
  explicit LevelBarrier(uint32_t n) : n_(n) {}

  void ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t gen = gen_;
    if (++arrived_ == n_) {
      arrived_ = 0;
      ++gen_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return gen_ != gen; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const uint32_t n_;
  uint32_t arrived_ = 0;
  uint64_t gen_ = 0;
};

/// Runs fn(shard_id) on num_shards threads; the calling thread is
/// shard 0, so one sharded call spawns num_shards - 1 threads.
template <typename Fn>
void RunOnShards(uint32_t num_shards, Fn&& fn) {
  std::vector<std::thread> threads;
  threads.reserve(num_shards - 1);
  for (uint32_t s = 1; s < num_shards; ++s)
    threads.emplace_back([&fn, s] { fn(s); });
  fn(0);
  for (std::thread& t : threads) t.join();
}

// ---------------------------------------------------------------- BFS

/// Mutable state owned by one BFS shard. Mirrors the sequential
/// Annotate loop's locals, restricted to the shard's vertex range.
struct BfsShard {
  LevelSets frontier;            // sealed sub-frontier (owned vertices)
  std::vector<uint32_t> slot;    // dense, indexed by v - range begin
  std::vector<uint32_t> touched;
  std::vector<uint32_t> sorted;
  std::vector<uint64_t> slot_words;
  StateSet moved;
  std::vector<uint64_t> add_buf;  // new bits of one applied delta
  std::vector<uint64_t> msg_out;  // wps + 1 outgoing record scratch
  std::vector<uint64_t> msg_in;   // wps + 1 incoming record scratch
};

/// Everything the BFS workers share. The seen bitmap is atomic words:
/// each row has exactly one writer (the owning shard), but remote
/// shards read rows optimistically to filter dead messages, so the
/// accesses must be data-race-free. Relaxed ordering suffices — a stale
/// read only means an extra message, and the owner re-checks.
struct BfsContext {
  const LabelIndex& adj;
  const CompiledDelta& delta;
  const ShardPlan& plan;
  Annotation& ann;
  uint32_t num_shards;
  uint32_t wps;
  uint32_t target;

  std::unique_ptr<std::atomic<uint64_t>[]> seen;
  std::vector<BfsShard> shards;
  std::deque<WordRing> rings;  // [src * num_shards + dst]; deque: not movable
  std::vector<size_t> offsets;  // per-shard slice start of the level

  LevelBarrier barrier;
  std::atomic<uint32_t> scatter_done{0};
  bool stop = false;  // thread 0 writes between barriers

  BfsContext(const Snapshot& snap, Annotation& a, const ShardPlan& p,
             uint32_t target_v, size_t ring_words)
      : adj(snap.label_index()),
        delta(a.delta),
        plan(p),
        ann(a),
        num_shards(p.num_shards()),
        wps(a.words_per_set()),
        target(target_v),
        seen(new std::atomic<uint64_t>[static_cast<size_t>(
            snap.num_vertices()) * a.words_per_set()]()),
        shards(p.num_shards()),
        offsets(p.num_shards(), 0),
        barrier(p.num_shards()) {
    for (uint32_t i = 0; i < num_shards * num_shards; ++i)
      rings.emplace_back(ring_words, wps + 1);
    for (uint32_t s = 0; s < num_shards; ++s) {
      BfsShard& sh = shards[s];
      sh.frontier = LevelSets(ann.num_states);
      sh.slot.assign(plan.end(s) - plan.begin(s), kNoSlot);
      sh.moved = StateSet(ann.num_states);
      sh.add_buf.resize(wps);
      sh.msg_out.resize(wps + size_t{1});
      sh.msg_in.resize(wps + size_t{1});
    }
  }

  WordRing& Ring(uint32_t src, uint32_t dst) {
    return rings[static_cast<size_t>(src) * num_shards + dst];
  }

  /// Owner-side merge of a state-set delta into vertex \p dst: the
  /// sequential loop's seen-check + slot-accumulator update, on the
  /// owning shard's slice.
  void Apply(uint32_t s, uint32_t dst, const uint64_t* mw) {
    BfsShard& me = shards[s];
    std::atomic<uint64_t>* sw = &seen[static_cast<size_t>(dst) * wps];
    uint64_t any_new = 0;
    for (uint32_t w = 0; w < wps; ++w) {
      me.add_buf[w] = mw[w] & ~sw[w].load(std::memory_order_relaxed);
      any_new |= me.add_buf[w];
    }
    if (any_new == 0) return;  // every pair already leveled
    uint32_t ls = dst - plan.begin(s);
    uint32_t slot = me.slot[ls];
    if (slot == kNoSlot) {
      slot = static_cast<uint32_t>(me.touched.size());
      me.slot[ls] = slot;
      me.touched.push_back(dst);
      me.slot_words.resize(me.slot_words.size() + wps, 0);
    }
    uint64_t* nw = &me.slot_words[static_cast<size_t>(slot) * wps];
    for (uint32_t w = 0; w < wps; ++w) {
      if (me.add_buf[w] == 0) continue;
      sw[w].store(sw[w].load(std::memory_order_relaxed) | me.add_buf[w],
                  std::memory_order_relaxed);
      nw[w] |= me.add_buf[w];
    }
  }

  /// Pops and applies every record currently published to shard \p s;
  /// returns whether anything arrived.
  bool DrainInboxes(uint32_t s) {
    BfsShard& me = shards[s];
    bool got = false;
    for (uint32_t p = 0; p < num_shards; ++p) {
      if (p == s) continue;
      WordRing& ring = Ring(p, s);
      while (ring.TryPop(me.msg_in.data(), wps + size_t{1})) {
        got = true;
        Apply(s, static_cast<uint32_t>(me.msg_in[0]), me.msg_in.data() + 1);
      }
    }
    return got;
  }

  bool InboxesEmpty(uint32_t s) {
    for (uint32_t p = 0; p < num_shards; ++p)
      if (p != s && !Ring(p, s).Empty()) return false;
    return true;
  }

  /// Scatter phase: relax the shard's sub-frontier. Local destinations
  /// are applied directly; remote ones become ring records, after the
  /// optimistic seen filter. Full rings are drained-through, never
  /// waited on — that is the deadlock-freedom argument: a blocked
  /// producer is always also a consuming shard.
  void Relax(uint32_t s) {
    BfsShard& me = shards[s];
    const LevelSets& cur = me.frontier;
    for (size_t vi = 0; vi < cur.size(); ++vi) {
      const uint32_t v = cur.vertex(vi);
      const StateSetView states = cur.states(vi);
      for (const LabelIndex::Group& group : adj.GroupsOf(v)) {
        if (!delta.HasLabel(group.label)) continue;
        me.moved.ZeroAll();
        ForEachAnd(states, delta.Sources(group.label), [&](uint32_t q) {
          me.moved.UnionWithWords(delta.SuccessorWords(group.label, q), wps);
        });
        if (me.moved.None()) continue;
        const uint64_t* mw = me.moved.words();
        uint32_t last_dst = UINT32_MAX;
        for (const LabelIndex::Target& t : adj.Targets(group)) {
          if (t.dst == last_dst) continue;  // parallel edge: same record
          last_dst = t.dst;
          const uint32_t d = plan.owner(t.dst);
          if (d == s) {
            Apply(s, t.dst, mw);
            continue;
          }
          // Optimistic filter: skip the record when the owner's seen row
          // already covers it. Most BFS relaxations re-reach pairs, so
          // this kills most ring traffic; the owner's Apply re-checks
          // authoritatively either way.
          const std::atomic<uint64_t>* sw =
              &seen[static_cast<size_t>(t.dst) * wps];
          uint64_t any_new = 0;
          for (uint32_t w = 0; w < wps; ++w)
            any_new |= mw[w] & ~sw[w].load(std::memory_order_relaxed);
          if (any_new == 0) continue;
          me.msg_out[0] = t.dst;
          std::copy(mw, mw + wps, me.msg_out.data() + 1);
          WordRing& ring = Ring(s, d);
          while (!ring.TryPush(me.msg_out.data(), wps + size_t{1}))
            if (!DrainInboxes(s)) std::this_thread::yield();
        }
      }
    }
  }

  /// Seals the shard's accumulated next sub-frontier, sorted within its
  /// contiguous range — the same density heuristic as the sequential
  /// seal, over the shard's slice.
  void Seal(uint32_t s) {
    BfsShard& me = shards[s];
    me.frontier = LevelSets(ann.num_states);
    const uint32_t begin = plan.begin(s);
    const uint32_t range = plan.end(s) - begin;
    if (range > 0 && me.touched.size() >= range / 16) {
      for (uint32_t v = begin; v < plan.end(s); ++v) {
        const uint32_t slot = me.slot[v - begin];
        if (slot == kNoSlot) continue;
        me.frontier.Append(v,
                           &me.slot_words[static_cast<size_t>(slot) * wps]);
        me.slot[v - begin] = kNoSlot;
      }
    } else {
      me.sorted.assign(me.touched.begin(), me.touched.end());
      std::sort(me.sorted.begin(), me.sorted.end());
      for (uint32_t v : me.sorted)
        me.frontier.Append(
            v, &me.slot_words[static_cast<size_t>(me.slot[v - begin]) * wps]);
      for (uint32_t v : me.touched) me.slot[v - begin] = kNoSlot;
    }
    me.touched.clear();
    me.slot_words.clear();
  }

  /// One worker's whole life: the superstep loop. Control flow
  /// decisions (allocation sizes, termination, the lambda check) are
  /// taken by shard 0 between barriers and published to the others by
  /// the barrier itself.
  void WorkerLoop(uint32_t s) {
    while (true) {
      barrier.ArriveAndWait();  // previous round's seals are done
      if (s == 0) {
        size_t total = 0;
        for (uint32_t s2 = 0; s2 < num_shards; ++s2) {
          offsets[s2] = total;
          total += shards[s2].frontier.size();
        }
        if (total == 0) {
          stop = true;  // product exhausted without reaching the target
        } else {
          ann.levels.emplace_back(ann.num_states);
          ann.levels.back().ResizeForMerge(total);
        }
        scatter_done.store(0, std::memory_order_relaxed);
      }
      barrier.ArriveAndWait();  // sizes, slices and the level allocated
      if (stop) break;
      ann.levels.back().CopySliceFrom(shards[s].frontier, offsets[s]);
      barrier.ArriveAndWait();  // the level is fully merged
      if (s == 0) {
        const LevelSets& level = ann.levels.back();
        if (StateSetView at_target = level.Find(target);
            at_target && at_target.Intersects(ann.final_states)) {
          ann.lambda = static_cast<int32_t>(ann.levels.size() - 1);
          stop = true;
        }
      }
      barrier.ArriveAndWait();  // verdict published
      if (stop) break;

      Relax(s);
      scatter_done.fetch_add(1, std::memory_order_acq_rel);
      // Keep gathering until every shard has finished scattering AND
      // this shard's inboxes are drained. The acquire on scatter_done
      // orders it after every producer's final ring publish, so an
      // empty check after seeing num_shards is authoritative.
      while (true) {
        const bool got = DrainInboxes(s);
        if (scatter_done.load(std::memory_order_acquire) == num_shards) {
          if (!got && InboxesEmpty(s)) break;
        } else if (!got) {
          std::this_thread::yield();
        }
      }
      Seal(s);
    }
  }
};

}  // namespace

Annotation ShardedAnnotate(const Snapshot& snap, const Nfa& query,
                           uint32_t source, uint32_t target,
                           const AnnotateOptions& opts) {
  // Preamble identical to the sequential Annotate.
  Annotation ann;
  ann.num_states = query.num_states();
  ann.source = source;
  ann.target = target;
  ann.final_states = query.final_states();
  if (query.has_epsilon()) ann.eps_closure = query.EpsilonClosures();
  ann.delta = CompiledDelta(query, ann.eps_closure);  // closures shared

  if (source >= snap.num_vertices() || target >= snap.num_vertices() ||
      query.num_states() == 0 || query.initial().None())
    return ann;

  const uint32_t num_shards =
      ShardPlan::ClampShards(opts.num_shards, snap.num_vertices());
  assert(num_shards > 1 && "Annotate() routes num_shards <= 1 sequentially");
  ShardPlan plan(snap, num_shards);
  const uint32_t wps = ann.words_per_set();
  const size_t ring_words = opts.ring_capacity_words != 0
                                ? opts.ring_capacity_words
                                : DefaultRingWords(num_shards, wps);
  BfsContext ctx(snap, ann, plan, target, ring_words);

  // Level 0: closure-saturated initial states at the source, seeded
  // into the owning shard before the workers start (thread creation
  // publishes it to everyone).
  StateSet init = query.initial();
  if (ann.has_epsilon()) {
    StateSet saturated(ann.num_states);
    init.ForEach([&](uint32_t q) { saturated.UnionWith(ann.eps_closure[q]); });
    init = std::move(saturated);
  }
  for (uint32_t w = 0; w < wps; ++w)
    ctx.seen[static_cast<size_t>(source) * wps + w].store(
        init.words()[w], std::memory_order_relaxed);
  ctx.shards[plan.owner(source)].frontier.Append(source, init.words());

  RunOnShards(num_shards, [&ctx](uint32_t s) { ctx.WorkerLoop(s); });

  // Product exhausted without reaching (target, final): no answer.
  if (ann.lambda < 0) ann.levels.clear();
  return ann;
}

// --------------------------------------------------------------- trim

namespace {

/// Per-shard outputs of one trim superstep (one annotation level),
/// merged into the global TrimmedIndex at the level barrier.
struct TrimShard {
  explicit TrimShard(uint32_t num_states) : scratch(num_states) {}
  LevelSets useful;
  std::vector<std::pair<uint32_t, uint32_t>> ranges;  // local offsets
  std::vector<TrimmedIndex::CandidateEdge> pool;
  std::vector<size_t> boff;  // local offsets into nxt
  std::vector<uint32_t> nxt;
  trim_detail::Scratch scratch;
};

}  // namespace

void ShardedTrimBuild(TrimmedIndex& out, const Snapshot& snap,
                      const Annotation& ann, const AnnotateOptions& opts) {
  out.db_ = &snap.db();
  out.generation_ = snap.generation();
  assert(ann.reachable() && "caller dispatches unreachable sequentially");
  const uint32_t lambda = static_cast<uint32_t>(ann.lambda);
  out.wps_ = ann.words_per_set();
  out.useful_.assign(lambda + 1, LevelSets(ann.num_states));
  out.cand_ranges_.resize(lambda);
  out.blist_off_.resize(lambda);

  // Level lambda seed: only (target, final) pairs are useful — same as
  // the sequential constructor.
  if (StateSetView at_target = ann.StatesAt(lambda, ann.target)) {
    StateSet fin(ann.num_states);
    fin.Assign(at_target);
    fin &= ann.final_states;
    if (fin.Any()) out.useful_[lambda].Append(ann.target, fin.words());
  }

  if (lambda > 0 && !out.useful_[lambda].empty()) {
    const uint32_t num_shards =
        ShardPlan::ClampShards(opts.num_shards, snap.num_vertices());
    const ShardPlan plan(snap, num_shards);
    const LabelIndex& adj = snap.label_index();
    const CompiledDelta& delta = ann.delta;
    const uint32_t wps = out.wps_;

    std::vector<TrimShard> shards(num_shards, TrimShard(ann.num_states));
    // Per-level merge bases, computed by shard 0 between barriers.
    std::vector<size_t> vert_base(num_shards), cand_base(num_shards),
        nxt_base(num_shards);
    LevelBarrier barrier(num_shards);

    RunOnShards(num_shards, [&](uint32_t s) {
      for (uint32_t i = lambda; i-- > 0;) {
        const LevelSets& level = ann.levels[i];
        // The merged level i + 1 — immutable since its barrier, the
        // superstep's broadcast state.
        const LevelSets& next_useful = out.useful_[i + 1];
        TrimShard& me = shards[s];
        me.useful = LevelSets(ann.num_states);
        me.ranges.clear();
        me.pool.clear();
        me.boff.clear();
        me.nxt.clear();
        if (!next_useful.empty()) {
          // The shard's slice of the (sorted) level.
          const std::vector<uint32_t>& vs = level.vertices();
          const size_t lo =
              std::lower_bound(vs.begin(), vs.end(), plan.begin(s)) -
              vs.begin();
          const size_t hi =
              std::lower_bound(vs.begin(), vs.end(), plan.end(s)) -
              vs.begin();
          for (size_t vi = lo; vi < hi; ++vi) {
            const uint32_t cb = static_cast<uint32_t>(me.pool.size());
            const size_t bo = me.nxt.size();
            if (trim_detail::TrimVertex(adj, delta, wps, level.vertex(vi),
                                        level.states(vi), next_useful,
                                        &me.scratch, &me.pool, &me.nxt)) {
              me.useful.Append(level.vertex(vi),
                               me.scratch.useful_here.words());
              me.ranges.emplace_back(cb,
                                     static_cast<uint32_t>(me.pool.size()));
              me.boff.push_back(bo);
            }
          }
        }
        barrier.ArriveAndWait();  // all slices trimmed
        if (s == 0) {
          size_t vtot = 0;
          size_t ctot = out.cand_pool_.size();
          size_t ntot = out.nxt_pool_.size();
          for (uint32_t s2 = 0; s2 < num_shards; ++s2) {
            vert_base[s2] = vtot;
            cand_base[s2] = ctot;
            nxt_base[s2] = ntot;
            vtot += shards[s2].useful.size();
            ctot += shards[s2].pool.size();
            ntot += shards[s2].nxt.size();
          }
          out.useful_[i].ResizeForMerge(vtot);
          out.cand_pool_.resize(ctot);
          out.nxt_pool_.resize(ntot);
          out.cand_ranges_[i].resize(vtot);
          out.blist_off_[i].resize(vtot);
        }
        barrier.ArriveAndWait();  // global arrays sized
        out.useful_[i].CopySliceFrom(me.useful, vert_base[s]);
        std::copy(me.pool.begin(), me.pool.end(),
                  out.cand_pool_.begin() + cand_base[s]);
        std::copy(me.nxt.begin(), me.nxt.end(),
                  out.nxt_pool_.begin() + nxt_base[s]);
        for (size_t k = 0; k < me.ranges.size(); ++k) {
          out.cand_ranges_[i][vert_base[s] + k] = {
              static_cast<uint32_t>(me.ranges[k].first + cand_base[s]),
              static_cast<uint32_t>(me.ranges[k].second + cand_base[s])};
          out.blist_off_[i][vert_base[s] + k] = me.boff[k] + nxt_base[s];
        }
        barrier.ArriveAndWait();  // level i merged; level i - 1 may read
      }
    });
  }

  for (const LevelSets& level : out.useful_)
    for (size_t i = 0; i < level.size(); ++i)
      out.num_slots_ += level.states(i).Count();
}

}  // namespace dsw
