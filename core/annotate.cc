#include "core/annotate.h"

#include <algorithm>
#include <utility>

#include "core/shard_plan.h"
#include "core/sharded_annotate.h"
#include "util/word_kernel.h"

namespace dsw {
namespace {

constexpr uint32_t kNoSlot = UINT32_MAX;

// The sequential product BFS, templated over the word kernel (the
// execution-tier layer, util/word_kernel.h): MultiWordKernel is the
// pre-tier loop structure verbatim, SingleWordKernel collapses every
// per-set loop to one uint64_t op for |Q| <= 64. Fills ann->levels and
// ann->lambda; the caller has already seeded the metadata and rejected
// the trivial cases.
template <typename Kernel>
void ProductBfs(const Snapshot& snap, const Nfa& query, Kernel ker,
                Annotation* out) {
  Annotation& ann = *out;
  const uint32_t source = ann.source;
  const uint32_t target = ann.target;
  const LabelIndex& adj = snap.label_index();
  const CompiledDelta& delta = ann.delta;
  const uint32_t num_vertices = snap.num_vertices();
  const uint32_t wps = ker.wps();

  // seen: flat V x |Q| bit matrix of product pairs already assigned a
  // level. One zeroed calloc-style allocation; the BFS itself touches
  // only visited rows.
  std::vector<uint64_t> seen(static_cast<size_t>(num_vertices) * wps, 0);

  // Next-frontier accumulator: dense per-vertex slot table + touched
  // list, so building a level is O(touched) with no hashing. Sealing
  // sorts the touched vertices when they are sparse and linear-scans the
  // slot table when they are dense (>= 1/16 of V) — the scan is cheaper
  // than the sort's branchy compares at that density.
  std::vector<uint32_t> slot(num_vertices, kNoSlot);
  std::vector<uint32_t> touched;
  std::vector<uint32_t> sorted;
  std::vector<uint64_t> slot_words;

  // Level 0: closure-saturated initial states at the source. Later
  // levels stay saturated by induction — delta rows compose the
  // after-side closure, and a union of closed sets is closed.
  StateSet init = query.initial();
  if (ann.has_epsilon()) {
    StateSet saturated(ann.num_states);
    init.ForEach(
        [&](uint32_t q) { saturated.UnionWith(ann.eps_closure[q]); });
    init = std::move(saturated);
  }
  for (uint32_t w = 0; w < wps; ++w)
    seen[static_cast<size_t>(source) * wps + w] = init.words()[w];

  LevelSets frontier(ann.num_states);
  frontier.Append(source, init.words());

  StateSet moved(ann.num_states);
  std::vector<uint64_t> add_buf(wps);  // new bits of one relaxed edge

  while (!frontier.empty()) {
    ann.levels.push_back(std::move(frontier));
    const LevelSets& current = ann.levels.back();
    if (StateSetView at_target = current.Find(target);
        at_target && at_target.Intersects(ann.final_states)) {
      ann.lambda = static_cast<int32_t>(ann.levels.size() - 1);
      return;
    }

    touched.clear();
    slot_words.clear();
    for (size_t vi = 0; vi < current.size(); ++vi) {
      const uint32_t v = current.vertex(vi);
      const StateSetView states = current.states(vi);
      for (const LabelIndex::Group& group : adj.GroupsOf(v)) {
        if (!delta.HasLabel(group.label)) continue;
        // One move per (vertex, label), shared by every edge of the
        // group: word-parallel OR of the frontier's delta rows, visiting
        // only states that actually carry this label.
        uint64_t* mw = moved.mutable_words();
        ker.Zero(mw);
        ker.ForEachAnd(states.words(), delta.Sources(group.label).words(),
                       [&](uint32_t q) {
                         ker.Or(mw, delta.SuccessorWords(group.label, q));
                       });
        if (!ker.Any(mw)) continue;
        for (const LabelIndex::Target& t : adj.Targets(group)) {
          uint64_t* sw = &seen[static_cast<size_t>(t.dst) * wps];
          if (ker.NewBits(add_buf.data(), mw, sw) == 0)
            continue;  // every pair already leveled
          uint32_t s = slot[t.dst];
          if (s == kNoSlot) {
            s = static_cast<uint32_t>(touched.size());
            slot[t.dst] = s;
            touched.push_back(t.dst);
            slot_words.resize(slot_words.size() + wps, 0);
          }
          uint64_t* nw = &slot_words[static_cast<size_t>(s) * wps];
          ker.CommitInto(sw, nw, add_buf.data());
        }
      }
    }

    // Seal the next level: sorted vertices, contiguous words.
    frontier = LevelSets(ann.num_states);
    if (touched.size() >= num_vertices / 16) {
      for (uint32_t v = 0; v < num_vertices; ++v) {
        if (slot[v] == kNoSlot) continue;
        frontier.Append(v, &slot_words[static_cast<size_t>(slot[v]) * wps]);
        slot[v] = kNoSlot;
      }
    } else {
      sorted.assign(touched.begin(), touched.end());
      std::sort(sorted.begin(), sorted.end());
      for (uint32_t v : sorted)
        frontier.Append(v, &slot_words[static_cast<size_t>(slot[v]) * wps]);
      for (uint32_t v : touched) slot[v] = kNoSlot;
    }
  }

  // Product exhausted without reaching (target, final): no answer.
  ann.levels.clear();
}

}  // namespace

Annotation Annotate(const Snapshot& snap, const Nfa& query, uint32_t source,
                    uint32_t target, const AnnotateOptions& opts) {
  if (ShardPlan::ClampShards(opts.num_shards, snap.num_vertices()) > 1)
    return ShardedAnnotate(snap, query, source, target, opts);

  Annotation ann;
  ann.num_states = query.num_states();
  ann.source = source;
  ann.target = target;
  ann.final_states = query.final_states();
  if (query.has_epsilon()) ann.eps_closure = query.EpsilonClosures();
  ann.delta = CompiledDelta(query, ann.eps_closure);  // closures shared

  if (source >= snap.num_vertices() || target >= snap.num_vertices() ||
      query.num_states() == 0 || query.initial().None())
    return ann;

  // Tier dispatch: one-word queries run the collapsed single-word
  // kernels unless a test/bench forces the generic instantiation.
  const uint32_t wps = ann.words_per_set();
  if (wps == 1 && !opts.force_multi_word)
    ProductBfs(snap, query, SingleWordKernel(), &ann);
  else
    ProductBfs(snap, query, MultiWordKernel(wps), &ann);
  return ann;
}

Annotation MultiSourceAnnotation::Slice(size_t j) const {
  Annotation ann;
  ann.num_states = num_states;
  ann.source = sources[j];
  ann.target = target;
  ann.lambda = lambdas[j];
  ann.final_states = final_states;
  ann.eps_closure = eps_closure;
  ann.delta = delta;
  if (ann.lambda < 0) return ann;  // unreachable: empty levels, like Annotate

  ann.levels.reserve(static_cast<size_t>(ann.lambda) + 1);
  for (size_t i = 0; i <= static_cast<size_t>(ann.lambda); ++i) {
    const LevelSets& wide = wide_levels[i];
    LevelSets lvl(num_states);
    for (size_t vi = 0; vi < wide.size(); ++vi) {
      // Block j's slice is word-aligned: a straight pointer offset.
      const uint64_t* bw = wide.states(vi).words() +
                           static_cast<size_t>(j) * block_words;
      uint64_t any = 0;
      for (uint32_t w = 0; w < block_words; ++w) any |= bw[w];
      if (any == 0) continue;  // vertex belongs to other blocks only
      lvl.Append(wide.vertex(vi), bw);
    }
    ann.levels.push_back(std::move(lvl));
  }
  return ann;
}

MultiSourceAnnotation AnnotateMultiSource(const Snapshot& snap,
                                          const Nfa& query,
                                          const std::vector<uint32_t>& sources,
                                          uint32_t target,
                                          const AnnotateOptions& opts) {
  (void)opts;  // sharding n/a: the block dimension is the parallelism here

  MultiSourceAnnotation ms;
  ms.num_states = query.num_states();
  ms.num_blocks = static_cast<uint32_t>(sources.size());
  ms.block_words = static_cast<uint32_t>(
      state_set_detail::WordsFor(ms.num_states));
  ms.target = target;
  ms.sources = sources;
  ms.lambdas.assign(sources.size(), -1);
  ms.final_states = query.final_states();
  if (query.has_epsilon()) ms.eps_closure = query.EpsilonClosures();
  ms.delta = CompiledDelta(query, ms.eps_closure);

  const uint32_t num_vertices = snap.num_vertices();
  if (sources.empty() || target >= num_vertices || query.num_states() == 0 ||
      query.initial().None())
    return ms;

  const LabelIndex& adj = snap.label_index();
  const CompiledDelta& delta = ms.delta;
  const uint32_t bw = ms.block_words;
  const size_t wide_words = static_cast<size_t>(ms.num_blocks) * bw;
  // LevelSets capacity is 32-bit; the engine batches tens to a few
  // hundred sources, orders of magnitude below this.
  assert(wide_words * 64 <= UINT32_MAX && "source batch too large");
  const uint32_t wide_bits = static_cast<uint32_t>(wide_words * 64);

  // Per-block liveness: a block relaxes until its lambda is found (then
  // it must stop, to mirror Annotate's early return) or the BFS ends.
  std::vector<uint8_t> active(ms.num_blocks, 0);
  uint32_t num_active = 0;

  // Closure-saturated initial block, replicated into each valid
  // source's slice of that source's seen row (cf. the level-0 seeding
  // in Annotate above).
  StateSet init = query.initial();
  if (!ms.eps_closure.empty()) {
    StateSet saturated(ms.num_states);
    init.ForEach([&](uint32_t q) { saturated.UnionWith(ms.eps_closure[q]); });
    init = std::move(saturated);
  }

  std::vector<uint64_t> seen(static_cast<size_t>(num_vertices) * wide_words,
                             0);
  for (uint32_t j = 0; j < ms.num_blocks; ++j) {
    if (sources[j] >= num_vertices) continue;  // lambda stays -1
    active[j] = 1;
    ++num_active;
    uint64_t* row = &seen[static_cast<size_t>(sources[j]) * wide_words +
                          static_cast<size_t>(j) * bw];
    for (uint32_t w = 0; w < bw; ++w) row[w] |= init.words()[w];
  }
  if (num_active == 0) return ms;

  // Level 0: the distinct seeded vertices, in sorted order, with their
  // full wide seen rows (only seeded slices are nonzero).
  std::vector<uint32_t> seeded;
  for (uint32_t j = 0; j < ms.num_blocks; ++j)
    if (active[j]) seeded.push_back(sources[j]);
  std::sort(seeded.begin(), seeded.end());
  seeded.erase(std::unique(seeded.begin(), seeded.end()), seeded.end());
  LevelSets frontier(wide_bits);
  for (uint32_t v : seeded)
    frontier.Append(v, &seen[static_cast<size_t>(v) * wide_words]);

  constexpr uint32_t kNoSlot = UINT32_MAX;
  std::vector<uint32_t> slot(num_vertices, kNoSlot);
  std::vector<uint32_t> touched;
  std::vector<uint32_t> sorted;
  std::vector<uint64_t> slot_words;

  std::vector<uint64_t> moved(wide_words, 0);
  std::vector<uint64_t> add_buf(wide_words);
  std::vector<uint32_t> moved_blocks;  // blocks with a nonzero moved slice

  while (!frontier.empty() && num_active > 0) {
    ms.wide_levels.push_back(std::move(frontier));
    const LevelSets& current = ms.wide_levels.back();
    const int32_t level = static_cast<int32_t>(ms.wide_levels.size() - 1);

    // Per-block detection at the sealed level, mirroring Annotate's
    // "target reached a final state" early return.
    if (StateSetView at_target = current.Find(target); at_target) {
      const uint64_t* tw = at_target.words();
      for (uint32_t j = 0; j < ms.num_blocks; ++j) {
        if (!active[j]) continue;
        uint64_t hit = 0;
        for (uint32_t w = 0; w < bw; ++w)
          hit |= tw[static_cast<size_t>(j) * bw + w] &
                 ms.final_states.words()[w];
        if (hit != 0) {
          ms.lambdas[j] = level;
          active[j] = 0;
          --num_active;
        }
      }
      if (num_active == 0) break;
    }

    touched.clear();
    slot_words.clear();
    for (size_t vi = 0; vi < current.size(); ++vi) {
      const uint32_t v = current.vertex(vi);
      const uint64_t* vw = current.states(vi).words();
      for (const LabelIndex::Group& group : adj.GroupsOf(v)) {
        if (!delta.HasLabel(group.label)) continue;
        const uint64_t* srcw = delta.Sources(group.label).words();
        // Per-block frontier move; `moved` keeps only the slices listed
        // in moved_blocks nonzero, so clearing is proportional to work.
        for (uint32_t j : moved_blocks) {
          uint64_t* mb = &moved[static_cast<size_t>(j) * bw];
          for (uint32_t w = 0; w < bw; ++w) mb[w] = 0;
        }
        moved_blocks.clear();
        for (uint32_t j = 0; j < ms.num_blocks; ++j) {
          if (!active[j]) continue;
          const uint64_t* vb = vw + static_cast<size_t>(j) * bw;
          uint64_t* mb = &moved[static_cast<size_t>(j) * bw];
          uint64_t present = 0;
          for (uint32_t w = 0; w < bw; ++w) present |= vb[w] & srcw[w];
          if (present == 0) continue;
          state_set_detail::ForEachBit(vb, bw, [&](uint32_t q) {
            if (!(srcw[q >> 6] >> (q & 63) & 1)) return;
            const uint64_t* row = delta.SuccessorWords(group.label, q);
            for (uint32_t w = 0; w < bw; ++w) mb[w] |= row[w];
          });
          moved_blocks.push_back(j);  // present != 0 => row OR nonzero
        }
        if (moved_blocks.empty()) continue;
        for (const LabelIndex::Target& t : adj.Targets(group)) {
          uint64_t* sw = &seen[static_cast<size_t>(t.dst) * wide_words];
          uint64_t any_new = 0;
          for (uint32_t j : moved_blocks)
            for (uint32_t w = 0; w < bw; ++w) {
              const size_t k = static_cast<size_t>(j) * bw + w;
              add_buf[k] = moved[k] & ~sw[k];
              any_new |= add_buf[k];
            }
          if (any_new == 0) continue;
          uint32_t s = slot[t.dst];
          if (s == kNoSlot) {
            s = static_cast<uint32_t>(touched.size());
            slot[t.dst] = s;
            touched.push_back(t.dst);
            slot_words.resize(slot_words.size() + wide_words, 0);
          }
          uint64_t* nw = &slot_words[static_cast<size_t>(s) * wide_words];
          for (uint32_t j : moved_blocks)
            for (uint32_t w = 0; w < bw; ++w) {
              const size_t k = static_cast<size_t>(j) * bw + w;
              sw[k] |= add_buf[k];
              nw[k] |= add_buf[k];
            }
        }
      }
    }

    frontier = LevelSets(wide_bits);
    if (touched.size() >= num_vertices / 16) {
      for (uint32_t v = 0; v < num_vertices; ++v) {
        if (slot[v] == kNoSlot) continue;
        frontier.Append(
            v, &slot_words[static_cast<size_t>(slot[v]) * wide_words]);
        slot[v] = kNoSlot;
      }
    } else {
      sorted.assign(touched.begin(), touched.end());
      std::sort(sorted.begin(), sorted.end());
      for (uint32_t v : sorted)
        frontier.Append(
            v, &slot_words[static_cast<size_t>(slot[v]) * wide_words]);
      for (uint32_t v : touched) slot[v] = kNoSlot;
    }
  }

  // Blocks still active exhausted the product without an answer; their
  // lambdas stay -1 and Slice() returns empty levels for them.
  return ms;
}

}  // namespace dsw
