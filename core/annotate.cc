#include "core/annotate.h"

#include <utility>

namespace dsw {

Annotation Annotate(const Database& db, const Nfa& query, uint32_t source,
                    uint32_t target) {
  Annotation ann;
  ann.num_states = query.num_states();
  ann.source = source;
  ann.target = target;
  ann.transitions.reserve(query.num_states());
  for (uint32_t q = 0; q < query.num_states(); ++q)
    ann.transitions.push_back(query.Transitions(q));
  ann.final_states = query.final_states();
  if (query.has_epsilon()) ann.eps_closure = query.EpsilonClosures();

  if (source >= db.num_vertices() || target >= db.num_vertices() ||
      query.num_states() == 0 || query.initial().None())
    return ann;

  // seen[v] marks product pairs already assigned a level; allocated
  // lazily so the BFS stays O(visited), not O(|V| x |Q|).
  std::vector<StateSet> seen(db.num_vertices());
  auto mark = [&](uint32_t v, uint32_t q) -> bool {
    StateSet& s = seen[v];
    if (s.capacity() == 0) s.Resize(query.num_states());
    if (s.Test(q)) return false;
    s.Set(q);
    return true;
  };

  // Saturates a per-vertex state set with epsilon-closures, marking the
  // newly reached pairs at the current level. eps_closure entries are
  // transitively closed, so one pass over the pre-closure members
  // suffices. (v, q) pairs reached only by epsilon still get marked
  // exactly once, so the BFS stays O(|D| x |A|) — the Section 5.1
  // "epsilon for free" argument. closed is hoisted scratch: saturate
  // runs once per annotated vertex per level, inside the preprocessing
  // loop E1/E2 measure.
  StateSet closed(query.num_states());
  auto saturate = [&](uint32_t v, StateSet* states) {
    if (ann.eps_closure.empty()) return;
    closed.ZeroAll();
    states->ForEach([&](uint32_t q) { closed |= ann.eps_closure[q]; });
    closed.ForEach([&](uint32_t r) {
      if (mark(v, r)) states->Set(r);
    });
  };

  std::unordered_map<uint32_t, StateSet> frontier;
  StateSet init = query.initial();
  init.ForEach([&](uint32_t q) { mark(source, q); });
  saturate(source, &init);
  frontier.emplace(source, std::move(init));

  auto accepts_here = [&](const std::unordered_map<uint32_t, StateSet>& lvl) {
    auto it = lvl.find(target);
    return it != lvl.end() && it->second.Intersects(query.final_states());
  };

  while (!frontier.empty()) {
    ann.levels.push_back(std::move(frontier));
    const auto& current = ann.levels.back();
    uint32_t level = static_cast<uint32_t>(ann.levels.size() - 1);
    if (accepts_here(current)) {
      ann.lambda = static_cast<int32_t>(level);
      return ann;
    }

    std::unordered_map<uint32_t, StateSet> next;
    for (const auto& [v, states] : current) {
      for (uint32_t e : db.OutEdges(v)) {
        const Edge& edge = db.edge(e);
        StateSet* dst_states = nullptr;
        states.ForEach([&](uint32_t q) {
          for (const auto& [label, to] : query.Transitions(q)) {
            if (label != edge.label) continue;
            if (!mark(edge.dst, to)) continue;
            if (dst_states == nullptr) {
              auto [it, inserted] =
                  next.try_emplace(edge.dst, StateSet(query.num_states()));
              dst_states = &it->second;
            }
            dst_states->Set(to);
          }
        });
      }
    }
    for (auto& [v, states] : next) saturate(v, &states);
    frontier = std::move(next);
  }

  // Product exhausted without reaching (target, final): no answer.
  ann.levels.clear();
  return ann;
}

}  // namespace dsw
