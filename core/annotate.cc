#include "core/annotate.h"

#include <algorithm>
#include <utility>

#include "core/shard_plan.h"
#include "core/sharded_annotate.h"

namespace dsw {
namespace {

constexpr uint32_t kNoSlot = UINT32_MAX;

}  // namespace

Annotation Annotate(const Snapshot& snap, const Nfa& query, uint32_t source,
                    uint32_t target, const AnnotateOptions& opts) {
  if (ShardPlan::ClampShards(opts.num_shards, snap.num_vertices()) > 1)
    return ShardedAnnotate(snap, query, source, target, opts);

  Annotation ann;
  ann.num_states = query.num_states();
  ann.source = source;
  ann.target = target;
  ann.final_states = query.final_states();
  if (query.has_epsilon()) ann.eps_closure = query.EpsilonClosures();
  ann.delta = CompiledDelta(query, ann.eps_closure);  // closures shared

  if (source >= snap.num_vertices() || target >= snap.num_vertices() ||
      query.num_states() == 0 || query.initial().None())
    return ann;

  const LabelIndex& adj = snap.label_index();
  const CompiledDelta& delta = ann.delta;
  const uint32_t num_vertices = snap.num_vertices();
  const uint32_t wps = ann.words_per_set();

  // seen: flat V x |Q| bit matrix of product pairs already assigned a
  // level. One zeroed calloc-style allocation; the BFS itself touches
  // only visited rows.
  std::vector<uint64_t> seen(static_cast<size_t>(num_vertices) * wps, 0);

  // Next-frontier accumulator: dense per-vertex slot table + touched
  // list, so building a level is O(touched) with no hashing. Sealing
  // sorts the touched vertices when they are sparse and linear-scans the
  // slot table when they are dense (>= 1/16 of V) — the scan is cheaper
  // than the sort's branchy compares at that density.
  std::vector<uint32_t> slot(num_vertices, kNoSlot);
  std::vector<uint32_t> touched;
  std::vector<uint32_t> sorted;
  std::vector<uint64_t> slot_words;

  // Level 0: closure-saturated initial states at the source. Later
  // levels stay saturated by induction — delta rows compose the
  // after-side closure, and a union of closed sets is closed.
  StateSet init = query.initial();
  if (ann.has_epsilon()) {
    StateSet saturated(ann.num_states);
    init.ForEach(
        [&](uint32_t q) { saturated.UnionWith(ann.eps_closure[q]); });
    init = std::move(saturated);
  }
  for (uint32_t w = 0; w < wps; ++w)
    seen[static_cast<size_t>(source) * wps + w] = init.words()[w];

  LevelSets frontier(ann.num_states);
  frontier.Append(source, init.words());

  StateSet moved(ann.num_states);
  std::vector<uint64_t> add_buf(wps);  // new bits of one relaxed edge

  while (!frontier.empty()) {
    ann.levels.push_back(std::move(frontier));
    const LevelSets& current = ann.levels.back();
    if (StateSetView at_target = current.Find(target);
        at_target && at_target.Intersects(ann.final_states)) {
      ann.lambda = static_cast<int32_t>(ann.levels.size() - 1);
      return ann;
    }

    touched.clear();
    slot_words.clear();
    for (size_t vi = 0; vi < current.size(); ++vi) {
      const uint32_t v = current.vertex(vi);
      const StateSetView states = current.states(vi);
      for (const LabelIndex::Group& group : adj.GroupsOf(v)) {
        if (!delta.HasLabel(group.label)) continue;
        // One move per (vertex, label), shared by every edge of the
        // group: word-parallel OR of the frontier's delta rows, visiting
        // only states that actually carry this label.
        moved.ZeroAll();
        ForEachAnd(states, delta.Sources(group.label), [&](uint32_t q) {
          moved.UnionWithWords(delta.SuccessorWords(group.label, q), wps);
        });
        if (moved.None()) continue;
        const uint64_t* mw = moved.words();
        for (const LabelIndex::Target& t : adj.Targets(group)) {
          uint64_t* sw = &seen[static_cast<size_t>(t.dst) * wps];
          uint64_t any_new = 0;
          for (uint32_t w = 0; w < wps; ++w) {
            add_buf[w] = mw[w] & ~sw[w];
            any_new |= add_buf[w];
          }
          if (any_new == 0) continue;  // every pair already leveled
          uint32_t s = slot[t.dst];
          if (s == kNoSlot) {
            s = static_cast<uint32_t>(touched.size());
            slot[t.dst] = s;
            touched.push_back(t.dst);
            slot_words.resize(slot_words.size() + wps, 0);
          }
          uint64_t* nw = &slot_words[static_cast<size_t>(s) * wps];
          for (uint32_t w = 0; w < wps; ++w) {
            sw[w] |= add_buf[w];
            nw[w] |= add_buf[w];
          }
        }
      }
    }

    // Seal the next level: sorted vertices, contiguous words.
    frontier = LevelSets(ann.num_states);
    if (touched.size() >= num_vertices / 16) {
      for (uint32_t v = 0; v < num_vertices; ++v) {
        if (slot[v] == kNoSlot) continue;
        frontier.Append(v, &slot_words[static_cast<size_t>(slot[v]) * wps]);
        slot[v] = kNoSlot;
      }
    } else {
      sorted.assign(touched.begin(), touched.end());
      std::sort(sorted.begin(), sorted.end());
      for (uint32_t v : sorted)
        frontier.Append(v, &slot_words[static_cast<size_t>(slot[v]) * wps]);
      for (uint32_t v : touched) slot[v] = kNoSlot;
    }
  }

  // Product exhausted without reaching (target, final): no answer.
  ann.levels.clear();
  return ann;
}

}  // namespace dsw
