// Building blocks of the sharded (Pregel-style) preprocessing path:
//
//  - ShardPlan: a partition of the vertex ids into S *contiguous* ranges,
//    balanced by out-degree. Contiguity is load-bearing: each shard's
//    frontier/useful sets are sorted within its range, so concatenating
//    the per-shard results in shard order yields the globally sorted
//    LevelSets the sequential pipeline produces — bit-identical merges
//    with no sort step. The owner array gives O(1) routing per message.
//
//  - WordRing: a bounded single-producer/single-consumer ring of raw
//    uint64_t words. The sharded BFS allocates one ring per
//    (src-shard, dst-shard) pair; shard s is the only producer of
//    ring[s][d] and shard d its only consumer, so head/tail are two
//    relaxed-hot atomics with acquire/release hand-off and no locks.
//    Messages are fixed-size records (header word + the state-set
//    words), pushed all-or-nothing so any published range holds whole
//    records. Producers that find a ring full drain their own inboxes
//    while retrying — every shard does, which is what makes the
//    full-ring backpressure deadlock-free (see core/sharded_annotate.cc).

#ifndef DSW_CORE_SHARD_PLAN_H_
#define DSW_CORE_SHARD_PLAN_H_

#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/database.h"

namespace dsw {

class ShardPlan {
 public:
  /// Owner array is uint8_t; more shards than this never pays anyway.
  static constexpr uint32_t kMaxShards = 256;

  /// Shard count actually usable for a database of \p num_vertices
  /// vertices: at least 1, at most kMaxShards, and never more shards
  /// than vertices (beyond that the extra shards would all be empty).
  static uint32_t ClampShards(uint32_t requested, uint32_t num_vertices) {
    uint32_t s = requested == 0 ? 1 : requested;
    if (s > kMaxShards) s = kMaxShards;
    if (num_vertices != 0 && s > num_vertices) s = num_vertices;
    return s;
  }

  /// Cuts [0, V) into \p num_shards contiguous ranges with roughly equal
  /// total weight, where weight(v) = 1 + out_degree(v) — the unit of
  /// both BFS relax work and trim scan work. Empty ranges are legal
  /// (e.g. V < S after clamping elsewhere).
  ShardPlan(const Snapshot& snap, uint32_t num_shards)
      : num_shards_(ClampShards(num_shards, snap.num_vertices())) {
    const uint32_t v_count = snap.num_vertices();
    begin_.assign(num_shards_ + 1, v_count);
    owner_.assign(v_count, 0);
    uint64_t total = 0;
    for (uint32_t v = 0; v < v_count; ++v)
      total += 1 + snap.OutEdges(v).size();
    begin_[0] = 0;
    uint64_t acc = 0;
    uint32_t s = 0;
    for (uint32_t v = 0; v < v_count; ++v) {
      // Advance the cut while v's weight belongs to a later shard: shard
      // s covers cumulative weight [total*s/S, total*(s+1)/S).
      while (s + 1 < num_shards_ &&
             acc * num_shards_ >= total * (s + 1)) {
        ++s;
        begin_[s] = v;
      }
      owner_[v] = static_cast<uint8_t>(s);
      acc += 1 + snap.OutEdges(v).size();
    }
    // Cuts never reached keep their initialized value v_count: trailing
    // shards are empty ranges.
  }

  uint32_t num_shards() const { return num_shards_; }
  uint32_t begin(uint32_t s) const { return begin_[s]; }
  uint32_t end(uint32_t s) const { return begin_[s + 1]; }
  uint32_t owner(uint32_t v) const { return owner_[v]; }

 private:
  uint32_t num_shards_;
  std::vector<uint32_t> begin_;  // size num_shards_ + 1; begin_[0] == 0
  std::vector<uint8_t> owner_;   // vertex -> shard
};

class WordRing {
 public:
  /// Capacity is rounded up to a power of two and to at least
  /// \p min_record words, so one record always fits.
  explicit WordRing(size_t capacity_words, size_t min_record = 1) {
    size_t cap = capacity_words < min_record ? min_record : capacity_words;
    cap = std::bit_ceil(cap);
    mask_ = cap - 1;
    buf_.assign(cap, 0);
  }

  size_t capacity() const { return mask_ + 1; }

  /// Producer side: appends \p n words as one record, or returns false
  /// without writing anything when fewer than n slots are free.
  bool TryPush(const uint64_t* rec, size_t n) {
    const size_t t = tail_.load(std::memory_order_relaxed);
    if (capacity() - (t - cached_head_) < n) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (capacity() - (t - cached_head_) < n) return false;
    }
    for (size_t i = 0; i < n; ++i) buf_[(t + i) & mask_] = rec[i];
    tail_.store(t + n, std::memory_order_release);
    return true;
  }

  /// Consumer side: pops one \p n-word record into \p rec, or returns
  /// false when no full record is published. All records of one run
  /// share a size, so "fewer than n words visible" means "empty".
  bool TryPop(uint64_t* rec, size_t n) {
    const size_t h = head_.load(std::memory_order_relaxed);
    if (cached_tail_ - h < n) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (cached_tail_ - h < n) return false;
    }
    for (size_t i = 0; i < n; ++i) rec[i] = buf_[(h + i) & mask_];
    head_.store(h + n, std::memory_order_release);
    return true;
  }

  /// Consumer-side emptiness probe (exact for the consumer once all
  /// producers have quiesced; a racy hint otherwise).
  bool Empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  size_t mask_ = 0;
  std::vector<uint64_t> buf_;
  // Consumer-owned line: head_ plus the consumer's cached tail.
  alignas(64) std::atomic<size_t> head_{0};
  size_t cached_tail_ = 0;
  // Producer-owned line: tail_ plus the producer's cached head.
  alignas(64) std::atomic<size_t> tail_{0};
  size_t cached_head_ = 0;
};

}  // namespace dsw

#endif  // DSW_CORE_SHARD_PLAN_H_
