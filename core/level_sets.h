// One BFS (or trim) level: the touched vertices in sorted order, each
// carrying a StateSet whose words live in a single contiguous pool.
// Replaces the unordered_map<uint32_t, StateSet> levels of the original
// pipeline: no per-vertex heap allocation, cache-linear sweeps for the
// "for each (v, states) in level" loops, O(log n) point lookups, and a
// deterministic (sorted) iteration order — which in turn makes
// enumeration order deterministic across platforms.

#ifndef DSW_CORE_LEVEL_SETS_H_
#define DSW_CORE_LEVEL_SETS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/state_set.h"

namespace dsw {

class LevelSets {
 public:
  static constexpr size_t npos = static_cast<size_t>(-1);

  LevelSets() = default;
  explicit LevelSets(uint32_t num_bits)
      : num_bits_(num_bits),
        words_per_set_(
            static_cast<uint32_t>(state_set_detail::WordsFor(num_bits))) {}

  size_t size() const { return vertices_.size(); }
  bool empty() const { return vertices_.empty(); }
  uint32_t words_per_set() const { return words_per_set_; }
  const std::vector<uint32_t>& vertices() const { return vertices_; }

  uint32_t vertex(size_t i) const { return vertices_[i]; }
  StateSetView states(size_t i) const {
    return {&words_[i * words_per_set_], num_bits_};
  }
  /// Mutable word access for in-place state patches (delta repair).
  /// Membership (the sorted vertex array) cannot be changed this way.
  uint64_t* mutable_state_words(size_t i) {
    return &words_[i * words_per_set_];
  }

  /// States at vertex \p v, or a null view when v is not in the level.
  StateSetView Find(uint32_t v) const {
    size_t i = FindIndex(v);
    return i == npos ? StateSetView() : states(i);
  }

  /// Position of \p v in the sorted vertex array, or npos.
  size_t FindIndex(uint32_t v) const {
    auto it = std::lower_bound(vertices_.begin(), vertices_.end(), v);
    if (it == vertices_.end() || *it != v) return npos;
    return static_cast<size_t>(it - vertices_.begin());
  }

  /// Position of the first vertex >= \p v (== size() when none).
  size_t LowerBound(uint32_t v) const {
    return static_cast<size_t>(
        std::lower_bound(vertices_.begin(), vertices_.end(), v) -
        vertices_.begin());
  }

  /// Appends (v, states). Vertices must arrive in strictly increasing
  /// order; \p words points at words_per_set() words.
  void Append(uint32_t v, const uint64_t* words) {
    vertices_.push_back(v);
    words_.insert(words_.end(), words, words + words_per_set_);
  }

  void Reserve(size_t n) {
    vertices_.reserve(n);
    words_.reserve(n * words_per_set_);
  }

  /// Appends \p other's entries at positions [begin, end) wholesale.
  /// The same strictly-increasing-vertex contract as Append applies.
  void AppendRange(const LevelSets& other, size_t begin, size_t end) {
    vertices_.insert(vertices_.end(), other.vertices_.begin() + begin,
                     other.vertices_.begin() + end);
    words_.insert(words_.end(),
                  other.words_.begin() + begin * words_per_set_,
                  other.words_.begin() + end * words_per_set_);
  }

  /// Sharded-merge support. ResizeForMerge pre-sizes the level to hold
  /// exactly \p total entries (discarding current contents); the shards
  /// then CopySliceFrom their sub-levels into disjoint position ranges
  /// concurrently. The caller guarantees the slices tile [0, total) and
  /// that concatenation order keeps the vertices strictly increasing —
  /// contiguous shard ranges give that for free (core/shard_plan.h).
  void ResizeForMerge(size_t total) {
    vertices_.resize(total);
    words_.resize(total * words_per_set_);
  }
  void CopySliceFrom(const LevelSets& other, size_t pos) {
    std::copy(other.vertices_.begin(), other.vertices_.end(),
              vertices_.begin() + pos);
    std::copy(other.words_.begin(), other.words_.end(),
              words_.begin() + pos * words_per_set_);
  }

  /// Heap footprint estimate, for the plan cache's byte budget.
  size_t ApproxBytes() const {
    return vertices_.capacity() * sizeof(uint32_t) +
           words_.capacity() * sizeof(uint64_t);
  }

 private:
  uint32_t num_bits_ = 0;
  uint32_t words_per_set_ = 0;
  std::vector<uint32_t> vertices_;  // sorted
  std::vector<uint64_t> words_;     // size() * words_per_set_ words
};

}  // namespace dsw

#endif  // DSW_CORE_LEVEL_SETS_H_
