// Incremental maintenance of the preprocessing structures under an
// insert-only edge delta (the mutation-maintenance layer behind the
// engine's incremental InstallSnapshot).
//
// The key monotonicity fact: an inserted edge can only *decrease*
// product-BFS levels. Every pair (v, q) the old annotation holds at
// level i has new distance <= i, every pair it lacks has old distance
// > old lambda, and lambda itself can only shrink. So the old
// annotation is repairable by a bounded re-relaxation wave instead of a
// full O(|D| x |A|) BFS:
//
//  1. Seed: for each inserted edge (u, l, v), relax u's old annotated
//     (level, state) slots through the CompiledDelta row for l — each
//     seed proposes pairs at (old level of u) + 1.
//  2. Wave: process proposals in increasing level order. A proposal at
//     level j is accepted only when it strictly decreases the pair's
//     current level (or the pair was absent) — so each pair settles at
//     most once, at its true new distance — and an accepted pair
//     re-relaxes *all* its out-edges (new edges included) into level
//     j + 1. Unchanged pairs never re-relax: their old contributions
//     are already in the annotation, and their new-edge contributions
//     are exactly the seeds.
//  3. Truncate: the new lambda is the smallest level where the target
//     carries a final state; levels above it are dropped, mirroring the
//     from-scratch early return.
//
// The result is bit-identical to Annotate() on the new snapshot (the
// oracle test in tests/delta_annotate_test.cc asserts this after every
// insertion, epsilon-NFAs included). The wave's cost is bounded by the
// touched region — the product edges out of pairs whose level actually
// changed — plus an O(V x |Q|) dense level table fill, far below the
// full BFS at low mutation rates (bench/bench_mutation.cc, E13).
//
// The trim/B-list structures are repaired rather than rebuilt, too:
// DeltaTrim re-runs the per-vertex backward-sweep unit
// (trim_detail::TrimVertex) only for *dirty* vertices — annotation
// changed, an out-neighbor's useful set changed, or an out-edge was
// inserted — and byte-copies every clean vertex's candidate range and
// certificate block from the old pools, remapping only the next-level
// positions (which shift when the next level's membership changes).
// When lambda changed the whole backward sweep is re-run from the
// repaired annotation (still skipping the BFS), and sessions parked on
// the old plan are retired by the engine because the enumeration order
// is no longer a supersequence anchor (see engine/engine.cc).

#ifndef DSW_CORE_DELTA_ANNOTATE_H_
#define DSW_CORE_DELTA_ANNOTATE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/annotate.h"
#include "core/database.h"
#include "core/trimmed_index.h"

namespace dsw {

/// Reverse label-free adjacency (in-neighbor CSR) of one snapshot.
/// Built once per InstallSnapshot and shared across every entry repair:
/// the trim patcher needs "which vertices have an edge into w" to
/// propagate usefulness changes backward, and the forward LabelIndex
/// cannot answer that. O(|E|) build; parallel edges appear as duplicate
/// in-neighbors (the dirty sets dedup downstream).
class DeltaContext {
 public:
  explicit DeltaContext(const Snapshot& snap);

  std::span<const uint32_t> InNeighbors(uint32_t v) const {
    return {in_src_.data() + in_off_[v], in_src_.data() + in_off_[v + 1]};
  }

 private:
  std::vector<uint32_t> in_off_;  // vertex -> first in-edge; size V+1
  std::vector<uint32_t> in_src_;  // source vertices, grouped by dst
};

/// What DeltaAnnotate did to the annotation. ok == false means the
/// repair is unsupported (unknown delta, or the old annotation was
/// unreachable and thus carries no level data to repair — Annotate
/// clears the levels on exhaustion); the annotation is untouched and
/// the caller must rebuild from scratch. changed[i] lists, sorted
/// ascending, the vertices whose state set at level i differs from
/// before (added, removed, or mutated); sized new-lambda + 1.
struct AnnotationRepair {
  bool ok = false;
  bool lambda_changed = false;
  std::vector<std::vector<uint32_t>> changed;
};

/// Repairs \p ann in place from its old snapshot's state to \p snap
/// (whose delta against that old generation is \p delta). On success
/// the annotation is bit-identical to Annotate() against \p snap.
AnnotationRepair DeltaAnnotate(const Snapshot& snap, const EdgeDelta& delta,
                               Annotation* ann);

/// Produces the TrimmedIndex of the repaired annotation \p ann by
/// patching \p old_index (built from the pre-delta annotation).
/// Requires rep.ok. Incremental (dirty-vertex re-trim + clean-vertex
/// block copies) when lambda is unchanged; a full backward sweep —
/// still skipping the product BFS — when it shrank. Bit-identical to
/// TrimmedIndex(snap, ann) either way.
TrimmedIndex DeltaTrim(const Snapshot& snap, const Annotation& ann,
                       const TrimmedIndex& old_index,
                       const AnnotationRepair& rep, const EdgeDelta& delta,
                       const DeltaContext& ctx);

}  // namespace dsw

#endif  // DSW_CORE_DELTA_ANNOTATE_H_
