// Edge-labeled graph database D = (V, Sigma, E) with E a multiset of
// (src, label, dst) triples. Walks are sequences of *edge ids*, so two
// parallel edges between the same endpoints (even with distinct labels)
// yield distinct walks — the "distinct walk" granularity of the paper.
//
// Vertices and labels are dense uint32_t ids; LabelDictionary maps the
// human-readable label names used by workloads ("a", "b", "l0", ...) to
// ids and back.

#ifndef DSW_CORE_DATABASE_H_
#define DSW_CORE_DATABASE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dsw {

class LabelDictionary {
 public:
  static constexpr uint32_t kInvalid = UINT32_MAX;

  /// Returns the id of \p name, creating it if needed.
  uint32_t Intern(std::string_view name) {
    auto it = index_.find(std::string(name));
    if (it != index_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id of \p name or kInvalid if unknown.
  uint32_t Find(std::string_view name) const {
    auto it = index_.find(std::string(name));
    return it == index_.end() ? kInvalid : it->second;
  }

  const std::string& Name(uint32_t id) const { return names_[id]; }
  uint32_t size() const { return static_cast<uint32_t>(names_.size()); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t> index_;
};

struct Edge {
  uint32_t src;
  uint32_t dst;
  uint32_t label;
};

class Database {
 public:
  uint32_t AddVertex() {
    out_.emplace_back();
    return static_cast<uint32_t>(out_.size() - 1);
  }

  /// Adds \p n vertices; returns the id of the first.
  uint32_t AddVertices(uint32_t n) {
    uint32_t first = num_vertices();
    out_.resize(out_.size() + n);
    return first;
  }

  /// Adds an edge with an already-interned label id; returns the edge id.
  uint32_t AddEdge(uint32_t src, uint32_t label, uint32_t dst) {
    uint32_t id = static_cast<uint32_t>(edges_.size());
    edges_.push_back(Edge{src, dst, label});
    out_[src].push_back(id);
    return id;
  }

  /// Adds an edge by label name, interning it on first use.
  uint32_t AddEdge(uint32_t src, std::string_view label, uint32_t dst) {
    return AddEdge(src, labels_.Intern(label), dst);
  }

  uint32_t num_vertices() const { return static_cast<uint32_t>(out_.size()); }
  size_t num_edges() const { return edges_.size(); }
  /// |D| as used in the paper's complexity statements: |V| + |E|.
  size_t size() const { return num_vertices() + num_edges(); }

  const Edge& edge(uint32_t id) const { return edges_[id]; }
  const std::vector<uint32_t>& OutEdges(uint32_t v) const { return out_[v]; }

  LabelDictionary& labels() { return labels_; }
  const LabelDictionary& labels() const { return labels_; }

  /// Stable pointer to the dictionary for callers that intern labels
  /// while compiling queries against a live database (the regex front
  /// end). The pointer stays valid for the lifetime of this Database, and
  /// Intern is idempotent, so re-compiling a query never perturbs ids.
  LabelDictionary* mutable_dict() { return &labels_; }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<uint32_t>> out_;  // vertex -> edge ids
  LabelDictionary labels_;
};

}  // namespace dsw

#endif  // DSW_CORE_DATABASE_H_
