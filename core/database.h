// Edge-labeled graph database D = (V, Sigma, E) with E a multiset of
// (src, label, dst) triples. Walks are sequences of *edge ids*, so two
// parallel edges between the same endpoints (even with distinct labels)
// yield distinct walks — the "distinct walk" granularity of the paper.
//
// Vertices and labels are dense uint32_t ids; LabelDictionary maps the
// human-readable label names used by workloads ("a", "b", "l0", ...) to
// ids and back.
//
// Besides the insertion-ordered OutEdges lists, the database maintains a
// CSR-style *label-stratified* adjacency (LabelIndex): per vertex, the
// out-edges grouped by label with an offset index. The annotate/trim hot
// paths iterate "distinct labels out of v" and then "edges of v with
// label l", so the per-edge label filtering of the naive adjacency never
// happens — and the per-(vertex, label) automaton move is computed once
// and shared across every edge of the group (parallel edges included).

#ifndef DSW_CORE_DATABASE_H_
#define DSW_CORE_DATABASE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dsw {

// Dense id aliases. Purely documentary (everything is uint32_t), but
// the bench/test code reads better when a variable says which id space
// it lives in.
using VertexId = uint32_t;
using EdgeId = uint32_t;

class LabelDictionary {
 public:
  static constexpr uint32_t kInvalid = UINT32_MAX;

  /// Returns the id of \p name, creating it if needed.
  uint32_t Intern(std::string_view name) {
    auto it = index_.find(name);  // heterogeneous: no temporary string
    if (it != index_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id of \p name or kInvalid if unknown.
  uint32_t Find(std::string_view name) const {
    auto it = index_.find(name);
    return it == index_.end() ? kInvalid : it->second;
  }

  const std::string& Name(uint32_t id) const { return names_[id]; }
  uint32_t size() const { return static_cast<uint32_t>(names_.size()); }

 private:
  // Transparent hashing: Intern/Find are called with string_views from
  // the regex front-end's hot loop, and a non-transparent map would
  // materialize a std::string per lookup.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t, Hash, std::equal_to<>> index_;
};

struct Edge {
  uint32_t src;
  uint32_t dst;
  uint32_t label;
};

/// CSR-style label-stratified adjacency. For each vertex the distinct
/// out-labels appear as Groups (sorted by label id); each group spans a
/// contiguous range of (edge id, dst) pairs, in insertion order — so
/// enumeration order stays deterministic and parallel edges sit next to
/// each other. The destination is denormalized into the pair so the
/// BFS/trim relax loops stream one array instead of chasing edge ids
/// into the edge table.
class LabelIndex {
 public:
  struct Group {
    uint32_t label;
    uint32_t begin;  // into the target pool, see Targets()
    uint32_t end;
  };

  struct Target {
    uint32_t edge;
    uint32_t dst;
  };

  /// Distinct labels out of \p v, one Group per label.
  std::span<const Group> GroupsOf(uint32_t v) const {
    return {groups_.data() + group_offsets_[v],
            groups_.data() + group_offsets_[v + 1]};
  }

  /// (edge id, dst) pairs of one (vertex, label) group.
  std::span<const Target> Targets(const Group& g) const {
    return {targets_.data() + g.begin, targets_.data() + g.end};
  }

  /// Position of \p edge in the target pool — its rank in the global
  /// (src, label, insertion) order. Within one vertex this is exactly
  /// the order the trimmed enumerator tries candidate edges in, which
  /// makes it the sort/seek key of the resumable candidate queues.
  uint32_t PositionOf(uint32_t edge) const { return edge_pos_[edge]; }

 private:
  friend class Database;
  std::vector<uint32_t> group_offsets_;  // vertex -> first group; size V+1
  std::vector<Group> groups_;
  std::vector<Target> targets_;  // grouped by (src, label)
  std::vector<uint32_t> edge_pos_;  // edge id -> position in targets_
};

class Database {
 public:
  uint32_t AddVertex() {
    out_.emplace_back();
    index_dirty_ = true;
    ++generation_;
    return static_cast<uint32_t>(out_.size() - 1);
  }

  /// Adds \p n vertices; returns the id of the first.
  uint32_t AddVertices(uint32_t n) {
    uint32_t first = num_vertices();
    out_.resize(out_.size() + n);
    index_dirty_ = true;
    ++generation_;
    return first;
  }

  /// Adds an edge with an already-interned label id; returns the edge id.
  uint32_t AddEdge(uint32_t src, uint32_t label, uint32_t dst) {
    assert(src < num_vertices() && "AddEdge: src is not a vertex id");
    assert(dst < num_vertices() && "AddEdge: dst is not a vertex id");
    uint32_t id = static_cast<uint32_t>(edges_.size());
    edges_.push_back(Edge{src, dst, label});
    out_[src].push_back(id);
    index_dirty_ = true;
    ++generation_;
    return id;
  }

  /// Adds an edge by label name, interning it on first use.
  uint32_t AddEdge(uint32_t src, std::string_view label, uint32_t dst) {
    return AddEdge(src, labels_.Intern(label), dst);
  }

  /// Monotonic mutation counter: bumped by every AddVertex/AddVertices/
  /// AddEdge (label interning does not count — it never perturbs the
  /// adjacency). The snapshot-style index structures (TrimmedIndex,
  /// ResumableIndex) record it at build time and debug-assert it in
  /// their accessors: a mutation after label_index()/tgt_idx() silently
  /// invalidates the spans, positions and rank arrays they hold, and the
  /// generation check turns that latent use-after-mutate into a loud
  /// assertion instead of wrong answers.
  uint64_t generation() const { return generation_; }

  uint32_t num_vertices() const { return static_cast<uint32_t>(out_.size()); }
  size_t num_edges() const { return edges_.size(); }
  /// |D| as used in the paper's complexity statements: |V| + |E|.
  size_t size() const { return num_vertices() + num_edges(); }

  const Edge& edge(uint32_t id) const { return edges_[id]; }
  uint32_t src(uint32_t id) const { return edges_[id].src; }
  uint32_t dst(uint32_t id) const { return edges_[id].dst; }
  /// Rank of edge \p id in the label-stratified target pool (the
  /// (src, label, insertion) order; see LabelIndex::PositionOf) — the
  /// candidate-queue seek key of the memoryless pipeline. Triggers the
  /// lazy index rebuild like label_index().
  uint32_t tgt_idx(uint32_t id) const {
    return label_index().PositionOf(id);
  }
  const std::vector<uint32_t>& OutEdges(uint32_t v) const { return out_[v]; }

  /// The label-stratified adjacency, rebuilt lazily after mutations.
  /// The first call after an AddVertex/AddEdge performs the O(|E| log d)
  /// rebuild and is not thread-safe; call it once (or keep the database
  /// immutable) before sharing across concurrent queries.
  const LabelIndex& label_index() const {
    if (index_dirty_) {
      BuildLabelIndex();
      index_dirty_ = false;
    }
    return label_index_;
  }

  LabelDictionary& labels() { return labels_; }
  const LabelDictionary& labels() const { return labels_; }

  /// Stable pointer to the dictionary for callers that intern labels
  /// while compiling queries against a live database (the regex front
  /// end). The pointer stays valid for the lifetime of this Database, and
  /// Intern is idempotent, so re-compiling a query never perturbs ids.
  LabelDictionary* mutable_dict() { return &labels_; }

 private:
  void BuildLabelIndex() const {
    LabelIndex& ix = label_index_;
    uint32_t v_count = num_vertices();
    ix.group_offsets_.assign(v_count + 1, 0);
    ix.groups_.clear();
    ix.targets_.clear();
    ix.targets_.reserve(edges_.size());
    ix.edge_pos_.assign(edges_.size(), 0);
    std::vector<uint32_t> buf;
    for (uint32_t v = 0; v < v_count; ++v) {
      ix.group_offsets_[v] = static_cast<uint32_t>(ix.groups_.size());
      buf.assign(out_[v].begin(), out_[v].end());
      // Stable: edges of one (v, label) group keep insertion order.
      std::stable_sort(buf.begin(), buf.end(),
                       [this](uint32_t a, uint32_t b) {
                         return edges_[a].label < edges_[b].label;
                       });
      for (uint32_t id : buf) {
        uint32_t label = edges_[id].label;
        if (ix.groups_.size() == ix.group_offsets_[v] ||
            ix.groups_.back().label != label) {
          uint32_t pos = static_cast<uint32_t>(ix.targets_.size());
          ix.groups_.push_back(LabelIndex::Group{label, pos, pos});
        }
        ix.edge_pos_[id] = static_cast<uint32_t>(ix.targets_.size());
        ix.targets_.push_back(LabelIndex::Target{id, edges_[id].dst});
        ++ix.groups_.back().end;
      }
    }
    ix.group_offsets_[v_count] = static_cast<uint32_t>(ix.groups_.size());
  }

  std::vector<Edge> edges_;
  std::vector<std::vector<uint32_t>> out_;  // vertex -> edge ids
  LabelDictionary labels_;
  mutable LabelIndex label_index_;
  mutable bool index_dirty_ = true;
  uint64_t generation_ = 0;
};

}  // namespace dsw

#endif  // DSW_CORE_DATABASE_H_
