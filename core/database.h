// Edge-labeled graph database D = (V, Sigma, E) with E a multiset of
// (src, label, dst) triples. Walks are sequences of *edge ids*, so two
// parallel edges between the same endpoints (even with distinct labels)
// yield distinct walks — the "distinct walk" granularity of the paper.
//
// Vertices and labels are dense uint32_t ids; LabelDictionary maps the
// human-readable label names used by workloads ("a", "b", "l0", ...) to
// ids and back.
//
// Besides the insertion-ordered OutEdges lists, the database maintains a
// CSR-style *label-stratified* adjacency (LabelIndex): per vertex, the
// out-edges grouped by label with an offset index. The annotate/trim hot
// paths iterate "distinct labels out of v" and then "edges of v with
// label l", so the per-edge label filtering of the naive adjacency never
// happens — and the per-(vertex, label) automaton move is computed once
// and shared across every edge of the group (parallel edges included).
//
// Mutation and reads are split by an explicit freeze point: AddVertex/
// AddEdge grow the edge tables, and Freeze() seals the current contents
// into an immutable Snapshot that owns the built LabelIndex and the
// generation stamp. Every read-path structure (Annotation, TrimmedIndex,
// ResumableIndex, the query engine) is constructed from a Snapshot, so
// nothing on the read path ever builds anything lazily — any number of
// threads can share one Snapshot with no synchronization at all. A
// mutation after Freeze() starts the next generation: old snapshots (and
// the indexes built from them) keep the loud generation assert instead
// of silently serving stale spans.

#ifndef DSW_CORE_DATABASE_H_
#define DSW_CORE_DATABASE_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dsw {

// Dense id aliases. Purely documentary (everything is uint32_t), but
// the bench/test code reads better when a variable says which id space
// it lives in.
using VertexId = uint32_t;
using EdgeId = uint32_t;

class LabelDictionary {
 public:
  static constexpr uint32_t kInvalid = UINT32_MAX;

  /// Returns the id of \p name, creating it if needed.
  uint32_t Intern(std::string_view name) {
    auto it = index_.find(name);  // heterogeneous: no temporary string
    if (it != index_.end()) return it->second;
    uint32_t id = static_cast<uint32_t>(names_.size());
    names_.emplace_back(name);
    index_.emplace(names_.back(), id);
    return id;
  }

  /// Returns the id of \p name or kInvalid if unknown.
  uint32_t Find(std::string_view name) const {
    auto it = index_.find(name);
    return it == index_.end() ? kInvalid : it->second;
  }

  const std::string& Name(uint32_t id) const { return names_[id]; }
  uint32_t size() const { return static_cast<uint32_t>(names_.size()); }

 private:
  // Transparent hashing: Intern/Find are called with string_views from
  // the regex front-end's hot loop, and a non-transparent map would
  // materialize a std::string per lookup.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<std::string> names_;
  std::unordered_map<std::string, uint32_t, Hash, std::equal_to<>> index_;
};

struct Edge {
  uint32_t src;
  uint32_t dst;
  uint32_t label;
};

/// CSR-style label-stratified adjacency. For each vertex the distinct
/// out-labels appear as Groups (sorted by label id); each group spans a
/// contiguous range of (edge id, dst) pairs, in insertion order — so
/// enumeration order stays deterministic and parallel edges sit next to
/// each other. The destination is denormalized into the pair so the
/// BFS/trim relax loops stream one array instead of chasing edge ids
/// into the edge table.
class LabelIndex {
 public:
  struct Group {
    uint32_t label;
    uint32_t begin;  // into the target pool, see Targets()
    uint32_t end;
  };

  struct Target {
    uint32_t edge;
    uint32_t dst;
  };

  /// Distinct labels out of \p v, one Group per label.
  std::span<const Group> GroupsOf(uint32_t v) const {
    return {groups_.data() + group_offsets_[v],
            groups_.data() + group_offsets_[v + 1]};
  }

  /// (edge id, dst) pairs of one (vertex, label) group.
  std::span<const Target> Targets(const Group& g) const {
    return {targets_.data() + g.begin, targets_.data() + g.end};
  }

  /// Position of \p edge in the target pool — its rank in the global
  /// (src, label, insertion) order. Within one vertex this is exactly
  /// the order the trimmed enumerator tries candidate edges in, which
  /// makes it the sort/seek key of the resumable candidate queues.
  uint32_t PositionOf(uint32_t edge) const { return edge_pos_[edge]; }

 private:
  friend class Database;
  std::vector<uint32_t> group_offsets_;  // vertex -> first group; size V+1
  std::vector<Group> groups_;
  std::vector<Target> targets_;  // grouped by (src, label)
  std::vector<uint32_t> edge_pos_;  // edge id -> position in targets_
};

class Snapshot;

/// Insert-only difference between two frozen generations of one
/// Database, as recorded by the freeze-time delta log: vertices
/// [first_new_vertex, num_vertices) and edges [first_new_edge,
/// num_edges) were inserted after the older generation, and nothing
/// else changed (the mutation API is append-only). known == false means
/// the older generation was never frozen or its mark aged out of the
/// bounded log — callers must fall back to a full rebuild.
struct EdgeDelta {
  bool known = false;
  uint32_t first_new_vertex = 0;
  uint32_t first_new_edge = 0;
};

class Database {
 public:
  uint32_t AddVertex() {
    out_.emplace_back();
    ++generation_;
    return static_cast<uint32_t>(out_.size() - 1);
  }

  /// Adds \p n vertices; returns the id of the first. A zero-vertex
  /// call changes nothing and is generation-neutral — bumping the
  /// counter here would retire every snapshot, session and cached plan
  /// for a mutation that never happened.
  uint32_t AddVertices(uint32_t n) {
    uint32_t first = num_vertices();
    if (n == 0) return first;
    out_.resize(out_.size() + n);
    ++generation_;
    return first;
  }

  /// Adds an edge with an already-interned label id; returns the edge id.
  uint32_t AddEdge(uint32_t src, uint32_t label, uint32_t dst) {
    assert(src < num_vertices() && "AddEdge: src is not a vertex id");
    assert(dst < num_vertices() && "AddEdge: dst is not a vertex id");
    uint32_t id = static_cast<uint32_t>(edges_.size());
    edges_.push_back(Edge{src, dst, label});
    out_[src].push_back(id);
    ++generation_;
    return id;
  }

  /// Adds an edge by label name, interning it on first use.
  uint32_t AddEdge(uint32_t src, std::string_view label, uint32_t dst) {
    return AddEdge(src, labels_.Intern(label), dst);
  }

  /// Monotonic mutation counter: bumped by every AddVertex/AddVertices/
  /// AddEdge (label interning does not count — it never perturbs the
  /// adjacency). Freeze() stamps it into the Snapshot, the index
  /// structures (TrimmedIndex, ResumableIndex) record it at build time,
  /// and both debug-assert it in their accessors: a mutation after
  /// Freeze() silently invalidates the spans, positions and rank arrays
  /// they hold, and the generation check turns that latent
  /// use-after-mutate into a loud assertion instead of wrong answers.
  uint64_t generation() const { return generation_; }

  uint32_t num_vertices() const { return static_cast<uint32_t>(out_.size()); }
  size_t num_edges() const { return edges_.size(); }
  /// |D| as used in the paper's complexity statements: |V| + |E|.
  size_t size() const { return num_vertices() + num_edges(); }

  const Edge& edge(uint32_t id) const { return edges_[id]; }
  uint32_t src(uint32_t id) const { return edges_[id].src; }
  uint32_t dst(uint32_t id) const { return edges_[id].dst; }
  const std::vector<uint32_t>& OutEdges(uint32_t v) const { return out_[v]; }

  /// Seals the current contents into an immutable Snapshot: builds the
  /// label-stratified adjacency (O(|E| log d), reusing the build when
  /// nothing mutated since the last freeze) and stamps the generation.
  /// Deliberately non-const — building the index is a mutation-path
  /// operation, so it can never race with the read path; the returned
  /// Snapshot (and copies of it) can then be shared across any number
  /// of reader threads with no synchronization. Defined after Snapshot.
  Snapshot Freeze();

  LabelDictionary& labels() { return labels_; }
  const LabelDictionary& labels() const { return labels_; }

  /// Stable pointer to the dictionary for callers that intern labels
  /// while compiling queries against a live database (the regex front
  /// end). The pointer stays valid for the lifetime of this Database, and
  /// Intern is idempotent, so re-compiling a query never perturbs ids.
  LabelDictionary* mutable_dict() { return &labels_; }

 private:
  friend class Snapshot;  // DeltaFrom reads the freeze-mark log

  void BuildLabelIndex(LabelIndex& ix) const {
    uint32_t v_count = num_vertices();
    ix.group_offsets_.assign(v_count + 1, 0);
    ix.groups_.clear();
    ix.targets_.clear();
    ix.targets_.reserve(edges_.size());
    ix.edge_pos_.assign(edges_.size(), 0);
    std::vector<uint32_t> buf;
    for (uint32_t v = 0; v < v_count; ++v) {
      ix.group_offsets_[v] = static_cast<uint32_t>(ix.groups_.size());
      buf.assign(out_[v].begin(), out_[v].end());
      // Stable: edges of one (v, label) group keep insertion order.
      std::stable_sort(buf.begin(), buf.end(),
                       [this](uint32_t a, uint32_t b) {
                         return edges_[a].label < edges_[b].label;
                       });
      for (uint32_t id : buf) {
        uint32_t label = edges_[id].label;
        if (ix.groups_.size() == ix.group_offsets_[v] ||
            ix.groups_.back().label != label) {
          uint32_t pos = static_cast<uint32_t>(ix.targets_.size());
          ix.groups_.push_back(LabelIndex::Group{label, pos, pos});
        }
        ix.edge_pos_[id] = static_cast<uint32_t>(ix.targets_.size());
        ix.targets_.push_back(LabelIndex::Target{id, edges_[id].dst});
        ++ix.groups_.back().end;
      }
    }
    ix.group_offsets_[v_count] = static_cast<uint32_t>(ix.groups_.size());
  }

  // One entry per frozen generation: the vertex/edge counts as of that
  // freeze. Since the mutation API is append-only, the delta between
  // two marks is exactly "the suffix inserted in between" — which is
  // what Snapshot::DeltaFrom serves to the incremental-maintenance
  // layer. Bounded: only the most recent kMaxFreezeMarks freezes stay
  // repairable; older generations fall back to a full rebuild.
  struct FreezeMark {
    uint64_t generation;
    uint32_t num_vertices;
    uint32_t num_edges;
  };
  static constexpr size_t kMaxFreezeMarks = 64;

  std::vector<Edge> edges_;
  std::vector<std::vector<uint32_t>> out_;  // vertex -> edge ids
  LabelDictionary labels_;
  std::vector<FreezeMark> freeze_marks_;  // ascending generation
  // The index built by the last Freeze() and the generation it captured;
  // shared with every Snapshot handed out, so re-freezing an unchanged
  // database is O(1) and old snapshots stay valid storage-wise even
  // after a rebuild (their generation assert governs *semantic*
  // validity).
  std::shared_ptr<const LabelIndex> frozen_index_;
  uint64_t frozen_generation_ = UINT64_MAX;  // != any real generation
  uint64_t generation_ = 0;
};

/// Immutable view of a Database as of one Freeze(): shares ownership of
/// the built LabelIndex and carries the generation stamp. Copying is
/// cheap (one shared_ptr); every member is const, so a Snapshot (and the
/// Annotation/TrimmedIndex/ResumableIndex built from it) can be read
/// from any number of threads concurrently — the read path performs no
/// lazy work whatsoever. The Database must outlive every snapshot of it
/// (the snapshot reads the edge tables through a back-pointer), and
/// mutating it retires them: debug builds assert on the next access,
/// mirroring TrimmedIndex::AssertFresh.
class Snapshot {
 public:
  /// Null snapshot (tests false); assign a real one from Freeze().
  Snapshot() = default;

  explicit operator bool() const { return db_ != nullptr; }

  /// Generation of the Database when this snapshot was frozen — the
  /// version key of the concurrent engine's session table.
  uint64_t generation() const { return generation_; }

  /// True iff the Database has not mutated since this freeze.
  bool fresh() const { return db_ != nullptr && db_->generation() == generation_; }

  /// Insert-only delta between \p prev_generation (an earlier frozen
  /// generation of the same Database) and this snapshot, from the
  /// freeze-time mark log. Unknown (never-frozen or aged-out)
  /// generations return known == false — the caller's cue to rebuild
  /// instead of repair. Defined after Database.
  EdgeDelta DeltaFrom(uint64_t prev_generation) const;

  /// Debug-only staleness check, same contract as
  /// TrimmedIndex::AssertFresh: compiled away under NDEBUG.
  void AssertFresh() const {
    assert(fresh() &&
           "stale Snapshot: the Database was mutated after Freeze()");
  }

  /// The underlying database. Prefer the forwarding accessors below —
  /// they carry the staleness assert.
  const Database& db() const { return *db_; }

  /// The label-stratified adjacency, built at freeze time. Plain const
  /// read; safe to share across threads.
  const LabelIndex& label_index() const {
    AssertFresh();
    return *index_;
  }

  /// Rank of edge \p id in the label-stratified target pool (the
  /// (src, label, insertion) order; see LabelIndex::PositionOf) — the
  /// candidate-queue seek key of the memoryless pipeline.
  uint32_t tgt_idx(uint32_t id) const { return label_index().PositionOf(id); }

  uint32_t num_vertices() const {
    AssertFresh();
    return db_->num_vertices();
  }
  size_t num_edges() const {
    AssertFresh();
    return db_->num_edges();
  }
  /// |D| = |V| + |E|, as in the paper's complexity statements.
  size_t size() const {
    AssertFresh();
    return db_->size();
  }
  const Edge& edge(uint32_t id) const {
    AssertFresh();
    return db_->edge(id);
  }
  uint32_t src(uint32_t id) const { return edge(id).src; }
  uint32_t dst(uint32_t id) const { return edge(id).dst; }
  const std::vector<uint32_t>& OutEdges(uint32_t v) const {
    AssertFresh();
    return db_->OutEdges(v);
  }
  const LabelDictionary& labels() const {
    AssertFresh();
    return db_->labels();
  }

 private:
  friend class Database;
  Snapshot(const Database* db, std::shared_ptr<const LabelIndex> index,
           uint64_t generation)
      : db_(db), index_(std::move(index)), generation_(generation) {}

  const Database* db_ = nullptr;
  std::shared_ptr<const LabelIndex> index_;
  uint64_t generation_ = 0;
};

inline Snapshot Database::Freeze() {
  if (!frozen_index_ || frozen_generation_ != generation_) {
    auto ix = std::make_shared<LabelIndex>();
    BuildLabelIndex(*ix);
    frozen_index_ = std::move(ix);
    frozen_generation_ = generation_;
  }
  if (freeze_marks_.empty() || freeze_marks_.back().generation != generation_) {
    if (freeze_marks_.size() >= kMaxFreezeMarks)
      freeze_marks_.erase(freeze_marks_.begin());
    freeze_marks_.push_back(FreezeMark{generation_, num_vertices(),
                                       static_cast<uint32_t>(num_edges())});
  }
  return Snapshot(this, frozen_index_, generation_);
}

inline EdgeDelta Snapshot::DeltaFrom(uint64_t prev_generation) const {
  AssertFresh();
  if (prev_generation == generation_)
    return EdgeDelta{true, db_->num_vertices(),
                     static_cast<uint32_t>(db_->num_edges())};
  if (prev_generation > generation_) return EdgeDelta{};
  for (const Database::FreezeMark& mark : db_->freeze_marks_)
    if (mark.generation == prev_generation)
      return EdgeDelta{true, mark.num_vertices, mark.num_edges};
  return EdgeDelta{};
}

}  // namespace dsw

#endif  // DSW_CORE_DATABASE_H_
