// Stage 3 of the pipeline: enumeration of the distinct shortest walks.
//
// Distinctness is the crux: one walk can carry many accepting runs (the
// duplicate blow-up of the naive baseline, E7). The enumerator therefore
// walks the prefix tree of *edge sequences*, not product paths. Each
// stack frame holds the set R of useful states reachable by some run of
// the current prefix; extending by a candidate edge e advances R in
// O(|A|) as a word-parallel OR of the annotation's precompiled delta
// rows (label of e), masked by the destination's useful set at the next
// level. By the trimming invariant, R nonempty means the prefix extends
// to at least one answer, so every interior node of the explored tree
// leads to output and every answer is emitted exactly once, in
// depth-first order over candidate-edge lists.
//
// Delay (Theorem 2): each frame derives its *live* candidate positions
// from the reachable set R through the index's certificate structure
// (TrimmedIndex::BList) — the next candidate is a min over R of O(1)
// next-usable loads, never a trial advance over a possibly-dead edge.
// Every candidate the enumerator touches therefore extends to an
// answer, and the worst-case gap between two outputs is at most lambda
// pops plus lambda pushes, each O(|A|): the paper's O(lambda x |A|)
// delay, independent of |D| and of dead-candidate fanout. OpStats
// counts the delta-row ORs and certificate probes so the bound is
// testable without a timer.
//
// All answers have length exactly lambda (shortest-walk semantics), so
// output order is trivially non-decreasing in length. lambda == 0
// (source == target, query accepts the empty word) yields the single
// empty walk.

#ifndef DSW_CORE_ENUMERATOR_H_
#define DSW_CORE_ENUMERATOR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/annotate.h"
#include "core/database.h"
#include "core/trimmed_index.h"
#include "core/walk.h"
#include "util/state_set.h"

namespace dsw {

namespace enumerator_detail {

/// The kernel-generic body of AdvanceStates (see util/word_kernel.h for
/// the execution-tier story); prefer AdvanceStates, which dispatches.
template <typename Kernel>
inline bool AdvanceStatesWith(Kernel ker, const CompiledDelta& delta,
                              const StateSet& from, uint32_t label,
                              StateSetView useful_next, StateSet* out,
                              uint64_t* row_ors) {
  uint64_t* ow = out->mutable_words();
  ker.Zero(ow);
  uint64_t rows = 0;
  ker.ForEachBit(from.words(), [&](uint32_t q) {
    ++rows;
    ker.Or(ow, delta.SuccessorWords(label, q));
  });
  if (row_ors) *row_ors += rows;
  ker.And(ow, useful_next.words());
  return ker.Any(ow);
}

/// One enumeration step of the reachable-run set, shared by the stateful
/// and the memoryless enumerator: out = (union over q in from of
/// delta[label][q]) AND useful_next. Returns whether any run of the
/// extended prefix survives — false means the candidate edge is dead for
/// this prefix. \p out must have capacity >= the delta's state count;
/// \p wps is the word count of one set. When \p row_ors is non-null it
/// is incremented by the number of delta-row ORs performed (the
/// ResumableEnumerator's op accounting; the count falls out of the
/// bit walk for free, no extra set scan — identical in both kernel
/// tiers). \p allow_single_word is the test/bench knob forcing the
/// generic multi-word instantiation onto one-word queries.
inline bool AdvanceStates(const CompiledDelta& delta, uint32_t wps,
                          const StateSet& from, uint32_t label,
                          StateSetView useful_next, StateSet* out,
                          uint64_t* row_ors = nullptr,
                          bool allow_single_word = true) {
  if (wps == 1 && allow_single_word)
    return AdvanceStatesWith(SingleWordKernel(), delta, from, label,
                             useful_next, out, row_ors);
  return AdvanceStatesWith(MultiWordKernel(wps), delta, from, label,
                           useful_next, out, row_ors);
}

}  // namespace enumerator_detail

class TrimmedEnumerator {
 public:
  /// Operation counts of the work FindNext actually performs — the
  /// CI-stable proxy for the Theorem 2 delay bound (wall clock is too
  /// noisy to assert on). Between two outputs, row_ors <= lambda x |R|
  /// and probes <= (2 x lambda + 1) x |R| with |R| <= |Q|; both are
  /// independent of |D| and of the candidate fanout.
  struct OpStats {
    uint64_t row_ors = 0;  // delta-row ORs (state-set advances)
    uint64_t probes = 0;   // certificate next-usable loads (NextLive)
    uint64_t total() const { return row_ors + probes; }
  };

  /// The annotation and index must outlive the enumerator; \p source and
  /// \p target must match the ones the annotation was built from. The
  /// database is not consulted at all — candidate edges denormalize
  /// everything — so any number of enumerators can run concurrently over
  /// one shared (annotation, index) pair. \p force_multi_word is the
  /// test/bench knob running the generic multi-word kernels even on a
  /// one-word query (bit-identical answers, order and OpStats).
  TrimmedEnumerator(const Annotation& ann, const TrimmedIndex& index,
                    uint32_t source, uint32_t target,
                    bool force_multi_word = false);

  /// True while positioned on an answer.
  bool Valid() const { return valid_; }

  /// Advances to the next answer, or invalidates the enumerator.
  void Next();

  /// The current answer; only meaningful while Valid().
  const Walk& walk() const { return walk_; }

  const OpStats& stats() const { return stats_; }
  void ResetStats() { stats_ = OpStats(); }

 private:
  struct Frame {
    uint32_t vertex = 0;
    StateSet states;        // useful states reachable by the prefix
    uint32_t edge_pos = 0;  // next candidate position to consider
    // Candidate edges and certificate structure of (depth, vertex),
    // resolved once when the frame is entered so revisits skip the
    // index lookup. blist.useful is the mask states was built with, so
    // states ⊆ blist.useful — the NextLive precondition.
    std::span<const TrimmedIndex::CandidateEdge> cand;
    TrimmedIndex::BList blist;
  };

  void FindNext();

  const TrimmedIndex* index_;
  const CompiledDelta* delta_;  // the annotation's query snapshot
  int32_t lambda_;
  uint32_t wps_ = 0;         // words per state set, cached off the index
  bool single_word_ = true;  // run the single-word kernels (wps == 1)
  // All lambda + 1 frames are allocated up front and reused in place, so
  // steady-state enumeration performs no heap allocation (the per-output
  // delay must not depend on the allocator). stack_[i] describes the
  // position after i edges; frames above depth_ are scratch.
  std::vector<Frame> stack_;
  uint32_t depth_ = 0;
  Walk walk_;
  bool valid_ = false;
  OpStats stats_;
};

}  // namespace dsw

#endif  // DSW_CORE_ENUMERATOR_H_
