// Nondeterministic finite automaton over the database's label alphabet,
// with optional epsilon-transitions. Queries (RPQs) reach the engine in
// this compiled form; the regex front-end produces either an epsilon-NFA
// (Thompson, automaton/thompson.h) or an epsilon-free NFA (Glushkov,
// automaton/glushkov.h) targeting this same type. Section 5.1 of the
// paper shows epsilon handling is free for the pipeline: Annotate
// saturates state sets with epsilon-closures, so downstream stages never
// see epsilon at all.

#ifndef DSW_CORE_NFA_H_
#define DSW_CORE_NFA_H_

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/state_set.h"

namespace dsw {

// Dense automaton-state id; documentary, like VertexId/EdgeId.
using StateId = uint32_t;

class Nfa {
 public:
  // (label, target) pairs; per-state fan-out is small, linear scans are
  // faster than a map here.
  using TransitionList = std::vector<std::pair<uint32_t, uint32_t>>;

  explicit Nfa(uint32_t num_states = 0)
      : trans_(num_states),
        eps_(num_states),
        initial_(num_states),
        final_(num_states) {}

  uint32_t AddState() {
    trans_.emplace_back();
    eps_.emplace_back();
    initial_.Resize(num_states() + 1);
    final_.Resize(num_states() + 1);
    return static_cast<uint32_t>(trans_.size() - 1);
  }

  void AddInitial(uint32_t q) { initial_.Set(q); }
  void AddFinal(uint32_t q) { final_.Set(q); }

  void AddTransition(uint32_t from, uint32_t label, uint32_t to) {
    trans_[from].emplace_back(label, to);
    ++num_transitions_;
  }

  void AddEpsilonTransition(uint32_t from, uint32_t to) {
    eps_[from].push_back(to);
    ++num_epsilon_transitions_;
  }

  uint32_t num_states() const { return static_cast<uint32_t>(trans_.size()); }
  size_t num_transitions() const { return num_transitions_; }
  size_t num_epsilon_transitions() const { return num_epsilon_transitions_; }
  bool has_epsilon() const { return num_epsilon_transitions_ > 0; }

  const StateSet& initial() const { return initial_; }
  const StateSet& final_states() const { return final_; }
  bool IsFinal(uint32_t q) const { return final_.Test(q); }

  const TransitionList& Transitions(uint32_t q) const { return trans_[q]; }
  const std::vector<uint32_t>& EpsilonSuccessors(uint32_t q) const {
    return eps_[q];
  }

  /// Per-state epsilon-closures (each includes the state itself). Safe on
  /// epsilon-cycles; O(|Q| x (|Q| + |eps|)) — |Q| is small.
  std::vector<StateSet> EpsilonClosures() const {
    std::vector<StateSet> closure(num_states());
    std::vector<uint32_t> stack;
    for (uint32_t q = 0; q < num_states(); ++q) {
      closure[q].Resize(num_states());
      closure[q].Set(q);
      stack.assign(1, q);
      while (!stack.empty()) {
        uint32_t u = stack.back();
        stack.pop_back();
        for (uint32_t r : eps_[u]) {
          if (closure[q].Test(r)) continue;
          closure[q].Set(r);
          stack.push_back(r);
        }
      }
    }
    return closure;
  }

  /// Subset-construction membership test; used by tests and baselines,
  /// not by the enumeration pipeline.
  bool Accepts(const std::vector<uint32_t>& word) const {
    if (num_states() == 0) return false;
    std::vector<StateSet> closures;
    if (has_epsilon()) closures = EpsilonClosures();
    auto close = [&](StateSet* s) {
      if (closures.empty()) return;
      StateSet closed(num_states());
      s->ForEach([&](uint32_t q) { closed |= closures[q]; });
      *s = std::move(closed);
    };
    StateSet cur = initial_;
    close(&cur);
    for (uint32_t label : word) {
      StateSet next(num_states());
      cur.ForEach([&](uint32_t q) {
        for (const auto& [l, to] : trans_[q])
          if (l == label) next.Set(to);
      });
      close(&next);
      cur = std::move(next);
      if (cur.None()) return false;
    }
    return cur.Intersects(final_);
  }

 private:
  std::vector<TransitionList> trans_;
  std::vector<std::vector<uint32_t>> eps_;  // state -> epsilon successors
  StateSet initial_;
  StateSet final_;
  size_t num_transitions_ = 0;
  size_t num_epsilon_transitions_ = 0;
};

/// Precompiled transition relation: for every (label, state) the set of
/// states reachable by one *effective* step label . eps* — the
/// after-side epsilon-closure is composed in at build time, so epsilon
/// never surfaces downstream. (The before-side closure is deliberately
/// not composed: annotation levels are closure-saturated, so every
/// epsilon-mate is scanned in its own right; see core/annotate.h.)
///
/// Successor sets live in one contiguous word pool, indexed
/// [label][state]: the annotate/trim hot paths move a whole frontier set
/// across a label as a word-parallel OR of delta rows instead of
/// scanning TransitionLists per edge. Size is O(num_labels x |Q|^2 / 64)
/// words — built once per Annotate call, amortized over the product BFS.
class CompiledDelta {
 public:
  CompiledDelta() = default;

  explicit CompiledDelta(const Nfa& nfa)
      : CompiledDelta(nfa, nfa.has_epsilon() ? nfa.EpsilonClosures()
                                             : std::vector<StateSet>()) {}

  /// As above with the epsilon-closures precomputed — callers that also
  /// keep the closures (Annotate snapshots them) compute them once and
  /// share. \p closures must be nfa.EpsilonClosures() or empty for an
  /// epsilon-free query.
  CompiledDelta(const Nfa& nfa, const std::vector<StateSet>& closures)
      : num_states_(nfa.num_states()),
        words_per_set_(static_cast<uint32_t>((nfa.num_states() + 63) / 64)) {
    for (uint32_t q = 0; q < num_states_; ++q)
      for (const auto& [label, to] : nfa.Transitions(q)) {
        (void)to;
        if (label + 1 > num_labels_) num_labels_ = label + 1;
      }
    words_.assign(static_cast<size_t>(num_labels_) * num_states_ *
                      words_per_set_,
                  0);
    rev_words_.assign(words_.size(), 0);
    label_used_.assign(num_labels_, 0);
    sources_.assign(static_cast<size_t>(num_labels_) * words_per_set_, 0);

    for (uint32_t q = 0; q < num_states_; ++q)
      for (const auto& [label, to] : nfa.Transitions(q)) {
        label_used_[label] = 1;
        sources_[static_cast<size_t>(label) * words_per_set_ + (q >> 6)] |=
            uint64_t{1} << (q & 63);
        uint64_t* row = MutableRow(words_, label, q);
        const uint64_t q_bit = uint64_t{1} << (q & 63);
        if (closures.empty()) {
          row[to >> 6] |= uint64_t{1} << (to & 63);
          MutableRow(rev_words_, label, to)[q >> 6] |= q_bit;
        } else {
          const uint64_t* cw = closures[to].words();
          for (uint32_t w = 0; w < words_per_set_; ++w) row[w] |= cw[w];
          closures[to].ForEach([&](uint32_t t) {
            MutableRow(rev_words_, label, t)[q >> 6] |= q_bit;
          });
        }
      }
  }

  uint32_t num_states() const { return num_states_; }
  uint32_t num_labels() const { return num_labels_; }
  uint32_t words_per_set() const { return words_per_set_; }

  /// True iff the automaton has any transition on \p label; lets the
  /// product BFS skip whole (vertex, label) edge groups.
  bool HasLabel(uint32_t label) const {
    return label < num_labels_ && label_used_[label] != 0;
  }

  /// Raw words of delta[label][q]; exactly words_per_set() words.
  /// Precondition: HasLabel(label) (rows of unused in-range labels are
  /// valid and empty, out-of-range labels are not addressable).
  const uint64_t* SuccessorWords(uint32_t label, uint32_t q) const {
    return &words_[(static_cast<size_t>(label) * num_states_ + q) *
                   words_per_set_];
  }

  StateSetView Successors(uint32_t label, uint32_t q) const {
    return {SuccessorWords(label, q), num_states_};
  }

  /// Raw words of the reverse relation: the states q with
  /// t in delta[label][q], i.e. q -label.eps*-> t. The trimmed index's
  /// backward sweep ORs these rows over a useful set to get "states with
  /// a surviving move" in one word-parallel pass.
  const uint64_t* ReverseWords(uint32_t label, uint32_t t) const {
    return &rev_words_[(static_cast<size_t>(label) * num_states_ + t) *
                       words_per_set_];
  }

  StateSetView Predecessors(uint32_t label, uint32_t t) const {
    return {ReverseWords(label, t), num_states_};
  }

  /// States with at least one transition on \p label — intersect a
  /// frontier with this before walking delta rows to skip dead states.
  StateSetView Sources(uint32_t label) const {
    return {&sources_[static_cast<size_t>(label) * words_per_set_],
            num_states_};
  }

  // Single-word row access, the execution-tier layer's scalar API
  // (core/query_traits.h): for |Q| <= 64 every row is exactly one
  // uint64_t, and these return it by value — no pointer chase at the
  // call site, and the natural operands for the SingleWordKernel
  // instantiations. Precondition: words_per_set() == 1 (asserted).

  /// delta[label][q] as one word; requires words_per_set() == 1.
  uint64_t SuccessorWord(uint32_t label, uint32_t q) const {
    assert(words_per_set_ == 1);
    return words_[static_cast<size_t>(label) * num_states_ + q];
  }

  /// Reverse relation row as one word; requires words_per_set() == 1.
  uint64_t ReverseWord(uint32_t label, uint32_t t) const {
    assert(words_per_set_ == 1);
    return rev_words_[static_cast<size_t>(label) * num_states_ + t];
  }

  /// Sources(label) as one word; requires words_per_set() == 1.
  uint64_t SourcesWord(uint32_t label) const {
    assert(words_per_set_ == 1);
    return sources_[label];
  }

  /// Heap footprint estimate, for the plan cache's byte budget.
  size_t ApproxBytes() const {
    return (words_.capacity() + rev_words_.capacity() +
            sources_.capacity()) *
               sizeof(uint64_t) +
           label_used_.capacity();
  }

 private:
  uint64_t* MutableRow(std::vector<uint64_t>& pool, uint32_t label,
                       uint32_t q) {
    return &pool[(static_cast<size_t>(label) * num_states_ + q) *
                 words_per_set_];
  }

  uint32_t num_states_ = 0;
  uint32_t num_labels_ = 0;
  uint32_t words_per_set_ = 0;
  std::vector<uint64_t> words_;      // [label][state] -> successor set
  std::vector<uint64_t> rev_words_;  // [label][state] -> predecessor set
  std::vector<uint64_t> sources_;    // [label] -> states with a transition
  std::vector<uint8_t> label_used_;
};

}  // namespace dsw

#endif  // DSW_CORE_NFA_H_
