// Nondeterministic finite automaton over the database's label alphabet.
// Queries (RPQs) reach the engine in this compiled form; the regex
// front-end (Thompson/Glushkov) of Section 5 will target this same type.

#ifndef DSW_CORE_NFA_H_
#define DSW_CORE_NFA_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/state_set.h"

namespace dsw {

class Nfa {
 public:
  // (label, target) pairs; per-state fan-out is small, linear scans are
  // faster than a map here.
  using TransitionList = std::vector<std::pair<uint32_t, uint32_t>>;

  explicit Nfa(uint32_t num_states = 0)
      : trans_(num_states), initial_(num_states), final_(num_states) {}

  uint32_t AddState() {
    trans_.emplace_back();
    initial_.Resize(num_states() + 1);
    final_.Resize(num_states() + 1);
    return static_cast<uint32_t>(trans_.size() - 1);
  }

  void AddInitial(uint32_t q) { initial_.Set(q); }
  void AddFinal(uint32_t q) { final_.Set(q); }

  void AddTransition(uint32_t from, uint32_t label, uint32_t to) {
    trans_[from].emplace_back(label, to);
    ++num_transitions_;
  }

  uint32_t num_states() const { return static_cast<uint32_t>(trans_.size()); }
  size_t num_transitions() const { return num_transitions_; }

  const StateSet& initial() const { return initial_; }
  const StateSet& final_states() const { return final_; }
  bool IsFinal(uint32_t q) const { return final_.Test(q); }

  const TransitionList& Transitions(uint32_t q) const { return trans_[q]; }

  /// Subset-construction membership test; used by tests and baselines,
  /// not by the enumeration pipeline.
  bool Accepts(const std::vector<uint32_t>& word) const {
    StateSet cur = initial_;
    for (uint32_t label : word) {
      StateSet next(num_states());
      cur.ForEach([&](uint32_t q) {
        for (const auto& [l, to] : trans_[q])
          if (l == label) next.Set(to);
      });
      cur = std::move(next);
      if (cur.None()) return false;
    }
    return cur.Intersects(final_);
  }

 private:
  std::vector<TransitionList> trans_;
  StateSet initial_;
  StateSet final_;
  size_t num_transitions_ = 0;
};

}  // namespace dsw

#endif  // DSW_CORE_NFA_H_
