// Nondeterministic finite automaton over the database's label alphabet,
// with optional epsilon-transitions. Queries (RPQs) reach the engine in
// this compiled form; the regex front-end produces either an epsilon-NFA
// (Thompson, automaton/thompson.h) or an epsilon-free NFA (Glushkov,
// automaton/glushkov.h) targeting this same type. Section 5.1 of the
// paper shows epsilon handling is free for the pipeline: Annotate
// saturates state sets with epsilon-closures, so downstream stages never
// see epsilon at all.

#ifndef DSW_CORE_NFA_H_
#define DSW_CORE_NFA_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "util/state_set.h"

namespace dsw {

class Nfa {
 public:
  // (label, target) pairs; per-state fan-out is small, linear scans are
  // faster than a map here.
  using TransitionList = std::vector<std::pair<uint32_t, uint32_t>>;

  explicit Nfa(uint32_t num_states = 0)
      : trans_(num_states),
        eps_(num_states),
        initial_(num_states),
        final_(num_states) {}

  uint32_t AddState() {
    trans_.emplace_back();
    eps_.emplace_back();
    initial_.Resize(num_states() + 1);
    final_.Resize(num_states() + 1);
    return static_cast<uint32_t>(trans_.size() - 1);
  }

  void AddInitial(uint32_t q) { initial_.Set(q); }
  void AddFinal(uint32_t q) { final_.Set(q); }

  void AddTransition(uint32_t from, uint32_t label, uint32_t to) {
    trans_[from].emplace_back(label, to);
    ++num_transitions_;
  }

  void AddEpsilonTransition(uint32_t from, uint32_t to) {
    eps_[from].push_back(to);
    ++num_epsilon_transitions_;
  }

  uint32_t num_states() const { return static_cast<uint32_t>(trans_.size()); }
  size_t num_transitions() const { return num_transitions_; }
  size_t num_epsilon_transitions() const { return num_epsilon_transitions_; }
  bool has_epsilon() const { return num_epsilon_transitions_ > 0; }

  const StateSet& initial() const { return initial_; }
  const StateSet& final_states() const { return final_; }
  bool IsFinal(uint32_t q) const { return final_.Test(q); }

  const TransitionList& Transitions(uint32_t q) const { return trans_[q]; }
  const std::vector<uint32_t>& EpsilonSuccessors(uint32_t q) const {
    return eps_[q];
  }

  /// Per-state epsilon-closures (each includes the state itself). Safe on
  /// epsilon-cycles; O(|Q| x (|Q| + |eps|)) — |Q| is small.
  std::vector<StateSet> EpsilonClosures() const {
    std::vector<StateSet> closure(num_states());
    std::vector<uint32_t> stack;
    for (uint32_t q = 0; q < num_states(); ++q) {
      closure[q].Resize(num_states());
      closure[q].Set(q);
      stack.assign(1, q);
      while (!stack.empty()) {
        uint32_t u = stack.back();
        stack.pop_back();
        for (uint32_t r : eps_[u]) {
          if (closure[q].Test(r)) continue;
          closure[q].Set(r);
          stack.push_back(r);
        }
      }
    }
    return closure;
  }

  /// Subset-construction membership test; used by tests and baselines,
  /// not by the enumeration pipeline.
  bool Accepts(const std::vector<uint32_t>& word) const {
    if (num_states() == 0) return false;
    std::vector<StateSet> closures;
    if (has_epsilon()) closures = EpsilonClosures();
    auto close = [&](StateSet* s) {
      if (closures.empty()) return;
      StateSet closed(num_states());
      s->ForEach([&](uint32_t q) { closed |= closures[q]; });
      *s = std::move(closed);
    };
    StateSet cur = initial_;
    close(&cur);
    for (uint32_t label : word) {
      StateSet next(num_states());
      cur.ForEach([&](uint32_t q) {
        for (const auto& [l, to] : trans_[q])
          if (l == label) next.Set(to);
      });
      close(&next);
      cur = std::move(next);
      if (cur.None()) return false;
    }
    return cur.Intersects(final_);
  }

 private:
  std::vector<TransitionList> trans_;
  std::vector<std::vector<uint32_t>> eps_;  // state -> epsilon successors
  StateSet initial_;
  StateSet final_;
  size_t num_transitions_ = 0;
  size_t num_epsilon_transitions_ = 0;
};

}  // namespace dsw

#endif  // DSW_CORE_NFA_H_
