// The memoryless enumeration index (Section 4.2 / Theorem 18). The
// stateful TrimmedEnumerator keeps a stack of per-level cursors between
// outputs; the memoryless variant keeps *nothing* — given only the
// previous answer, the next one is recomputed in O(lambda x |A|) by a
// guided run that repositions every level's cursor from the answer's
// edges alone. That makes enumeration pageable and restartable: a
// server can ship an answer to a client, drop the query's enumeration
// state entirely, and resume from the answer echoed back later.
//
// ResumableIndex is the structure that makes the guided run cheap. It
// owns a TrimmedIndex (same reverse-row backward sweep, same candidate
// pool contents) and re-lays the per-(level, vertex) candidate lists
// out as *queues sorted by the global target-pool rank* (Database::
// tgt_idx — within one vertex, exactly the order the enumerator tries
// candidates in), each with a flat rank array over the vertex's
// out-edge span:
//
//   rank[k] = #candidates of the queue whose (tgt_idx - span_begin) < k
//
// so SeekGe(edge) — "cursor of the first candidate at or after this
// edge" — is one subtraction and one load, O(1), instead of the linear
// queue re-advance that costs an extra in-degree factor d (the E8
// strawman). Rank arrays cost O(sum of out-degrees over useful
// (level, vertex) pairs) <= O(|D| x |A|) words, within the paper's
// index budget.
//
// Cursors are plain indexes into the shared candidate pool; the
// queue-walking API (RestartCursor / Peek / Advanced / Exhausted) is
// deliberately value-oriented so an enumerator holds no pointers into
// the index and the whole (index, previous answer) pair is trivially
// serializable — the memoryless property made concrete.

#ifndef DSW_CORE_RESUMABLE_INDEX_H_
#define DSW_CORE_RESUMABLE_INDEX_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "core/annotate.h"
#include "core/database.h"
#include "core/trimmed_index.h"
#include "util/state_set.h"

namespace dsw {

/// Sentinel of SlotOf/SlotAt: no queue for that (vertex, state) /
/// (level, vertex).
inline constexpr uint32_t kNoSlot = UINT32_MAX;

class ResumableIndex {
 public:
  /// One queue entry: TrimmedIndex::CandidateEdge plus the seek key.
  struct Candidate {
    uint32_t edge;
    uint32_t dst;
    uint32_t label;
    uint32_t next_pos;  // dst's position in useful level + 1
    uint32_t tgt_idx;   // Database::tgt_idx(edge), the queue sort key
  };

  /// Builds the trimmed structure (one backward sweep) and the sorted
  /// queues + rank arrays on top; a pure read of the snapshot, safe to
  /// run concurrently with other readers. Release builds never consult
  /// the database after construction; debug builds keep a back-pointer
  /// for the stale-snapshot assertion (TrimmedIndex::AssertFresh), so
  /// there the database must outlive the index. \p opts selects the
  /// sequential or sharded backward sweep (same structure either way).
  ResumableIndex(const Snapshot& snap, const Annotation& ann,
                 const AnnotateOptions& opts = {});

  /// Same queues + rank arrays on top of an already-built trimmed
  /// structure (taken by value; move it in). This is the delta-repair
  /// path: DeltaTrim patched the old TrimmedIndex against an insert-only
  /// delta and only the queue layout remains to be rebuilt. \p trimmed
  /// must describe \p ann against \p snap.
  ResumableIndex(const Snapshot& snap, const Annotation& ann,
                 TrimmedIndex trimmed);

  /// The underlying trimmed structure (useful sets, lambda, etc.).
  const TrimmedIndex& trimmed() const { return trimmed_; }
  bool empty() const { return trimmed_.empty(); }

  /// Number of per-(level, vertex) queues.
  uint32_t num_queues() const { return static_cast<uint32_t>(level_.size()); }

  // ------------------------------------------------------- slot lookup

  /// Queue of vertex \p v at the unique level where state \p p is useful
  /// at v (each product pair lives on exactly one BFS level), or kNoSlot
  /// when (v, p) is not useful anywhere below lambda. This is the
  /// per-pair-queue view of the paper; all states useful at the same
  /// (level, v) share one physical queue.
  uint32_t SlotOf(uint32_t v, uint32_t p) const {
    if (v + 1 >= vertex_slot_off_.size()) return kNoSlot;
    for (uint32_t i = vertex_slot_off_[v]; i < vertex_slot_off_[v + 1];
         ++i) {
      uint32_t s = vertex_slots_[i];
      StateSetView useful =
          trimmed_.UsefulStates(level_[s], s - level_base_[level_[s]]);
      if (p < useful.capacity() && useful.Test(p)) return s;
    }
    return kNoSlot;
  }

  /// Queue of (level, vertex) directly — the guided run knows the level.
  /// O(log |level|) binary search over the level's sorted vertices.
  uint32_t SlotAt(uint32_t level, uint32_t v) const {
    if (level + 1 >= level_base_.size()) return kNoSlot;
    size_t pos = trimmed_.UsefulLevel(level).FindIndex(v);
    if (pos == LevelSets::npos) return kNoSlot;
    return level_base_[level] + static_cast<uint32_t>(pos);
  }

  /// Queue of the vertex at position \p pos of useful level \p level —
  /// the O(1) variant for positions recorded in Candidate::next_pos
  /// (slots are laid out level-major in useful-level order, so this is
  /// plain arithmetic; no binary search anywhere on the hot path).
  /// Precondition: level < lambda and pos < |useful level|.
  uint32_t SlotAtPos(uint32_t level, uint32_t pos) const {
    return level_base_[level] + pos;
  }

  uint32_t level_of(uint32_t slot) const { return level_[slot]; }
  uint32_t vertex_of(uint32_t slot) const { return vertex_[slot]; }

  // ---------------------------------------------------- queue walking

  /// Cursor at the front of the queue.
  uint32_t RestartCursor(uint32_t slot) const { return cand_begin_[slot]; }

  /// Cursor one past the last entry (where SeekGe lands when every
  /// entry precedes the key).
  uint32_t EndCursor(uint32_t slot) const { return cand_end_[slot]; }

  bool Exhausted(uint32_t slot, uint32_t cur) const {
    return cur >= cand_end_[slot];
  }

  /// The entry under the cursor; only meaningful while !Exhausted.
  const Candidate& Peek([[maybe_unused]] uint32_t slot,
                        uint32_t cur) const {
    assert(!Exhausted(slot, cur) && "Peek past the end of the queue");
    return pool_[cur];
  }

  /// The cursor after \p cur; O(1).
  uint32_t Advanced(uint32_t slot, uint32_t cur) const {
    (void)slot;
    return cur + 1;
  }

  /// True iff \p edge is an out-edge of the slot's vertex — the
  /// precondition of SeekGe (any edge id is safe to pass here).
  bool SpanContains(uint32_t slot, uint32_t edge) const {
    return edge < edge_tgt_.size() &&
           edge_tgt_[edge] - span_begin_[slot] < span_len_[slot];
  }

  /// Cursor of the first queue entry whose tgt_idx is >= tgt_idx(edge)
  /// (== the entry for \p edge itself when the edge is in the queue);
  /// EndCursor(slot) when all entries precede it. O(1): one rank-array
  /// load. Precondition: SpanContains(slot, edge).
  uint32_t SeekGe(uint32_t slot, uint32_t edge) const {
    trimmed_.AssertFresh();
    assert(SpanContains(slot, edge) &&
           "SeekGe: edge is not an out-edge of the slot's vertex");
    uint32_t rel = edge_tgt_[edge] - span_begin_[slot];
    return cand_begin_[slot] + rank_pool_[rank_begin_[slot] + rel];
  }

  /// Certificate (B-list) structure of the slot's queue. Queue entries
  /// mirror the trimmed candidate list position for position, so the
  /// B-list positions are cursor offsets from RestartCursor(slot).
  TrimmedIndex::BList BListOf(uint32_t slot) const {
    const uint32_t level = level_[slot];
    return trimmed_.BListAt(level, slot - level_base_[level]);
  }

  /// The pool entry under a cursor — for callers that carry (cur, end)
  /// pairs themselves (the enumerator's frames) instead of re-supplying
  /// the slot on every read.
  const Candidate& At(uint32_t cur) const { return pool_[cur]; }

  /// The queue as a span — introspection for the structural-invariant
  /// tests; the enumerator walks cursors instead.
  std::span<const Candidate> Queue(uint32_t slot) const {
    return {pool_.data() + cand_begin_[slot],
            pool_.data() + cand_end_[slot]};
  }

  /// Heap footprint estimate (including the owned TrimmedIndex), for
  /// the plan cache's byte budget.
  size_t ApproxBytes() const {
    auto u32 = [](const std::vector<uint32_t>& v) {
      return v.capacity() * sizeof(uint32_t);
    };
    return sizeof(ResumableIndex) - sizeof(TrimmedIndex) +
           trimmed_.ApproxBytes() + pool_.capacity() * sizeof(Candidate) +
           u32(level_base_) + u32(level_) + u32(vertex_) + u32(cand_begin_) +
           u32(cand_end_) + u32(span_begin_) + u32(span_len_) +
           u32(rank_begin_) + u32(rank_pool_) + u32(edge_tgt_) +
           u32(vertex_slot_off_) + u32(vertex_slots_);
  }

 private:
  // Lays out the queues, rank arrays, and the vertex-slot CSR from
  // trimmed_ (shared tail of both constructors).
  void BuildQueues(const Snapshot& snap, const Annotation& ann);

  TrimmedIndex trimmed_;

  // Queues are allocated level-major, in useful-level vertex order, so
  // slot id == level_base_[level] + position-in-level and every array
  // below is indexed by slot.
  std::vector<uint32_t> level_base_;  // level -> first slot; size lambda+1
  std::vector<uint32_t> level_;
  std::vector<uint32_t> vertex_;
  std::vector<uint32_t> cand_begin_;  // into pool_
  std::vector<uint32_t> cand_end_;
  std::vector<uint32_t> span_begin_;  // vertex's first target-pool rank
  std::vector<uint32_t> span_len_;    // vertex's out-degree
  std::vector<uint32_t> rank_begin_;  // into rank_pool_

  std::vector<Candidate> pool_;       // queues, ascending tgt_idx each
  std::vector<uint32_t> rank_pool_;   // per slot: span_len_ rank entries
  std::vector<uint32_t> edge_tgt_;    // edge id -> target-pool rank

  // Per-vertex list of the (few) slots of that vertex, CSR layout; a
  // vertex has one slot per level it is useful at, at most min(lambda,
  // |Q|) of them.
  std::vector<uint32_t> vertex_slot_off_;  // size V+1
  std::vector<uint32_t> vertex_slots_;
};

}  // namespace dsw

// The memoryless subsystem is one unit: every consumer of the index
// also wants the enumerator that drives it (bench_memoryless includes
// only this header and core/enumerator.h). The include sits below the
// class so either header can be included first.
#include "core/resumable_enumerator.h"  // IWYU pragma: export

#endif  // DSW_CORE_RESUMABLE_INDEX_H_
