// Execution-tier classification: the prepare-time pass that decides
// which kernels a (Snapshot, Nfa) pair runs on. Three tiers:
//
//  - kSimple: single-labeled data + deterministic, epsilon-free query —
//    the paper's *simple setting*, where every length-i walk carries the
//    same word and the product collapses to a plain vertex BFS with one
//    automaton state per level. core/simple_enumerator.h serves these
//    with O(lambda) delay and no certificate machinery at all.
//  - kSingleWord: |Q| <= 64, so every state set is one uint64_t and the
//    general pipeline runs on the collapsed SingleWordKernel loops
//    (util/word_kernel.h) — same algorithms, same answers, no per-set
//    word loop.
//  - kGeneral: the multi-word path, unchanged semantics.
//
// The tier never changes WHAT is computed, only how fast: all three
// tiers produce bit-identical annotations, B-lists and enumeration
// order (tests/exec_tier_test.cc), so the classification is free to be
// conservative. It is also cheap — O(|Delta|) over the query plus an
// early-exit O(|E|) label scan over the snapshot (bench_fastpath's
// Detection arm measures it) — which is why the engine runs it on every
// Prepare and records the tier on the cached plan (EngineStats counts
// per-tier prepares).

#ifndef DSW_CORE_QUERY_TRAITS_H_
#define DSW_CORE_QUERY_TRAITS_H_

#include <cstdint>

#include "core/database.h"
#include "core/nfa.h"

namespace dsw {

enum class ExecTier : uint8_t {
  kSimple = 0,      // single-labeled data + deterministic eps-free query
  kSingleWord = 1,  // |Q| <= 64: one-uint64_t kernels
  kGeneral = 2,     // multi-word loops
};

inline const char* ExecTierName(ExecTier tier) {
  switch (tier) {
    case ExecTier::kSimple:
      return "simple";
    case ExecTier::kSingleWord:
      return "single_word";
    case ExecTier::kGeneral:
      return "general";
  }
  return "?";
}

struct QueryTraits {
  ExecTier tier = ExecTier::kGeneral;
  bool data_single_label = false;   // every edge carries one label
  bool query_deterministic = false; // eps-free, 1 initial, <=1 move/(q,l)
  bool single_word = false;         // 0 < |Q| <= 64
};

/// True iff every edge of the snapshot carries the same label (an
/// edgeless snapshot qualifies vacuously). Early-exits on the second
/// distinct label, so multi-label data answers in O(1) typically and
/// O(|E|) worst case — the linear-time half of the Applicable check.
inline bool DataSingleLabeled(const Snapshot& snap) {
  const size_t num_edges = snap.num_edges();
  if (num_edges == 0) return true;
  const uint32_t label = snap.edge(0).label;
  for (size_t e = 1; e < num_edges; ++e)
    if (snap.edge(e).label != label) return false;
  return true;
}

/// True iff the query automaton is deterministic in the classical
/// sense: no epsilon-transitions, exactly one initial state, and at
/// most one distinct successor per (state, label). Duplicate parallel
/// transitions to the SAME successor are tolerated — the compiled delta
/// rows dedupe them anyway. O(|Delta|) with the small per-state fan-out
/// the Nfa representation assumes.
inline bool QueryDeterministic(const Nfa& query) {
  if (query.num_states() == 0) return false;
  if (query.has_epsilon()) return false;
  if (query.initial().Count() != 1) return false;
  for (uint32_t q = 0; q < query.num_states(); ++q) {
    const Nfa::TransitionList& trans = query.Transitions(q);
    for (size_t i = 0; i < trans.size(); ++i)
      for (size_t j = i + 1; j < trans.size(); ++j)
        if (trans[i].first == trans[j].first &&
            trans[i].second != trans[j].second)
          return false;
  }
  return true;
}

/// The classification pass proper. Tier precedence: simple beats
/// single-word (a simple query with |Q| <= 64 still reports kSimple —
/// the general machinery it would fall back to dispatches on
/// words-per-set independently of the recorded tier).
inline QueryTraits ClassifyQuery(const Snapshot& snap, const Nfa& query) {
  QueryTraits traits;
  traits.single_word = query.num_states() > 0 && query.num_states() <= 64;
  traits.query_deterministic = QueryDeterministic(query);
  traits.data_single_label = DataSingleLabeled(snap);
  if (traits.data_single_label && traits.query_deterministic)
    traits.tier = ExecTier::kSimple;
  else if (traits.single_word)
    traits.tier = ExecTier::kSingleWord;
  else
    traits.tier = ExecTier::kGeneral;
  return traits;
}

}  // namespace dsw

#endif  // DSW_CORE_QUERY_TRAITS_H_
