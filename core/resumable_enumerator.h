// The memoryless enumerator (Theorem 18). Valid/Next/walk behave
// exactly like TrimmedEnumerator — same answers, same order, same
// O(lambda x |A|) step — and SeekAfter(w) adds the memoryless entry
// point: given any answer w (and *only* w; no retained enumeration
// state is consulted), reposition onto w and advance to the
// lexicographically next answer.
//
// SeekAfter is a guided run over w's edges: starting from R_0 =
// useful(0, source), each level's reachable-run set R_{i+1} is
// re-derived with the same word-parallel delta-row OR the stateful
// enumerator uses, and each level's queue cursor is repositioned with
// the index's O(1) SeekGe — total O(lambda x |A|), independent of the
// in-degrees along w (the linear-reseek strawman of bench_memoryless
// pays an extra factor d there). After the guided run the stack is
// bit-for-bit the state the stateful enumerator would have had when
// emitting w, so one ordinary Next() lands on the successor.
//
// Contract for walks that are NOT answers (wrong length, an edge that
// is no candidate at its level, a prefix whose reachable-run set dies):
// debug builds assert (see the death tests in resumable_test); release
// builds reject gracefully — SeekAfter returns false and the enumerator
// invalidates. SeekAfter returns true iff w was accepted as an answer;
// Valid() afterwards says whether a successor exists (false when w was
// the last answer). walk() is only meaningful while Valid().

#ifndef DSW_CORE_RESUMABLE_ENUMERATOR_H_
#define DSW_CORE_RESUMABLE_ENUMERATOR_H_

#include <cstdint>
#include <vector>

#include "core/annotate.h"
#include "core/database.h"
#include "core/resumable_index.h"
#include "core/walk.h"
#include "util/state_set.h"

namespace dsw {

class ResumableEnumerator {
 public:
  /// Operation counts of the work SeekAfter/Next actually perform —
  /// the CI-stable proxy for the Theorem 18 delay bound (wall clock is
  /// too noisy to assert on). Binary-search slot lookups and other
  /// index arithmetic are O(log) / O(1) and not counted.
  struct OpStats {
    uint64_t seeks = 0;    // SeekGe repositionings (one per level)
    uint64_t cells = 0;    // queue entries taken by Next/FindNext
    uint64_t row_ors = 0;  // delta-row ORs (state-set advances)
    uint64_t probes = 0;   // certificate next-usable loads (NextLive)
    uint64_t total() const { return seeks + cells + row_ors + probes; }
  };

  /// The annotation and index must outlive the enumerator; \p source
  /// and \p target must match the annotation's. Positions on the first
  /// answer, like TrimmedEnumerator. The database is not consulted —
  /// the index denormalizes everything — so any number of enumerators
  /// can run concurrently over one shared (annotation, index) pair.
  /// \p force_multi_word is the test/bench knob running the generic
  /// multi-word kernels even on a one-word query (bit-identical
  /// answers, order and OpStats).
  ResumableEnumerator(const Annotation& ann, const ResumableIndex& index,
                      uint32_t source, uint32_t target,
                      bool force_multi_word = false);

  /// Repositions on the first answer, exactly as if freshly
  /// constructed (stats are kept). Lets a long-lived worker reuse one
  /// enumerator across many jobs against the same prepared query
  /// instead of reconstructing: Rewind() for a fresh enumeration,
  /// SeekAfter() to resume a parked session.
  void Rewind();

  /// True while positioned on an answer.
  bool Valid() const { return valid_; }

  /// Advances to the next answer, or invalidates the enumerator.
  void Next();

  /// The current answer; only meaningful while Valid().
  const Walk& walk() const { return walk_; }

  /// Memoryless reposition: accepts the answer \p prev and advances to
  /// the answer after it (Valid() false when prev was last). Returns
  /// false — invalidating the enumerator — when prev is not an answer;
  /// debug builds assert instead. Works regardless of the enumerator's
  /// current position, including after it invalidated.
  bool SeekAfter(const Walk& prev);

  const OpStats& stats() const { return stats_; }
  void ResetStats() { stats_ = OpStats(); }

 private:
  struct Frame {
    uint32_t vertex = 0;
    StateSet states;    // reachable-run set R of the prefix
    uint32_t cur = 0;   // next queue entry to consider (pool index)
    uint32_t base = 0;  // the frame's queue front (RestartCursor)
    // Certificate structure of the frame's queue: cur - base is the
    // B-list position, and states ⊆ blist.useful (the mask states was
    // built with) — the NextLive precondition. A frame rebuilt by
    // SeekAfter carries the same blist as one the DFS left behind.
    TrimmedIndex::BList blist;
  };

  bool RejectSeek();
  void FindNext();

  const ResumableIndex* index_;
  const CompiledDelta* delta_;
  int32_t lambda_;
  uint32_t wps_ = 0;
  bool single_word_ = true;  // run the single-word kernels (wps == 1)
  uint32_t source_ = 0;
  StateSet r0_;  // useful(0, source), the root of every (re)run
  bool has_answers_ = false;
  // Frames allocated once, reused in place (no steady-state heap
  // traffic); stack_[i] is the position after i edges.
  std::vector<Frame> stack_;
  uint32_t depth_ = 0;
  Walk walk_;
  bool valid_ = false;
  OpStats stats_;
};

}  // namespace dsw

#endif  // DSW_CORE_RESUMABLE_ENUMERATOR_H_
