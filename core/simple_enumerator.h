// The simple-setting fast path (execution tier kSimple): single-labeled
// data plus a deterministic, epsilon-free query. Every walk of length i
// then carries the same word l^i, so the automaton contributes one
// state q_i per BFS level and the product BFS collapses to a plain
// vertex BFS (with a per-(vertex, state) seen filter, since a vertex
// may recur at a later level under a different state). Trimming keeps,
// per level, the vertices with an edge into the next useful level; and
// because the reachable-run set of ANY prefix is exactly {q_i}, every
// candidate edge is live from every prefix — no reachable-set
// propagation, no B-list certificate, no per-edge state work. The DFS
// below therefore advances a plain cursor per frame: O(lambda) pops +
// pushes of integers between outputs, the O(lambda) delay the paper's
// introduction promises for this setting (vs the general tier's
// O(lambda x |A|)).
//
// Answers, and their order, are bit-identical to the general pipeline's
// (tests/exec_tier_test.cc oracles them against TrimmedEnumerator):
// candidate edges are collected in the same label-stratified
// LabelIndex order the trim sweep uses, and with R always equal to the
// full useful set the general DFS also visits candidates strictly in
// list order.
//
// Applicability is the linear-time check of core/query_traits.h:
// DataSingleLabeled (early-exit O(|E|)) + QueryDeterministic
// (O(|Delta|)). Construction is O((|V| + |E|) x |Q|) worst case like
// the general annotate, but with ~1-state levels the constants are a
// plain BFS's.

#ifndef DSW_CORE_SIMPLE_ENUMERATOR_H_
#define DSW_CORE_SIMPLE_ENUMERATOR_H_

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/database.h"
#include "core/nfa.h"
#include "core/query_traits.h"
#include "core/walk.h"

namespace dsw {

class SimpleEnumerator {
 public:
  /// The gate for this tier: true iff (snap, query) is a simple-setting
  /// instance. Linear time (see header comment); ClassifyQuery reports
  /// the same verdict as QueryTraits::tier == kSimple.
  static bool Applicable(const Snapshot& snap, const Nfa& query) {
    return ClassifyQuery(snap, query).tier == ExecTier::kSimple;
  }

  /// Precondition: Applicable(snap, query) — asserted in debug builds.
  /// Positions on the first answer (Valid() false when none exists).
  /// Pure read of the snapshot; the enumerator copies out everything it
  /// needs, so it does not retain snap or query.
  SimpleEnumerator(const Snapshot& snap, const Nfa& query, uint32_t source,
                   uint32_t target) {
    assert(Applicable(snap, query) &&
           "SimpleEnumerator on a non-simple instance");
    const uint32_t num_vertices = snap.num_vertices();
    if (source >= num_vertices || target >= num_vertices ||
        query.num_states() == 0)
      return;

    // The deterministic query has exactly one initial state.
    uint32_t q0 = 0;
    query.initial().ForEach([&](uint32_t q) { q0 = q; });
    const uint32_t num_states = query.num_states();
    const bool has_edges = snap.num_edges() > 0;
    const uint32_t data_label = has_edges ? snap.edge(0).label : 0;

    // Forward BFS. Levels hold sorted vertex lists; the state at level i
    // is determined (q_{i+1} = delta(q_i, l)), so the product seen
    // filter is a flat |V| x |Q| bitmap over (vertex, state) pairs —
    // a vertex re-enters at a later level only under a fresh state,
    // exactly like the product BFS's seen matrix.
    std::vector<uint64_t> seen(
        (static_cast<size_t>(num_vertices) * num_states + 63) / 64, 0);
    auto mark_new = [&](uint32_t v, uint32_t q) {
      const size_t bit = static_cast<size_t>(v) * num_states + q;
      const uint64_t w = uint64_t{1} << (bit & 63);
      if (seen[bit >> 6] & w) return false;
      seen[bit >> 6] |= w;
      return true;
    };

    const LabelIndex& adj = snap.label_index();
    std::vector<std::vector<uint32_t>> levels;
    std::vector<uint32_t> state_at;  // q_i per level
    mark_new(source, q0);
    levels.push_back({source});
    state_at.push_back(q0);

    int32_t lambda = -1;
    std::vector<uint32_t> next;
    for (uint32_t i = 0;; ++i) {
      // Sealed-level check, mirroring Annotate's early return: target
      // present with a final state ends the BFS at lambda = i.
      const std::vector<uint32_t>& level = levels[i];
      if (query.IsFinal(state_at[i]) &&
          std::binary_search(level.begin(), level.end(), target)) {
        lambda = static_cast<int32_t>(i);
        break;
      }
      // One deterministic step on the (single) data label; a missing
      // transition kills the whole frontier at once.
      int64_t q_next = -1;
      for (const auto& [l, to] : query.Transitions(state_at[i]))
        if (l == data_label) {
          q_next = to;
          break;
        }
      if (q_next < 0 || !has_edges) break;
      next.clear();
      for (uint32_t v : level)
        for (const LabelIndex::Group& group : adj.GroupsOf(v))
          for (const LabelIndex::Target& t : adj.Targets(group))
            if (mark_new(t.dst, static_cast<uint32_t>(q_next)))
              next.push_back(t.dst);
      if (next.empty()) break;
      std::sort(next.begin(), next.end());
      levels.push_back(next);
      state_at.push_back(static_cast<uint32_t>(q_next));
    }
    if (lambda < 0) return;
    lambda_ = lambda;

    // Backward trim: a vertex is useful at level i iff it has an edge
    // into a useful vertex at level i + 1; its candidate edges are
    // collected in the same GroupsOf/Targets order the general trim
    // sweep walks, which is what keeps enumeration order identical.
    useful_.assign(static_cast<size_t>(lambda) + 1, {});
    ranges_.assign(lambda, {});
    useful_[lambda].push_back(target);
    for (int32_t i = lambda - 1; i >= 0; --i) {
      const std::vector<uint32_t>& next_useful = useful_[i + 1];
      for (uint32_t v : levels[i]) {
        const uint32_t begin = static_cast<uint32_t>(pool_.size());
        for (const LabelIndex::Group& group : adj.GroupsOf(v))
          for (const LabelIndex::Target& t : adj.Targets(group)) {
            auto it = std::lower_bound(next_useful.begin(),
                                       next_useful.end(), t.dst);
            if (it != next_useful.end() && *it == t.dst)
              pool_.push_back(Cand{
                  t.edge,
                  static_cast<uint32_t>(it - next_useful.begin())});
          }
        if (pool_.size() > begin) {
          useful_[i].push_back(v);
          ranges_[i].emplace_back(begin,
                                  static_cast<uint32_t>(pool_.size()));
        }
      }
    }
    // lambda >= 0 means an accepting walk exists, and its first edge
    // makes the source useful at level 0.
    assert(useful_[0].size() == 1 && useful_[0][0] == source);

    stack_.assign(static_cast<size_t>(lambda) + 1, Frame{});
    depth_ = 0;
    if (lambda_ == 0) {
      valid_ = true;  // the single empty walk
      return;
    }
    stack_[0] = Frame{ranges_[0][0].first, ranges_[0][0].second};
    FindNext();
  }

  int32_t lambda() const { return lambda_; }

  /// True while positioned on an answer.
  bool Valid() const { return valid_; }

  /// Advances to the next answer, or invalidates the enumerator.
  void Next() {
    if (!valid_) return;
    valid_ = false;
    if (depth_ == 0) return;  // lambda == 0: the empty walk was the answer
    --depth_;                 // leave the complete answer
    walk_.edges.pop_back();
    FindNext();
  }

  /// The current answer; only meaningful while Valid().
  const Walk& walk() const { return walk_; }

 private:
  struct Cand {
    uint32_t edge;
    uint32_t next_pos;  // position of dst in useful_[level + 1]
  };
  struct Frame {
    uint32_t cur = 0;  // next candidate position in pool_
    uint32_t end = 0;
  };

  void FindNext() {
    // Every candidate is live (the reachable-run set is always the full
    // {q_i}), so the frame cursor IS the next answer prefix: lambda
    // pops plus lambda pushes of plain integers between outputs.
    while (true) {
      Frame& f = stack_[depth_];
      if (f.cur < f.end) {
        const Cand& ce = pool_[f.cur++];
        walk_.edges.push_back(ce.edge);
        ++depth_;
        if (static_cast<int32_t>(depth_) == lambda_) {
          valid_ = true;
          return;
        }
        const auto& [begin, end] = ranges_[depth_][ce.next_pos];
        stack_[depth_] = Frame{begin, end};
        continue;
      }
      if (depth_ == 0) return;  // root exhausted: enumeration done
      --depth_;
      walk_.edges.pop_back();
    }
  }

  int32_t lambda_ = -1;
  // Per level: sorted useful vertices, and (for levels < lambda) each
  // vertex's [begin, end) candidate range in pool_, parallel to useful_.
  std::vector<std::vector<uint32_t>> useful_;
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> ranges_;
  std::vector<Cand> pool_;
  std::vector<Frame> stack_;
  uint32_t depth_ = 0;
  Walk walk_;
  bool valid_ = false;
};

}  // namespace dsw

#endif  // DSW_CORE_SIMPLE_ENUMERATOR_H_
