#include "core/trimmed_index.h"

#include "core/shard_plan.h"
#include "core/sharded_annotate.h"

namespace dsw {

namespace trim_detail {
namespace {

// The kernel-generic body of TrimVertex (see util/word_kernel.h): one
// instantiation per execution tier, bit-identical results.
template <typename Kernel>
bool TrimVertexImpl(Kernel ker, const LabelIndex& adj,
                    const CompiledDelta& delta, uint32_t v,
                    StateSetView states, const LevelSets& next_useful,
                    Scratch* scratch,
                    std::vector<TrimmedIndex::CandidateEdge>* cand_pool,
                    std::vector<uint32_t>* nxt_pool) {
  const uint32_t wps = ker.wps();
  StateSet& useful_here = scratch->useful_here;
  StateSet& edge_q = scratch->edge_q;
  std::vector<uint64_t>& cand_src = scratch->cand_src;
  uint64_t* uhw = useful_here.mutable_words();
  uint64_t* eqw = edge_q.mutable_words();
  ker.Zero(uhw);
  cand_src.clear();
  const size_t cand_begin = cand_pool->size();
  for (const LabelIndex::Group& group : adj.GroupsOf(v)) {
    if (!delta.HasLabel(group.label)) continue;
    uint32_t last_dst = UINT32_MAX;
    uint32_t last_pos = 0;
    bool last_ok = false;
    for (const LabelIndex::Target& t : adj.Targets(group)) {
      if (t.dst != last_dst) {  // parallel edges share the move set
        last_dst = t.dst;
        size_t pos = next_useful.FindIndex(t.dst);
        if (pos == LevelSets::npos) {
          last_ok = false;
        } else {
          last_pos = static_cast<uint32_t>(pos);
          ker.Zero(eqw);
          ker.ForEachBit(next_useful.states(pos).words(), [&](uint32_t q_next) {
            ker.Or(eqw, delta.ReverseWords(group.label, q_next));
          });
          ker.And(eqw, states.words());
          last_ok = ker.Any(eqw);
        }
      }
      if (!last_ok) continue;
      cand_pool->push_back(TrimmedIndex::CandidateEdge{t.edge, t.dst,
                                                       group.label, last_pos});
      cand_src.insert(cand_src.end(), edge_q.words(), edge_q.words() + wps);
      ker.Or(uhw, edge_q.words());
    }
  }
  if (!ker.Any(uhw)) return false;

  // The vertex's B-list block: one next-usable row per useful state.
  // useful_here is exactly the union of the candidates' usable-source
  // sets, so every row has >= 1 usable candidate. O(|useful| x ncand) —
  // the same order as the block itself.
  const uint32_t ncand = static_cast<uint32_t>(cand_pool->size() - cand_begin);
  const size_t block_off = nxt_pool->size();
  nxt_pool->resize(block_off + static_cast<size_t>(useful_here.Count()) *
                                   (ncand + 1));
  uint32_t* block = nxt_pool->data() + block_off;
  uint32_t j = 0;
  useful_here.ForEach([&](uint32_t q) {
    uint32_t* row = block + static_cast<size_t>(j) * (ncand + 1);
    uint32_t cur = ncand;  // sentinel: no usable candidate >= c
    row[ncand] = ncand;
    for (uint32_t c = ncand; c-- > 0;) {
      if ((cand_src[static_cast<size_t>(c) * wps + (q >> 6)] >> (q & 63)) & 1)
        cur = c;
      row[c] = cur;
    }
    ++j;
  });
  return true;
}

}  // namespace

bool TrimVertex(const LabelIndex& adj, const CompiledDelta& delta,
                uint32_t wps, uint32_t v, StateSetView states,
                const LevelSets& next_useful, Scratch* scratch,
                std::vector<TrimmedIndex::CandidateEdge>* cand_pool,
                std::vector<uint32_t>* nxt_pool, bool force_multi_word) {
  if (wps == 1 && !force_multi_word)
    return TrimVertexImpl(SingleWordKernel(), adj, delta, v, states,
                          next_useful, scratch, cand_pool, nxt_pool);
  return TrimVertexImpl(MultiWordKernel(wps), adj, delta, v, states,
                        next_useful, scratch, cand_pool, nxt_pool);
}

}  // namespace trim_detail

TrimmedIndex::TrimmedIndex(const Snapshot& snap, const Annotation& ann,
                           const AnnotateOptions& opts) {
  if (ShardPlan::ClampShards(opts.num_shards, snap.num_vertices()) > 1 &&
      ann.reachable()) {
    ShardedTrimBuild(*this, snap, ann, opts);
    return;
  }
  BuildSequential(snap, ann, opts.force_multi_word);
}

void TrimmedIndex::BuildSequential(const Snapshot& snap,
                                   const Annotation& ann,
                                   bool force_multi_word) {
  db_ = &snap.db();
  generation_ = snap.generation();
  if (!ann.reachable()) return;
  const uint32_t lambda = static_cast<uint32_t>(ann.lambda);
  wps_ = ann.words_per_set();
  useful_.assign(lambda + 1, LevelSets(ann.num_states));
  cand_ranges_.resize(lambda);
  blist_off_.resize(lambda);

  // Level lambda: only (target, final) pairs are useful. Other vertices
  // annotated at this level — even ones carrying final states — end no
  // answer walk.
  if (StateSetView at_target = ann.StatesAt(lambda, ann.target)) {
    StateSet fin(ann.num_states);
    fin.Assign(at_target);
    fin &= ann.final_states;
    if (fin.Any()) useful_[lambda].Append(ann.target, fin.words());
  }

  // Backward sweep: q is useful at (v, i) iff some step
  // label(e) . eps* out of q along an edge e from v lands on a useful q'
  // at level i + 1. The "eps* before the edge" half of an effective step
  // needs no handling here: annotation levels are closure-saturated and
  // every epsilon-mate a shortest run can occupy sits on the same level
  // (a smaller BFS distance would splice into a shorter answer), so the
  // mate is scanned in its own right — composing the before-side closure
  // would only duplicate moves. The after side is already inside the
  // delta rows. The per-vertex unit (word-parallel reverse-row move
  // sets, candidate list, B-list block) lives in trim_detail::TrimVertex,
  // shared with the sharded builder.
  const LabelIndex& adj = snap.label_index();
  const CompiledDelta& delta = ann.delta;
  trim_detail::Scratch scratch(ann.num_states);

  for (uint32_t i = lambda; i-- > 0;) {
    const LevelSets& level = ann.levels[i];
    const LevelSets& next_useful = useful_[i + 1];
    if (next_useful.empty()) continue;  // nothing below is useful
    for (size_t vi = 0; vi < level.size(); ++vi) {
      const uint32_t v = level.vertex(vi);
      const uint32_t cand_begin = static_cast<uint32_t>(cand_pool_.size());
      const size_t block_off = nxt_pool_.size();
      if (!trim_detail::TrimVertex(adj, delta, wps_, v, level.states(vi),
                                   next_useful, &scratch, &cand_pool_,
                                   &nxt_pool_, force_multi_word))
        continue;
      useful_[i].Append(v, scratch.useful_here.words());
      cand_ranges_[i].emplace_back(cand_begin,
                                   static_cast<uint32_t>(cand_pool_.size()));
      blist_off_[i].push_back(block_off);
    }
  }

  for (const LevelSets& level : useful_)
    for (size_t i = 0; i < level.size(); ++i)
      num_slots_ += level.states(i).Count();
}

}  // namespace dsw
