#include "core/trimmed_index.h"

namespace dsw {

TrimmedIndex::TrimmedIndex(const Snapshot& snap, const Annotation& ann) {
  db_ = &snap.db();
  generation_ = snap.generation();
  if (!ann.reachable()) return;
  const uint32_t lambda = static_cast<uint32_t>(ann.lambda);
  wps_ = ann.words_per_set();
  useful_.assign(lambda + 1, LevelSets(ann.num_states));
  cand_ranges_.resize(lambda);
  blist_off_.resize(lambda);

  // Level lambda: only (target, final) pairs are useful. Other vertices
  // annotated at this level — even ones carrying final states — end no
  // answer walk.
  if (StateSetView at_target = ann.StatesAt(lambda, ann.target)) {
    StateSet fin(ann.num_states);
    fin.Assign(at_target);
    fin &= ann.final_states;
    if (fin.Any()) useful_[lambda].Append(ann.target, fin.words());
  }

  // Backward sweep: q is useful at (v, i) iff some step
  // label(e) . eps* out of q along an edge e from v lands on a useful q'
  // at level i + 1. The "eps* before the edge" half of an effective step
  // needs no handling here: annotation levels are closure-saturated and
  // every epsilon-mate a shortest run can occupy sits on the same level
  // (a smaller BFS distance would splice into a shorter answer), so the
  // mate is scanned in its own right — composing the before-side closure
  // would only duplicate moves. The after side is already inside the
  // delta rows.
  //
  // Per edge, the useful sources are computed word-parallel:
  //   edge_q = (union over q' in useful(i+1, dst) of rev-delta[l][q'])
  //            AND annotated(v, i)
  // and shared across parallel edges with the same destination.
  const LabelIndex& adj = snap.label_index();
  const CompiledDelta& delta = ann.delta;
  StateSet useful_here(ann.num_states);
  StateSet edge_q(ann.num_states);
  // Scratch, reused per vertex: the usable-source set of each candidate
  // pushed so far (wps_ words per candidate), the raw material of the
  // vertex's B-list block.
  std::vector<uint64_t> cand_src;

  for (uint32_t i = lambda; i-- > 0;) {
    const LevelSets& level = ann.levels[i];
    const LevelSets& next_useful = useful_[i + 1];
    if (next_useful.empty()) continue;  // nothing below is useful
    for (size_t vi = 0; vi < level.size(); ++vi) {
      const uint32_t v = level.vertex(vi);
      const StateSetView states = level.states(vi);
      useful_here.ZeroAll();
      cand_src.clear();
      const uint32_t cand_begin = static_cast<uint32_t>(cand_pool_.size());
      for (const LabelIndex::Group& group : adj.GroupsOf(v)) {
        if (!delta.HasLabel(group.label)) continue;
        uint32_t last_dst = UINT32_MAX;
        uint32_t last_pos = 0;
        bool last_ok = false;
        for (const LabelIndex::Target& t : adj.Targets(group)) {
          if (t.dst != last_dst) {  // parallel edges share the move set
            last_dst = t.dst;
            size_t pos = next_useful.FindIndex(t.dst);
            if (pos == LevelSets::npos) {
              last_ok = false;
            } else {
              last_pos = static_cast<uint32_t>(pos);
              edge_q.ZeroAll();
              next_useful.states(pos).ForEach([&](uint32_t q_next) {
                edge_q.UnionWithWords(
                    delta.ReverseWords(group.label, q_next), wps_);
              });
              edge_q &= states;
              last_ok = edge_q.Any();
            }
          }
          if (!last_ok) continue;
          cand_pool_.push_back(
              CandidateEdge{t.edge, t.dst, group.label, last_pos});
          cand_src.insert(cand_src.end(), edge_q.words(),
                          edge_q.words() + wps_);
          useful_here |= edge_q;
        }
      }
      if (useful_here.Any()) {
        useful_[i].Append(v, useful_here.words());
        const uint32_t ncand =
            static_cast<uint32_t>(cand_pool_.size()) - cand_begin;
        cand_ranges_[i].emplace_back(
            cand_begin, static_cast<uint32_t>(cand_pool_.size()));

        // The vertex's B-list block: one next-usable row per useful
        // state. useful_here is exactly the union of the candidates'
        // usable-source sets, so every row has >= 1 usable candidate.
        // O(|useful| x ncand) — the same order as the block itself.
        blist_off_[i].push_back(nxt_pool_.size());
        nxt_pool_.resize(nxt_pool_.size() +
                         static_cast<size_t>(useful_here.Count()) *
                             (ncand + 1));
        uint32_t* block = nxt_pool_.data() + blist_off_[i].back();
        uint32_t j = 0;
        useful_here.ForEach([&](uint32_t q) {
          uint32_t* row = block + static_cast<size_t>(j) * (ncand + 1);
          uint32_t cur = ncand;  // sentinel: no usable candidate >= c
          row[ncand] = ncand;
          for (uint32_t c = ncand; c-- > 0;) {
            if ((cand_src[static_cast<size_t>(c) * wps_ + (q >> 6)] >>
                 (q & 63)) &
                1)
              cur = c;
            row[c] = cur;
          }
          ++j;
        });
      }
    }
  }

  for (const LevelSets& level : useful_)
    for (size_t i = 0; i < level.size(); ++i)
      num_slots_ += level.states(i).Count();
}

}  // namespace dsw
