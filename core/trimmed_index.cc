#include "core/trimmed_index.h"

namespace dsw {

TrimmedIndex::TrimmedIndex(const Database& db, const Annotation& ann) {
  if (!ann.reachable()) return;
  uint32_t lambda = static_cast<uint32_t>(ann.lambda);
  useful_.resize(lambda + 1);
  candidates_.resize(lambda);

  // Level lambda: only (target, final) pairs are useful. Other vertices
  // annotated at this level — even ones carrying final states — end no
  // answer walk.
  if (const StateSet* at_target = ann.StatesAt(lambda, ann.target)) {
    StateSet fin = *at_target;
    fin &= ann.final_states;
    if (fin.Any()) useful_[lambda].emplace(ann.target, std::move(fin));
  }

  // Backward sweep: q is useful at (v, i) iff some step
  // label(e) . eps* out of q along an edge e from v lands on a useful q'
  // at level i + 1. The "eps* before the edge" half of an effective step
  // needs no handling here: annotation levels are closure-saturated and
  // every epsilon-mate a shortest run can occupy sits on the same level
  // (a smaller BFS distance would splice into a shorter answer), so the
  // mate is scanned in its own right — composing the before-side closure
  // would only duplicate moves. The after-side closure *is* composed
  // into the move targets, which is what lets the enumerator advance
  // reachable-state sets across epsilon-NFAs unchanged.
  StateSet targets(ann.num_states);  // scratch: dedups move targets per q
  for (uint32_t i = lambda; i-- > 0;) {
    for (const auto& [v, states] : ann.levels[i]) {
      StateSet useful_here(ann.num_states);
      std::vector<CandidateEdge> cand;
      for (uint32_t e : db.OutEdges(v)) {
        const Edge& edge = db.edge(e);
        const StateSet* next_useful = Useful(i + 1, edge.dst);
        if (next_useful == nullptr) continue;
        CandidateEdge ce{e, {}};
        states.ForEach([&](uint32_t q) {
          targets.ZeroAll();
          for (const auto& [label, to] : ann.transitions[q]) {
            if (label != edge.label) continue;
            if (!ann.has_epsilon()) {
              if (next_useful->Test(to)) targets.Set(to);
            } else {
              ann.eps_closure[to].ForEach([&](uint32_t t) {
                if (next_useful->Test(t)) targets.Set(t);
              });
            }
          }
          targets.ForEach([&](uint32_t to) {
            ce.moves.emplace_back(q, to);
            useful_here.Set(q);
          });
        });
        if (!ce.moves.empty()) cand.push_back(std::move(ce));
      }
      if (useful_here.Any()) {
        useful_[i].emplace(v, std::move(useful_here));
        candidates_[i].emplace(v, std::move(cand));
      }
    }
  }

  for (const auto& level : useful_)
    for (const auto& [v, states] : level) num_slots_ += states.Count();
}

}  // namespace dsw
