#include "core/trimmed_index.h"

namespace dsw {

TrimmedIndex::TrimmedIndex(const Database& db, const Annotation& ann) {
  if (!ann.reachable()) return;
  uint32_t lambda = static_cast<uint32_t>(ann.lambda);
  useful_.resize(lambda + 1);
  candidates_.resize(lambda);

  // Level lambda: only (target, final) pairs are useful. Other vertices
  // annotated at this level — even ones carrying final states — end no
  // answer walk.
  if (const StateSet* at_target = ann.StatesAt(lambda, ann.target)) {
    StateSet fin = *at_target;
    fin &= ann.final_states;
    if (fin.Any()) useful_[lambda].emplace(ann.target, std::move(fin));
  }

  // Backward sweep: q is useful at (v, i) iff some edge e out of v and
  // transition q -label(e)-> q' land on a useful q' at level i + 1. The
  // same scan yields the candidate-edge lists with their moves.
  for (uint32_t i = lambda; i-- > 0;) {
    for (const auto& [v, states] : ann.levels[i]) {
      StateSet useful_here(ann.num_states);
      std::vector<CandidateEdge> cand;
      for (uint32_t e : db.OutEdges(v)) {
        const Edge& edge = db.edge(e);
        const StateSet* next_useful = Useful(i + 1, edge.dst);
        if (next_useful == nullptr) continue;
        CandidateEdge ce{e, {}};
        states.ForEach([&](uint32_t q) {
          for (const auto& [label, to] : ann.transitions[q]) {
            if (label != edge.label || !next_useful->Test(to)) continue;
            ce.moves.emplace_back(q, to);
            useful_here.Set(q);
          }
        });
        if (!ce.moves.empty()) cand.push_back(std::move(ce));
      }
      if (useful_here.Any()) {
        useful_[i].emplace(v, std::move(useful_here));
        candidates_[i].emplace(v, std::move(cand));
      }
    }
  }

  for (const auto& level : useful_)
    for (const auto& [v, states] : level) num_slots_ += states.Count();
}

}  // namespace dsw
