// A walk is an ordered sequence of database edge ids. Answers to a
// distinct-shortest-walk query are walks of length exactly lambda from
// source to target whose label word belongs to the query language.

#ifndef DSW_CORE_WALK_H_
#define DSW_CORE_WALK_H_

#include <cstdint>
#include <vector>

#include "core/database.h"

namespace dsw {

struct Walk {
  std::vector<uint32_t> edges;

  size_t length() const { return edges.size(); }

  std::vector<uint32_t> LabelWord(const Database& db) const {
    std::vector<uint32_t> word;
    word.reserve(edges.size());
    for (uint32_t e : edges) word.push_back(db.edge(e).label);
    return word;
  }

  /// The vertex sequence source, v1, ..., v_len visited by the walk.
  std::vector<uint32_t> VertexPath(const Database& db,
                                   uint32_t source) const {
    std::vector<uint32_t> path;
    path.reserve(edges.size() + 1);
    path.push_back(source);
    for (uint32_t e : edges) path.push_back(db.edge(e).dst);
    return path;
  }
};

}  // namespace dsw

#endif  // DSW_CORE_WALK_H_
