#include "core/resumable_index.h"

#include <utility>

namespace dsw {

ResumableIndex::ResumableIndex(const Snapshot& snap, const Annotation& ann,
                               const AnnotateOptions& opts)
    : trimmed_(snap, ann, opts) {
  BuildQueues(snap, ann);
}

ResumableIndex::ResumableIndex(const Snapshot& snap, const Annotation& ann,
                               TrimmedIndex trimmed)
    : trimmed_(std::move(trimmed)) {
  BuildQueues(snap, ann);
}

void ResumableIndex::BuildQueues(const Snapshot& snap,
                                 const Annotation& ann) {
  if (!ann.reachable() || trimmed_.empty()) return;
  const uint32_t lambda = static_cast<uint32_t>(ann.lambda);
  const LabelIndex& adj = snap.label_index();

  edge_tgt_.resize(snap.num_edges());
  for (uint32_t e = 0; e < edge_tgt_.size(); ++e)
    edge_tgt_[e] = adj.PositionOf(e);

  // Every useful vertex below level lambda owns one queue (the trimmed
  // sweep only records a vertex as useful when it has >= 1 candidate).
  level_base_.assign(lambda + 1, 0);
  uint32_t n = 0;
  for (uint32_t i = 0; i < lambda; ++i) {
    level_base_[i] = n;
    n += static_cast<uint32_t>(trimmed_.UsefulLevel(i).size());
  }
  level_base_[lambda] = n;
  level_.resize(n);
  vertex_.resize(n);
  cand_begin_.resize(n);
  cand_end_.resize(n);
  span_begin_.resize(n);
  span_len_.resize(n);
  rank_begin_.resize(n);

  for (uint32_t i = 0; i < lambda; ++i) {
    const LevelSets& lvl = trimmed_.UsefulLevel(i);
    for (size_t vi = 0; vi < lvl.size(); ++vi) {
      const uint32_t s = level_base_[i] + static_cast<uint32_t>(vi);
      const uint32_t v = lvl.vertex(vi);
      level_[s] = i;
      vertex_[s] = v;

      // The vertex's out-edges sit contiguously in the target pool
      // (BuildLabelIndex emits them vertex by vertex); the span is the
      // domain of the slot's rank array.
      std::span<const LabelIndex::Group> groups = adj.GroupsOf(v);
      const uint32_t sb = groups.front().begin;
      span_begin_[s] = sb;
      span_len_[s] = groups.back().end - sb;

      // The trimmed candidate list of (i, v) is already ascending in
      // target-pool rank: the sweep walks groups in label order and
      // targets in pool order.
      cand_begin_[s] = static_cast<uint32_t>(pool_.size());
      for (const TrimmedIndex::CandidateEdge& ce :
           trimmed_.CandidatesAt(i, vi)) {
        assert((pool_.size() == cand_begin_[s] ||
                pool_.back().tgt_idx < edge_tgt_[ce.edge]) &&
               "candidate list not ascending in target-pool rank");
        pool_.push_back(Candidate{ce.edge, ce.dst, ce.label, ce.next_pos,
                                  edge_tgt_[ce.edge]});
      }
      cand_end_[s] = static_cast<uint32_t>(pool_.size());

      // rank[k] = #queue entries with (tgt_idx - span_begin) < k: one
      // merge over the span, O(out-degree) per slot.
      rank_begin_[s] = static_cast<uint32_t>(rank_pool_.size());
      const uint32_t len = cand_end_[s] - cand_begin_[s];
      uint32_t c = 0;
      for (uint32_t k = 0; k < span_len_[s]; ++k) {
        while (c < len && pool_[cand_begin_[s] + c].tgt_idx - sb < k) ++c;
        rank_pool_.push_back(c);
      }
    }
  }

  // CSR of "slots of vertex v" for the per-pair SlotOf lookup.
  vertex_slot_off_.assign(snap.num_vertices() + 1, 0);
  for (uint32_t s = 0; s < n; ++s) ++vertex_slot_off_[vertex_[s] + 1];
  for (uint32_t v = 0; v < snap.num_vertices(); ++v)
    vertex_slot_off_[v + 1] += vertex_slot_off_[v];
  vertex_slots_.resize(n);
  std::vector<uint32_t> cursor(vertex_slot_off_.begin(),
                               vertex_slot_off_.end() - 1);
  for (uint32_t s = 0; s < n; ++s)
    vertex_slots_[cursor[vertex_[s]]++] = s;
}

}  // namespace dsw
