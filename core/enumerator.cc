#include "core/enumerator.h"

#include <cassert>

namespace dsw {

TrimmedEnumerator::TrimmedEnumerator(const Annotation& ann,
                                     const TrimmedIndex& index,
                                     uint32_t source, uint32_t target,
                                     bool force_multi_word)
    : index_(&index),
      delta_(&ann.delta),
      lambda_(ann.lambda),
      wps_(index.words_per_set()),
      single_word_(index.words_per_set() == 1 && !force_multi_word) {
  // The endpoints are baked into the annotation and index; the
  // parameters exist for symmetry with the rest of the pipeline and a
  // mismatch is a caller bug, not a valid different query. The database
  // itself is not consulted: candidate edges denormalize their
  // destination vertex.
  assert(source == ann.source && target == ann.target);
  (void)source;
  (void)target;
  if (!ann.reachable() || index.empty()) return;
  StateSetView r0 = index.Useful(0, ann.source);
  if (!r0 || r0.None()) return;

  stack_.resize(static_cast<size_t>(lambda_) + 1);
  for (Frame& f : stack_) f.states = StateSet(ann.num_states);
  stack_[0].vertex = ann.source;
  stack_[0].states.Assign(r0);
  depth_ = 0;
  if (lambda_ == 0) {
    valid_ = true;  // the single empty walk
    return;
  }
  size_t pos0 = index.UsefulLevel(0).FindIndex(ann.source);
  stack_[0].cand = index.CandidatesAt(0, pos0);
  stack_[0].blist = index.BListAt(0, pos0);
  FindNext();
}

void TrimmedEnumerator::Next() {
  if (!valid_) return;
  valid_ = false;
  if (depth_ == 0) return;  // lambda == 0: the empty walk was the answer
  --depth_;                 // leave the complete answer
  walk_.edges.pop_back();
  FindNext();
}

void TrimmedEnumerator::FindNext() {
  // Invariant: depth_ < lambda on entry. Depth-lambda frames are
  // complete answers and are returned (and later popped) immediately.
  //
  // The certificate structure guarantees every candidate NextLive hands
  // back is live for the frame's reachable set, so AdvanceStates below
  // cannot fail and the loop does at most lambda pops + lambda pushes
  // between outputs — the Theorem 2 delay.
  while (true) {
    Frame& f = stack_[depth_];
    const uint32_t c =
        f.blist.NextLive(f.states, f.edge_pos, &stats_.probes, single_word_);
    if (c < f.blist.num_cand) {
      const TrimmedIndex::CandidateEdge& ce = f.cand[c];
      f.edge_pos = c + 1;
      Frame& next = stack_[depth_ + 1];
      // Advance the reachable set: OR the delta rows of the prefix's
      // states, then mask with the destination's useful set.
      const bool alive = enumerator_detail::AdvanceStates(
          *delta_, wps_, f.states, ce.label,
          index_->UsefulStates(depth_ + 1, ce.next_pos), &next.states,
          &stats_.row_ors, single_word_);
      assert(alive && "certificate handed out a dead candidate");
      (void)alive;
      next.vertex = ce.dst;
      next.edge_pos = 0;
      walk_.edges.push_back(ce.edge);
      ++depth_;
      if (static_cast<int32_t>(depth_) == lambda_) {
        valid_ = true;
        return;
      }
      next.cand = index_->CandidatesAt(depth_, ce.next_pos);
      next.blist = index_->BListAt(depth_, ce.next_pos);
      continue;
    }
    if (depth_ == 0) return;  // root exhausted: enumeration done
    --depth_;
    walk_.edges.pop_back();
  }
}

}  // namespace dsw
