#include "core/enumerator.h"

#include <cassert>

namespace dsw {

TrimmedEnumerator::TrimmedEnumerator(const Database& db,
                                     const Annotation& ann,
                                     const TrimmedIndex& index,
                                     uint32_t source, uint32_t target)
    : db_(&db), index_(&index), lambda_(ann.lambda) {
  // The endpoints are baked into the annotation and index; the
  // parameters exist for symmetry with the rest of the pipeline and a
  // mismatch is a caller bug, not a valid different query.
  assert(source == ann.source && target == ann.target);
  (void)source;
  (void)target;
  if (!ann.reachable() || index.empty()) return;
  const StateSet* r0 = index.Useful(0, ann.source);
  if (r0 == nullptr || r0->None()) return;

  stack_.resize(static_cast<size_t>(lambda_) + 1);
  for (Frame& f : stack_) f.states = StateSet(ann.num_states);
  stack_[0].vertex = ann.source;
  stack_[0].states = *r0;
  depth_ = 0;
  if (lambda_ == 0) {
    valid_ = true;  // the single empty walk
    return;
  }
  FindNext();
}

void TrimmedEnumerator::Next() {
  if (!valid_) return;
  valid_ = false;
  if (depth_ == 0) return;  // lambda == 0: the empty walk was the answer
  --depth_;                 // leave the complete answer
  walk_.edges.pop_back();
  FindNext();
}

void TrimmedEnumerator::FindNext() {
  // Invariant: depth_ < lambda on entry. Depth-lambda frames are
  // complete answers and are returned (and later popped) immediately.
  while (true) {
    Frame& f = stack_[depth_];
    const auto& cand = index_->Candidates(depth_, f.vertex);
    bool pushed = false;
    while (f.edge_pos < cand.size()) {
      const TrimmedIndex::CandidateEdge& ce = cand[f.edge_pos++];
      Frame& next = stack_[depth_ + 1];
      next.states.ZeroAll();
      bool any = false;
      for (const auto& [q, to] : ce.moves) {
        if (!f.states.Test(q)) continue;
        next.states.Set(to);
        any = true;
      }
      if (!any) continue;  // no run of the prefix takes this edge
      next.vertex = db_->edge(ce.edge).dst;
      next.edge_pos = 0;
      walk_.edges.push_back(ce.edge);
      ++depth_;
      pushed = true;
      break;
    }
    if (pushed) {
      if (static_cast<int32_t>(depth_) == lambda_) {
        valid_ = true;
        return;
      }
      continue;
    }
    if (depth_ == 0) return;  // root exhausted: enumeration done
    --depth_;
    walk_.edges.pop_back();
  }
}

}  // namespace dsw
