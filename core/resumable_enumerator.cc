#include "core/resumable_enumerator.h"

#include <cassert>

#include "core/enumerator.h"  // enumerator_detail::AdvanceStates

namespace dsw {

ResumableEnumerator::ResumableEnumerator(const Annotation& ann,
                                         const ResumableIndex& index,
                                         uint32_t source, uint32_t target,
                                         bool force_multi_word)
    : index_(&index),
      delta_(&ann.delta),
      lambda_(ann.lambda),
      wps_(ann.words_per_set()),
      single_word_(ann.words_per_set() == 1 && !force_multi_word),
      source_(source) {
  // As with TrimmedEnumerator: the endpoints are baked into the
  // annotation; a mismatch is a caller bug. The database is not
  // consulted — the index denormalizes everything.
  assert(source == ann.source && target == ann.target);
  (void)target;
  if (!ann.reachable() || index.empty()) return;
  StateSetView r0 = index.trimmed().Useful(0, ann.source);
  if (!r0 || r0.None()) return;
  r0_.Assign(r0);
  has_answers_ = true;

  stack_.resize(static_cast<size_t>(lambda_) + 1);
  for (Frame& f : stack_) f.states = StateSet(ann.num_states);
  Rewind();
}

void ResumableEnumerator::Rewind() {
  valid_ = false;
  walk_.edges.clear();
  if (!has_answers_) return;
  stack_[0].vertex = source_;
  stack_[0].states.Assign(r0_);
  depth_ = 0;
  if (lambda_ == 0) {
    valid_ = true;  // the single empty walk
    return;
  }
  uint32_t slot = index_->SlotAt(0, source_);
  assert(slot != kNoSlot && "answers exist but source has no queue");
  stack_[0].base = index_->RestartCursor(slot);
  stack_[0].cur = stack_[0].base;
  stack_[0].blist = index_->BListOf(slot);
  FindNext();
}

void ResumableEnumerator::Next() {
  if (!valid_) return;
  valid_ = false;
  if (depth_ == 0) return;  // lambda == 0: the empty walk was the answer
  --depth_;                 // leave the complete answer
  walk_.edges.pop_back();
  FindNext();
}

void ResumableEnumerator::FindNext() {
  // Mirrors TrimmedEnumerator::FindNext over the index's queues; the
  // only structural difference is that frames hold (base, cur)
  // cursors into the shared candidate pool instead of spans, so a frame
  // rebuilt by SeekAfter is indistinguishable from one the DFS left
  // behind. The certificate structure (B-lists) guarantees every
  // candidate NextLive hands back is live for the frame's reachable
  // set, so AdvanceStates cannot fail and the loop does at most lambda
  // pops + lambda pushes between outputs (Theorem 2).
  while (true) {
    Frame& f = stack_[depth_];
    const uint32_t c = f.blist.NextLive(f.states, f.cur - f.base,
                                        &stats_.probes, single_word_);
    if (c < f.blist.num_cand) {
      const ResumableIndex::Candidate& ce = index_->At(f.base + c);
      f.cur = f.base + c + 1;
      ++stats_.cells;
      Frame& next = stack_[depth_ + 1];
      const bool alive = enumerator_detail::AdvanceStates(
          *delta_, wps_, f.states, ce.label,
          index_->trimmed().UsefulStates(depth_ + 1, ce.next_pos),
          &next.states, &stats_.row_ors, single_word_);
      assert(alive && "certificate handed out a dead candidate");
      (void)alive;
      next.vertex = ce.dst;
      walk_.edges.push_back(ce.edge);
      ++depth_;
      if (static_cast<int32_t>(depth_) == lambda_) {
        valid_ = true;
        return;
      }
      // ce.dst is useful at depth_ (< lambda), so its queue exists;
      // next_pos locates it in O(1), no binary search.
      uint32_t slot = index_->SlotAtPos(depth_, ce.next_pos);
      next.base = index_->RestartCursor(slot);
      next.cur = next.base;
      next.blist = index_->BListOf(slot);
      continue;
    }
    if (depth_ == 0) return;  // root exhausted: enumeration done
    --depth_;
    walk_.edges.pop_back();
  }
}

bool ResumableEnumerator::RejectSeek() {
  assert(false && "SeekAfter: the given walk is not an answer");
  valid_ = false;
  return false;
}

bool ResumableEnumerator::SeekAfter(const Walk& prev) {
  valid_ = false;
  if (!has_answers_) return RejectSeek();
  if (prev.edges.size() != static_cast<size_t>(lambda_))
    return RejectSeek();
  if (lambda_ == 0) {
    // The empty walk is the unique answer and has no successor.
    depth_ = 0;
    walk_.edges.clear();
    return true;
  }

  // Guided run (Theorem 18): re-derive the reachable-run sets R level
  // by level from prev's edges alone and point every level's cursor
  // just past prev's edge. O(lambda x |A|) total — the SeekGe calls are
  // O(1) each, so no in-degree factor anywhere; only level 0 needs a
  // vertex lookup, deeper slots follow from each candidate's next_pos.
  walk_.edges.assign(prev.edges.begin(), prev.edges.end());
  stack_[0].vertex = source_;
  stack_[0].states.Assign(r0_);
  uint32_t slot = index_->SlotAt(0, source_);
  for (uint32_t i = 0; i < static_cast<uint32_t>(lambda_); ++i) {
    Frame& f = stack_[i];
    if (slot == kNoSlot) return RejectSeek();  // unreachable by invariant
    uint32_t e = walk_.edges[i];
    ++stats_.seeks;
    if (!index_->SpanContains(slot, e)) return RejectSeek();
    uint32_t cur = index_->SeekGe(slot, e);
    if (index_->Exhausted(slot, cur) || index_->At(cur).edge != e)
      return RejectSeek();  // e survived no answer at this level
    const ResumableIndex::Candidate& ce = index_->At(cur);
    Frame& next = stack_[i + 1];
    if (!enumerator_detail::AdvanceStates(
            *delta_, wps_, f.states, ce.label,
            index_->trimmed().UsefulStates(i + 1, ce.next_pos),
            &next.states, &stats_.row_ors, single_word_))
      return RejectSeek();  // no accepting run threads through prev
    next.vertex = ce.dst;
    f.cur = cur + 1;  // resume strictly after prev's choice
    f.base = index_->RestartCursor(slot);
    f.blist = index_->BListOf(slot);
    slot = i + 1 < static_cast<uint32_t>(lambda_)
               ? index_->SlotAtPos(i + 1, ce.next_pos)
               : kNoSlot;
  }

  // The stack is now exactly what the stateful DFS holds when emitting
  // prev; one ordinary Next() yields the successor (or the clean end).
  depth_ = static_cast<uint32_t>(lambda_);
  valid_ = true;
  Next();
  return true;
}

}  // namespace dsw
