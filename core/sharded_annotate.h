// Pregel-style sharded preprocessing: the product BFS (annotate) and
// the backward trim sweep, partitioned by vertex across S shards with
// one worker thread per shard.
//
// Annotate runs as supersteps, one per BFS level:
//
//   scatter   Each shard relaxes its slice of the current frontier
//             word-parallel (the same per-(vertex, label) CompiledDelta
//             row OR as the sequential path). A relaxed edge whose
//             destination the shard owns is applied directly; a remote
//             one becomes a (dst-vertex, state-set) word record pushed
//             into the per-(src-shard, dst-shard) WordRing. A producer
//             finding a ring full drains its own inboxes while
//             retrying — since every blocked shard keeps consuming,
//             backpressure can never deadlock. An optimistic filter
//             reads the destination's seen words (relaxed atomics; the
//             owner is the only writer) and skips records that would
//             add nothing — BFS reaches most pairs through many edges,
//             so most records die here instead of crossing the ring.
//   gather    The owner merges each delta into its slice of the seen
//             bitmap and its next-frontier accumulator (dense slot
//             table + touched list, as sequential). Gathering is
//             interleaved with scattering; a shard leaves the superstep
//             once every shard has finished scattering and its inboxes
//             are empty.
//   barrier   Each shard seals its local sub-frontier sorted within its
//             (contiguous) vertex range; the sub-frontiers are then
//             concatenated in shard order — globally sorted by
//             construction — into the level's LevelSets (sizes and
//             offsets by shard 0, the copies in parallel), and shard 0
//             runs the same target/termination check as the sequential
//             loop.
//
// BFS levels are distance sets, independent of relax order, so the
// merged levels are *bit-identical* to the sequential Annotate — the
// correctness oracle of the test suite, and what lets every downstream
// stage consume either interchangeably.
//
// The backward trim sweep mirrors the same skeleton with the roles
// reversed: information flows along *reverse* product edges (the
// word-parallel reverse delta-row ORs of the sequential sweep), one
// superstep per level from lambda down. The merged useful level i + 1
// is immutable once its barrier passes — the superstep's broadcast
// state — so each shard trims its slice of level i against it by pure
// reads (TrimVertex, shared verbatim with the sequential constructor)
// and no rings are needed; the per-shard candidate pools, B-list blocks
// and useful sets are then offset-fixed and concatenated in shard
// order, reproducing the sequential TrimmedIndex bit for bit.

#ifndef DSW_CORE_SHARDED_ANNOTATE_H_
#define DSW_CORE_SHARDED_ANNOTATE_H_

#include <cstdint>

#include "core/annotate.h"
#include "core/database.h"
#include "core/nfa.h"
#include "core/trimmed_index.h"

namespace dsw {

/// The sharded product BFS. Precondition: num_shards clamps to >= 2
/// (Annotate() routes num_shards <= 1 to the sequential path).
Annotation ShardedAnnotate(const Snapshot& snap, const Nfa& query,
                           uint32_t source, uint32_t target,
                           const AnnotateOptions& opts);

/// The sharded backward sweep; fills \p out (a freshly constructed,
/// empty TrimmedIndex) with exactly the structure the sequential
/// constructor builds. Called by TrimmedIndex's options constructor.
void ShardedTrimBuild(TrimmedIndex& out, const Snapshot& snap,
                      const Annotation& ann, const AnnotateOptions& opts);

}  // namespace dsw

#endif  // DSW_CORE_SHARDED_ANNOTATE_H_
