// Stage 2 of the pipeline: trimming. A product pair (v, q) at level i is
// *useful* if it lies on some shortest accepting product path, i.e. its
// BFS level is i and it reaches (target, f) with f final in exactly
// lambda - i level-increasing product steps. The trimmed index keeps,
// per level:
//
//  - useful(i, v): the useful states of v at level i, and
//  - candidate edges: for each v at level i < lambda, the data edges e
//    out of v that appear in at least one answer at position i, each
//    carrying its label and the position of its destination's useful
//    set at level i + 1. The enumerator advances a reachable-state set
//    across a candidate edge by ORing the annotation's precompiled
//    delta rows and masking with that useful set — O(|A|) per edge with
//    no per-edge move storage, and no reference back to the Nfa (whose
//    lifetime it does not control; the Annotation snapshot carries the
//    delta).
//
// Construction is one backward sweep over the annotation, on the same
// label-stratified structures as the forward BFS: the CSR LabelIndex
// supplies the per-(vertex, label) edge groups, and the states with a
// surviving move across an edge are computed word-parallel as
// (union over useful q' of rev-delta[l][q']) AND annotated(v, i) — one
// OR per useful next state plus one AND, shared across parallel edges
// with the same destination, instead of nested per-transition lambda
// scans. All useful sets live in contiguous word pools (LevelSets);
// the useful sets and the candidate pool stay O(|D| x |A|) in cost and
// size. The certificate blocks below are the one structure that does
// not: they are *dense* per-state next-usable arrays, so they cost
// sum over useful (level, v) of |useful states| x (num_cand + 1)
// entries — O(|D| x |A| x |Q|) worst case — trading a |Q| space factor
// for O(1) probes in the enumerator's hot loop. (A sparse per-state
// B-list with binary-searched seeks would restore O(|D| x |A|) space
// at an O(log fanout) probe cost; switch if index size ever bites.)
//
// The index also stores the *certificate* structure behind the paper's
// Theorem 2 delay bound (the B-lists). A candidate edge of (i, v) is
// usable from state q iff q has a surviving move across it — the very
// set the backward sweep computes per edge — and a candidate is *live*
// for a prefix with reachable-run set R iff it is usable from some
// q in R. Per useful (i, v) and per useful state q there (slot j = rank
// of q in useful(i, v)), the index keeps a next-usable array over the
// vertex's candidate list:
//
//   nxt[j][c] = smallest candidate position >= c usable from q
//               (num_cand when none)
//
// so "first live candidate at or after position c for R" is a min of
// one O(1) load per state of R (BList::NextLive) — the enumerators
// never touch a dead candidate, which is what makes their delay the
// honest O(lambda x |A|) of Theorem 2 instead of degrading with the
// dead-candidate fanout.

#ifndef DSW_CORE_TRIMMED_INDEX_H_
#define DSW_CORE_TRIMMED_INDEX_H_

#include <bit>
#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/annotate.h"
#include "core/database.h"
#include "core/level_sets.h"
#include "util/state_set.h"
#include "util/word_kernel.h"

namespace dsw {

class TrimmedIndex {
 public:
  /// A data edge appearing in >= 1 answer at its level. dst and label
  /// denormalize the edge record; next_pos is the position of dst's
  /// useful set in level + 1 (see UsefulStates), resolved at build time
  /// so the enumerator's hot loop does no lookups at all.
  struct CandidateEdge {
    uint32_t edge;
    uint32_t dst;
    uint32_t label;
    uint32_t next_pos;
  };

  /// The Theorem 2 certificate view of one useful (level, vertex): the
  /// per-state next-usable-candidate arrays, with the useful set as the
  /// slot domain. Positions are relative to the vertex's candidate list
  /// (Candidates/CandidatesAt spans and the resumable queues index
  /// identically).
  struct BList {
    const uint32_t* nxt = nullptr;  // useful.Count() rows, num_cand+1 each
    uint32_t num_cand = 0;
    StateSetView useful;  // slot domain; any queried R satisfies R ⊆ useful

    /// Smallest candidate position >= \p from live for the reachable-run
    /// set \p r (precondition: r ⊆ useful, which every enumerator frame
    /// maintains), or num_cand when the frame is exhausted. One word-
    /// parallel walk over r's slots: O(|r|) loads plus O(|Q|/64) word
    /// ops, independent of num_cand. When \p probes is non-null it is
    /// incremented by the number of slot loads (the op-count proxy the
    /// delay tests assert on — identical in both kernel tiers).
    /// \p allow_single_word is the test/bench knob forcing the generic
    /// multi-word instantiation onto one-word queries.
    uint32_t NextLive(const StateSet& r, uint32_t from,
                      uint64_t* probes = nullptr,
                      bool allow_single_word = true) const {
      const uint32_t n = static_cast<uint32_t>(useful.num_words());
      if (n == 1 && allow_single_word)
        return NextLiveWith(SingleWordKernel(), r, from, probes);
      return NextLiveWith(MultiWordKernel(n), r, from, probes);
    }

    /// The kernel-generic body (see util/word_kernel.h for the tier
    /// story); prefer NextLive, which dispatches.
    template <typename Kernel>
    uint32_t NextLiveWith(Kernel ker, const StateSet& r, uint32_t from,
                          uint64_t* probes) const {
      const uint64_t* uw = useful.words();
      const uint64_t* rw = r.words();
      // Fast path: when every useful state is reachable (r == useful),
      // every remaining candidate is live — each one is usable from
      // some useful state by construction — so the next live candidate
      // is `from` itself. This is the common case on non-adversarial
      // prefixes and costs one word-compare per set word.
      if (ker.Equal(uw, rw)) {
        if (probes) ++*probes;
        return from;
      }
      const uint32_t stride = num_cand + 1;
      uint32_t best = num_cand;
      uint32_t base = 0;
      uint64_t count = 0;
      for (uint32_t wi = 0; wi < ker.wps(); ++wi) {
        const uint64_t u = uw[wi];
        uint64_t both = u & rw[wi];
        while (both) {
          const uint32_t bit = static_cast<uint32_t>(std::countr_zero(both));
          const uint32_t j =
              base + static_cast<uint32_t>(
                         std::popcount(u & ((uint64_t{1} << bit) - 1)));
          const uint32_t nx = nxt[static_cast<size_t>(j) * stride + from];
          if (nx < best) best = nx;
          ++count;
          both &= both - 1;
        }
        base += static_cast<uint32_t>(std::popcount(u));
      }
      if (probes) *probes += count;
      return best;
    }
  };

  /// Builds the trimmed structure from a frozen snapshot (one backward
  /// sweep over the annotation); a pure read of the snapshot, safe to
  /// run concurrently with other readers. The snapshot's generation is
  /// recorded for the AssertFresh staleness check. With
  /// opts.num_shards > 1 the sweep runs sharded (one thread per shard,
  /// superstep per level; core/sharded_annotate.h) and produces a
  /// bit-identical structure.
  TrimmedIndex(const Snapshot& snap, const Annotation& ann,
               const AnnotateOptions& opts = {});

  /// Number of useful (v, q, level) triples; 0 iff no answer exists.
  size_t num_slots() const { return num_slots_; }
  bool empty() const { return num_slots_ == 0; }
  uint32_t words_per_set() const { return wps_; }

  /// Debug-only staleness check: the spans, positions and candidate
  /// lists in here describe the database as of construction time; any
  /// AddVertex/AddEdge since silently invalidates them. Compiled away
  /// under NDEBUG. Debug builds read the database's generation through
  /// the stored back-pointer, so there the Database must outlive the
  /// index; release builds never touch it (the index carries everything
  /// the enumerators need).
  void AssertFresh() const {
    assert((db_ == nullptr || db_->generation() == generation_) &&
           "stale TrimmedIndex: the Database was mutated after this index "
           "was built");
  }

  /// Useful states at (level, v); null view if none.
  StateSetView Useful(uint32_t level, uint32_t v) const {
    AssertFresh();
    return level < useful_.size() ? useful_[level].Find(v) : StateSetView();
  }

  /// Useful states at a (level, position) slot — the O(1) variant for
  /// positions recorded in CandidateEdge::next_pos.
  StateSetView UsefulStates(uint32_t level, uint32_t pos) const {
    AssertFresh();
    return useful_[level].states(pos);
  }

  /// Number of useful levels (lambda + 1 when an answer exists, else 0).
  uint32_t num_levels() const { return static_cast<uint32_t>(useful_.size()); }

  /// The whole useful level — sorted vertices with their state sets.
  /// ResumableIndex walks these to lay out its per-(level, vertex)
  /// candidate queues without re-running the backward sweep.
  const LevelSets& UsefulLevel(uint32_t level) const {
    AssertFresh();
    return useful_[level];
  }

  /// Candidates of the vertex at position \p pos of useful level
  /// \p level (level < lambda) — the O(1) positional variant of
  /// Candidates() for callers already iterating UsefulLevel(level).
  std::span<const CandidateEdge> CandidatesAt(uint32_t level,
                                              size_t pos) const {
    AssertFresh();
    const auto& [begin, end] = cand_ranges_[level][pos];
    return {cand_pool_.data() + begin, cand_pool_.data() + end};
  }

  /// Certificate (B-list) structure of the vertex at position \p pos of
  /// useful level \p level (level < lambda); O(1), same positions as
  /// CandidatesAt.
  BList BListAt(uint32_t level, size_t pos) const {
    AssertFresh();
    const auto& [begin, end] = cand_ranges_[level][pos];
    return BList{nxt_pool_.data() + blist_off_[level][pos], end - begin,
                 useful_[level].states(pos)};
  }

  /// Heap footprint estimate, for the plan cache's byte budget.
  size_t ApproxBytes() const {
    size_t bytes = sizeof(TrimmedIndex) +
                   cand_pool_.capacity() * sizeof(CandidateEdge) +
                   nxt_pool_.capacity() * sizeof(uint32_t);
    for (const LevelSets& lvl : useful_) bytes += lvl.ApproxBytes();
    for (const auto& r : cand_ranges_)
      bytes += r.capacity() * sizeof(std::pair<uint32_t, uint32_t>);
    for (const auto& o : blist_off_) bytes += o.capacity() * sizeof(size_t);
    return bytes;
  }

  /// Candidate edges out of \p v at \p level (level < lambda). Empty for
  /// vertices with no useful states.
  std::span<const CandidateEdge> Candidates(uint32_t level,
                                            uint32_t v) const {
    AssertFresh();
    if (level >= cand_ranges_.size()) return {};
    size_t i = useful_[level].FindIndex(v);
    if (i == LevelSets::npos) return {};
    const auto& [begin, end] = cand_ranges_[level][i];
    return {cand_pool_.data() + begin, cand_pool_.data() + end};
  }

 private:
  // The sharded builder (core/sharded_annotate.cc) assembles the same
  // private structure from per-shard pieces.
  friend void ShardedTrimBuild(TrimmedIndex&, const Snapshot&,
                               const Annotation&, const AnnotateOptions&);
  // The delta-repair path (core/delta_annotate.cc) assembles a patched
  // copy of an existing index against an insert-only edge delta. It
  // reads the old index through these private members on purpose: the
  // old index is stale by then (the database has mutated), so the
  // public accessors' AssertFresh would fire even though the *contents*
  // being copied are exactly what the repair needs.
  friend class DeltaTrimmer;
  TrimmedIndex() = default;

  // The sequential backward sweep (the num_shards <= 1 path).
  // force_multi_word forwards AnnotateOptions::force_multi_word to the
  // per-vertex kernel dispatch.
  void BuildSequential(const Snapshot& snap, const Annotation& ann,
                       bool force_multi_word = false);

  uint32_t wps_ = 0;
  std::vector<LevelSets> useful_;  // per level, sorted vertices
  // Per level, parallel to useful_[level]'s vertices: the vertex's
  // [begin, end) range in cand_pool_. (Level lambda has no candidates.)
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> cand_ranges_;
  std::vector<CandidateEdge> cand_pool_;
  // B-lists, parallel to cand_ranges_: per (level, pos) the offset of
  // the vertex's block in nxt_pool_ (useful-state-major rows of
  // num_cand + 1 next-usable entries each; see BList).
  std::vector<std::vector<size_t>> blist_off_;
  std::vector<uint32_t> nxt_pool_;
  size_t num_slots_ = 0;
  // Staleness tracking for AssertFresh; unused in release builds.
  const Database* db_ = nullptr;
  uint64_t generation_ = 0;
};

namespace trim_detail {

/// Scratch reused across TrimVertex calls by one sweeping thread.
struct Scratch {
  explicit Scratch(uint32_t num_states)
      : useful_here(num_states), edge_q(num_states) {}
  StateSet useful_here;
  StateSet edge_q;
  std::vector<uint64_t> cand_src;
};

/// The per-vertex unit of the backward sweep, shared verbatim between
/// the sequential TrimmedIndex constructor and the sharded builder —
/// which is what makes the two paths bit-identical by construction.
/// Appends the candidate edges of annotated vertex \p v (state set
/// \p states) to *cand_pool, and — iff v turns out useful — its B-list
/// block to *nxt_pool; returns that usefulness, with the useful set
/// left in scratch->useful_here. CandidateEdge::next_pos is a position
/// into \p next_useful, so passing the *merged* next level keeps the
/// sharded build's positions global. Dispatches to the single-word
/// kernel when wps == 1 unless \p force_multi_word (results are
/// bit-identical either way).
bool TrimVertex(const LabelIndex& adj, const CompiledDelta& delta,
                uint32_t wps, uint32_t v, StateSetView states,
                const LevelSets& next_useful, Scratch* scratch,
                std::vector<TrimmedIndex::CandidateEdge>* cand_pool,
                std::vector<uint32_t>* nxt_pool,
                bool force_multi_word = false);

}  // namespace trim_detail

}  // namespace dsw

#endif  // DSW_CORE_TRIMMED_INDEX_H_
