// Stage 2 of the pipeline: trimming. A product pair (v, q) at level i is
// *useful* if it lies on some shortest accepting product path, i.e. its
// BFS level is i and it reaches (target, f) with f final in exactly
// lambda - i level-increasing product steps. The trimmed index keeps,
// per level:
//
//  - useful(i, v): the useful states of v at level i, and
//  - candidate edges: for each v at level i < lambda, the data edges e
//    out of v that appear in at least one answer at position i, each
//    carrying its label and the position of its destination's useful
//    set at level i + 1. The enumerator advances a reachable-state set
//    across a candidate edge by ORing the annotation's precompiled
//    delta rows and masking with that useful set — O(|A|) per edge with
//    no per-edge move storage, and no reference back to the Nfa (whose
//    lifetime it does not control; the Annotation snapshot carries the
//    delta).
//
// Construction is one backward sweep over the annotation, on the same
// label-stratified structures as the forward BFS: the CSR LabelIndex
// supplies the per-(vertex, label) edge groups, and the states with a
// surviving move across an edge are computed word-parallel as
// (union over useful q' of rev-delta[l][q']) AND annotated(v, i) — one
// OR per useful next state plus one AND, shared across parallel edges
// with the same destination, instead of nested per-transition lambda
// scans. All useful sets live in contiguous word pools (LevelSets);
// total cost and size stay O(|D| x |A|).

#ifndef DSW_CORE_TRIMMED_INDEX_H_
#define DSW_CORE_TRIMMED_INDEX_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/annotate.h"
#include "core/database.h"
#include "core/level_sets.h"
#include "util/state_set.h"

namespace dsw {

class TrimmedIndex {
 public:
  /// A data edge appearing in >= 1 answer at its level. dst and label
  /// denormalize the edge record; next_pos is the position of dst's
  /// useful set in level + 1 (see UsefulStates), resolved at build time
  /// so the enumerator's hot loop does no lookups at all.
  struct CandidateEdge {
    uint32_t edge;
    uint32_t dst;
    uint32_t label;
    uint32_t next_pos;
  };

  TrimmedIndex(const Database& db, const Annotation& ann);

  /// Number of useful (v, q, level) triples; 0 iff no answer exists.
  size_t num_slots() const { return num_slots_; }
  bool empty() const { return num_slots_ == 0; }
  uint32_t words_per_set() const { return wps_; }

  /// Useful states at (level, v); null view if none.
  StateSetView Useful(uint32_t level, uint32_t v) const {
    return level < useful_.size() ? useful_[level].Find(v) : StateSetView();
  }

  /// Useful states at a (level, position) slot — the O(1) variant for
  /// positions recorded in CandidateEdge::next_pos.
  StateSetView UsefulStates(uint32_t level, uint32_t pos) const {
    return useful_[level].states(pos);
  }

  /// Number of useful levels (lambda + 1 when an answer exists, else 0).
  uint32_t num_levels() const { return static_cast<uint32_t>(useful_.size()); }

  /// The whole useful level — sorted vertices with their state sets.
  /// ResumableIndex walks these to lay out its per-(level, vertex)
  /// candidate queues without re-running the backward sweep.
  const LevelSets& UsefulLevel(uint32_t level) const { return useful_[level]; }

  /// Candidates of the vertex at position \p pos of useful level
  /// \p level (level < lambda) — the O(1) positional variant of
  /// Candidates() for callers already iterating UsefulLevel(level).
  std::span<const CandidateEdge> CandidatesAt(uint32_t level,
                                              size_t pos) const {
    const auto& [begin, end] = cand_ranges_[level][pos];
    return {cand_pool_.data() + begin, cand_pool_.data() + end};
  }

  /// Candidate edges out of \p v at \p level (level < lambda). Empty for
  /// vertices with no useful states.
  std::span<const CandidateEdge> Candidates(uint32_t level,
                                            uint32_t v) const {
    if (level >= cand_ranges_.size()) return {};
    size_t i = useful_[level].FindIndex(v);
    if (i == LevelSets::npos) return {};
    const auto& [begin, end] = cand_ranges_[level][i];
    return {cand_pool_.data() + begin, cand_pool_.data() + end};
  }

 private:
  uint32_t wps_ = 0;
  std::vector<LevelSets> useful_;  // per level, sorted vertices
  // Per level, parallel to useful_[level]'s vertices: the vertex's
  // [begin, end) range in cand_pool_. (Level lambda has no candidates.)
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> cand_ranges_;
  std::vector<CandidateEdge> cand_pool_;
  size_t num_slots_ = 0;
};

}  // namespace dsw

#endif  // DSW_CORE_TRIMMED_INDEX_H_
