// Stage 2 of the pipeline: trimming. A product pair (v, q) at level i is
// *useful* if it lies on some shortest accepting product path, i.e. its
// BFS level is i and it reaches (target, f) with f final in exactly
// lambda - i level-increasing product steps. The trimmed index keeps,
// per level:
//
//  - useful(i, v): the useful states of v at level i, and
//  - candidate edges: for each v at level i < lambda, the data edges e
//    out of v that appear in at least one answer at position i, together
//    with their "moves" — the trimmed product transitions (q, q')
//    carried by e. Moves are what lets the enumerator advance a
//    reachable-state set across an edge in O(|A|) without touching the
//    Nfa (whose lifetime it does not control).
//
// Construction is one backward sweep over the annotation:
// O(|D| x |A|). Total size is bounded by the number of trimmed product
// transitions, again O(|D| x |A|).

#ifndef DSW_CORE_TRIMMED_INDEX_H_
#define DSW_CORE_TRIMMED_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/annotate.h"
#include "core/database.h"
#include "util/state_set.h"

namespace dsw {

class TrimmedIndex {
 public:
  struct CandidateEdge {
    uint32_t edge;
    /// Trimmed product transitions carried by this edge: q useful at the
    /// source level, q' useful at the next level, q -label(edge)-> q'.
    std::vector<std::pair<uint32_t, uint32_t>> moves;
  };

  TrimmedIndex(const Database& db, const Annotation& ann);

  /// Number of useful (v, q, level) triples; 0 iff no answer exists.
  size_t num_slots() const { return num_slots_; }
  bool empty() const { return num_slots_ == 0; }

  /// Useful states at (level, v), or nullptr if none.
  const StateSet* Useful(uint32_t level, uint32_t v) const {
    if (level >= useful_.size()) return nullptr;
    auto it = useful_[level].find(v);
    return it == useful_[level].end() ? nullptr : &it->second;
  }

  /// Candidate edges out of \p v at \p level (level < lambda). Empty for
  /// vertices with no useful states.
  const std::vector<CandidateEdge>& Candidates(uint32_t level,
                                               uint32_t v) const {
    static const std::vector<CandidateEdge> kNone;
    if (level >= candidates_.size()) return kNone;
    auto it = candidates_[level].find(v);
    return it == candidates_[level].end() ? kNone : it->second;
  }

 private:
  std::vector<std::unordered_map<uint32_t, StateSet>> useful_;
  std::vector<std::unordered_map<uint32_t, std::vector<CandidateEdge>>>
      candidates_;
  size_t num_slots_ = 0;
};

}  // namespace dsw

#endif  // DSW_CORE_TRIMMED_INDEX_H_
