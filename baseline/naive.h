// The introduction's strawman: enumerate shortest *product paths*
// (walk, run) pairs and deduplicate walks afterwards. Every extra
// accepting run of a walk is a duplicate, and nondeterministic queries
// have exponentially many runs per walk — the blow-up E7 measures.
//
// The search is restricted to level-consistent product edges (the BFS
// annotation), i.e. this is the strongest naive variant: it never
// wanders off shortest paths, and still drowns in duplicates. It reads
// the same Annotation snapshot as the trimmed pipeline (precompiled
// delta rows + epsilon-closures), branching on closure-collapsed
// *effective* steps eps* . label . eps*: distinct epsilon-paths between
// the same labeled steps count as one run, for epsilon-free and
// epsilon-NFAs alike — which keeps the oracle honest against the
// label-stratified pipeline without inheriting its trimming.

#ifndef DSW_BASELINE_NAIVE_H_
#define DSW_BASELINE_NAIVE_H_

#include <cstdint>
#include <set>
#include <vector>

#include "util/state_set.h"

#include "core/annotate.h"
#include "core/database.h"
#include "core/nfa.h"
#include "core/walk.h"

namespace dsw {

struct NaiveResult {
  std::vector<Walk> walks;        // distinct answers
  uint64_t paths_generated = 0;   // complete length-lambda product paths
  uint64_t duplicates = 0;        // accepting paths whose walk was seen
  int32_t lambda = -1;
  bool budget_exhausted = false;
};

namespace naive_detail {

struct Search {
  const Snapshot* snap;
  const Annotation* ann;
  uint32_t target;
  uint64_t max_paths;
  NaiveResult* res;
  std::set<std::vector<uint32_t>>* seen;
  std::vector<uint32_t>* prefix;
  // Per-depth scratch for the effective-step target sets: the recursion
  // iterates targets[depth] while deeper calls fill their own slot.
  std::vector<StateSet>* targets;

  void Run(uint32_t v, uint32_t q, uint32_t depth) {
    if (res->budget_exhausted) return;
    if (depth == static_cast<uint32_t>(ann->lambda)) {
      if (res->paths_generated >= max_paths) {
        res->budget_exhausted = true;
        return;
      }
      ++res->paths_generated;
      if (v != target || !ann->AcceptsAt(q)) return;
      if (seen->insert(*prefix).second)
        res->walks.push_back(Walk{*prefix});
      else
        ++res->duplicates;
      return;
    }
    for (uint32_t e : snap->OutEdges(v)) {
      const Edge& edge = snap->edge(e);
      StateSetView next = ann->StatesAt(depth + 1, edge.dst);
      if (!next) continue;
      StateSet& step = (*targets)[depth];
      step.ZeroAll();
      ann->EffectiveSuccessorsInto(q, edge.label, &step);
      step &= next;
      step.ForEach([&](uint32_t to) {
        if (res->budget_exhausted) return;
        prefix->push_back(e);
        Run(edge.dst, to, depth + 1);
        prefix->pop_back();
      });
      if (res->budget_exhausted) return;
    }
  }
};

}  // namespace naive_detail

/// Enumerates distinct shortest walks the naive way, against a frozen
/// snapshot (pure read; concurrency-safe like the trimmed pipeline).
/// \p max_paths caps the number of complete product paths generated
/// (the answer set can be exponential); NaiveResult::budget_exhausted
/// reports a truncated run.
inline NaiveResult NaiveDistinctShortestWalks(const Snapshot& snap,
                                              const Nfa& query,
                                              uint32_t source,
                                              uint32_t target,
                                              uint64_t max_paths = uint64_t{1}
                                                                   << 28) {
  NaiveResult res;
  Annotation ann = Annotate(snap, query, source, target);
  res.lambda = ann.lambda;
  if (!ann.reachable()) return res;

  std::set<std::vector<uint32_t>> seen;
  std::vector<uint32_t> prefix;
  std::vector<StateSet> targets(static_cast<size_t>(ann.lambda),
                                StateSet(ann.num_states));
  naive_detail::Search search{&snap, &ann,    target,  max_paths,
                              &res,  &seen,   &prefix, &targets};
  // One search per initial state: a run fixes its starting state.
  query.initial().ForEach([&](uint32_t q0) {
    if (StateSetView l0 = ann.StatesAt(0, source); l0 && l0.Test(q0))
      search.Run(source, q0, 0);
  });
  return res;
}

}  // namespace dsw

#endif  // DSW_BASELINE_NAIVE_H_
