// The pre-certificate enumerator, kept as a strawman baseline: it walks
// the same trimmed candidate lists in the same order as
// TrimmedEnumerator, but discovers whether a candidate is live for the
// current prefix by *trial* AdvanceStates — exactly the enumerator this
// repo shipped before the Theorem 2 certificate machinery landed.
//
// A candidate edge of (level, v) is usable from at least one useful
// state of (level, v), but can still be dead for the reachable-run set
// R of the *current* prefix; the trial filter pays one O(|R|) delta-row
// OR to find that out, per dead candidate, so an adversarial
// high-fanout vertex (many candidates, all dead for one prefix's R)
// makes the gap between two outputs grow linearly with the fanout —
// the honest-delay gap bench_delay's E3b and tests/delay_bound_test.cc
// measure. Answer sequence and order are byte-identical to
// TrimmedEnumerator's (the property the cross-oracle test pins), only
// the delay differs.

#ifndef DSW_BASELINE_TRIAL_FILTER_ENUMERATOR_H_
#define DSW_BASELINE_TRIAL_FILTER_ENUMERATOR_H_

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "core/annotate.h"
#include "core/database.h"
#include "core/enumerator.h"
#include "core/trimmed_index.h"
#include "core/walk.h"
#include "util/state_set.h"

namespace dsw {

class TrialFilterEnumerator {
 public:
  struct OpStats {
    uint64_t row_ors = 0;  // delta-row ORs, dead-candidate trials included
    uint64_t total() const { return row_ors; }
  };

  TrialFilterEnumerator(const Annotation& ann, const TrimmedIndex& index,
                        uint32_t source, uint32_t target)
      : index_(&index),
        delta_(&ann.delta),
        lambda_(ann.lambda),
        wps_(index.words_per_set()) {
    assert(source == ann.source && target == ann.target);
    (void)source;
    (void)target;
    if (!ann.reachable() || index.empty()) return;
    StateSetView r0 = index.Useful(0, ann.source);
    if (!r0 || r0.None()) return;

    stack_.resize(static_cast<size_t>(lambda_) + 1);
    for (Frame& f : stack_) f.states = StateSet(ann.num_states);
    stack_[0].vertex = ann.source;
    stack_[0].states.Assign(r0);
    depth_ = 0;
    if (lambda_ == 0) {
      valid_ = true;
      return;
    }
    stack_[0].cand = index.Candidates(0, ann.source);
    FindNext();
  }

  bool Valid() const { return valid_; }

  void Next() {
    if (!valid_) return;
    valid_ = false;
    if (depth_ == 0) return;
    --depth_;
    walk_.edges.pop_back();
    FindNext();
  }

  const Walk& walk() const { return walk_; }

  const OpStats& stats() const { return stats_; }
  void ResetStats() { stats_ = OpStats(); }

 private:
  struct Frame {
    uint32_t vertex = 0;
    StateSet states;
    size_t edge_pos = 0;
    std::span<const TrimmedIndex::CandidateEdge> cand;
  };

  void FindNext() {
    while (true) {
      Frame& f = stack_[depth_];
      bool pushed = false;
      while (f.edge_pos < f.cand.size()) {
        const TrimmedIndex::CandidateEdge& ce = f.cand[f.edge_pos++];
        Frame& next = stack_[depth_ + 1];
        // The trial: a candidate can be dead for the *current* prefix
        // (empty result) even though some other prefix takes it.
        if (!enumerator_detail::AdvanceStates(
                *delta_, wps_, f.states, ce.label,
                index_->UsefulStates(depth_ + 1, ce.next_pos), &next.states,
                &stats_.row_ors))
          continue;  // no run of the prefix fits
        next.vertex = ce.dst;
        next.edge_pos = 0;
        walk_.edges.push_back(ce.edge);
        ++depth_;
        if (static_cast<int32_t>(depth_) < lambda_)
          next.cand = index_->Candidates(depth_, next.vertex);
        pushed = true;
        break;
      }
      if (pushed) {
        if (static_cast<int32_t>(depth_) == lambda_) {
          valid_ = true;
          return;
        }
        continue;
      }
      if (depth_ == 0) return;
      --depth_;
      walk_.edges.pop_back();
    }
  }

  const TrimmedIndex* index_;
  const CompiledDelta* delta_;
  int32_t lambda_;
  uint32_t wps_ = 0;
  std::vector<Frame> stack_;
  uint32_t depth_ = 0;
  Walk walk_;
  bool valid_ = false;
  OpStats stats_;
};

}  // namespace dsw

#endif  // DSW_BASELINE_TRIAL_FILTER_ENUMERATOR_H_
