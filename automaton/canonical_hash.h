// Canonical structural form of a compiled automaton — the back half of
// the plan cache's key (regex/canonical.h is the front half). The NFA
// is serialized into a deterministic byte string (state count, sorted
// initial/final state lists, sorted+deduped labeled transitions, sorted
// +deduped epsilon transitions) and hashed with FNV-1a 64.
//
// Queries that canonicalize to the same regex AST compile — through the
// same front-end and label dictionary — to automata whose construction
// order is identical, so their serializations are byte-equal and they
// land on one cache entry. The cache stores the *bytes*, not just the
// hash: lookups compare serializations exactly, so a 64-bit hash
// collision costs one extra string compare, never a wrong plan.
//
// Sorting makes the form insensitive to transition *insertion order* as
// a robustness margin (two construction paths that emit the same
// transition set in different orders still collide); it does not try to
// decide automaton equivalence — distinct state graphs for the same
// language stay distinct, which only costs a duplicate cache entry.

#ifndef DSW_AUTOMATON_CANONICAL_HASH_H_
#define DSW_AUTOMATON_CANONICAL_HASH_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/nfa.h"

namespace dsw {

struct CanonicalAutomaton {
  std::string bytes;  // exact structural serialization; equality key
  uint64_t hash = 0;  // FNV-1a 64 of bytes; bucketing only
};

namespace canonical_hash_detail {

inline void PutU32(std::string* out, uint32_t v) {
  // Little-endian, explicitly — the bytes are an equality key within
  // one process, but a deterministic layout keeps dumps diffable.
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

inline uint64_t Fnv1a64(const std::string& bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace canonical_hash_detail

/// Serializes \p nfa's structure into a deterministic byte string and
/// hashes it. O(|A| log |A|) for the transition sort.
inline CanonicalAutomaton CanonicalizeAutomaton(const Nfa& nfa) {
  using canonical_hash_detail::PutU32;
  const uint32_t n = nfa.num_states();

  std::vector<uint32_t> initial, final_list;
  for (uint32_t q = 0; q < n; ++q) {
    if (nfa.initial().Test(q)) initial.push_back(q);
    if (nfa.IsFinal(q)) final_list.push_back(q);
  }

  std::vector<std::array<uint32_t, 3>> trans;
  trans.reserve(nfa.num_transitions());
  std::vector<std::array<uint32_t, 2>> eps;
  eps.reserve(nfa.num_epsilon_transitions());
  for (uint32_t q = 0; q < n; ++q) {
    for (const auto& [label, to] : nfa.Transitions(q))
      trans.push_back({q, label, to});
    for (uint32_t to : nfa.EpsilonSuccessors(q)) eps.push_back({q, to});
  }
  std::sort(trans.begin(), trans.end());
  trans.erase(std::unique(trans.begin(), trans.end()), trans.end());
  std::sort(eps.begin(), eps.end());
  eps.erase(std::unique(eps.begin(), eps.end()), eps.end());

  CanonicalAutomaton out;
  out.bytes.reserve(4 * (3 + initial.size() + final_list.size() +
                         3 * trans.size() + 2 * eps.size() + 2));
  PutU32(&out.bytes, n);
  PutU32(&out.bytes, static_cast<uint32_t>(initial.size()));
  for (uint32_t q : initial) PutU32(&out.bytes, q);
  PutU32(&out.bytes, static_cast<uint32_t>(final_list.size()));
  for (uint32_t q : final_list) PutU32(&out.bytes, q);
  PutU32(&out.bytes, static_cast<uint32_t>(trans.size()));
  for (const auto& t : trans)
    for (uint32_t v : t) PutU32(&out.bytes, v);
  PutU32(&out.bytes, static_cast<uint32_t>(eps.size()));
  for (const auto& e : eps)
    for (uint32_t v : e) PutU32(&out.bytes, v);
  out.hash = canonical_hash_detail::Fnv1a64(out.bytes);
  return out;
}

}  // namespace dsw

#endif  // DSW_AUTOMATON_CANONICAL_HASH_H_
