// Thompson's construction (Theorem 19): translates a regex AST into an
// epsilon-NFA with O(|R|) states and transitions in O(|R|) time. Every
// subexpression becomes a fragment with one entry and one exit state;
// composition only ever adds epsilon-transitions between fragment
// endpoints, so the automaton has exactly one initial and one final
// state and at most 2 transitions leave any state.
//
// The pipeline absorbs the epsilon-transitions during annotation
// (Section 5.1) at no extra asymptotic cost, which is why this O(|R|)
// translation is the preferred compilation route over Glushkov's
// O(|R|^2) epsilon-free one (Corollary 20).

#ifndef DSW_AUTOMATON_THOMPSON_H_
#define DSW_AUTOMATON_THOMPSON_H_

#include <cstdint>

#include "core/database.h"
#include "core/nfa.h"
#include "regex/regex_parser.h"

namespace dsw {
namespace thompson_detail {

struct Fragment {
  uint32_t start;
  uint32_t accept;
};

inline Fragment Build(const RegexNode& node, Nfa* nfa,
                      LabelDictionary* dict) {
  switch (node.kind) {
    case RegexNode::Kind::kAtom: {
      uint32_t s = nfa->AddState();
      uint32_t t = nfa->AddState();
      nfa->AddTransition(s, dict->Intern(node.label), t);
      return {s, t};
    }
    case RegexNode::Kind::kConcat: {
      Fragment f = Build(*node.children.front(), nfa, dict);
      for (size_t i = 1; i < node.children.size(); ++i) {
        Fragment g = Build(*node.children[i], nfa, dict);
        nfa->AddEpsilonTransition(f.accept, g.start);
        f.accept = g.accept;
      }
      return f;
    }
    case RegexNode::Kind::kAlternation: {
      uint32_t s = nfa->AddState();
      uint32_t t = nfa->AddState();
      for (const auto& child : node.children) {
        Fragment g = Build(*child, nfa, dict);
        nfa->AddEpsilonTransition(s, g.start);
        nfa->AddEpsilonTransition(g.accept, t);
      }
      return {s, t};
    }
    case RegexNode::Kind::kStar: {
      uint32_t s = nfa->AddState();
      uint32_t t = nfa->AddState();
      Fragment g = Build(*node.children.front(), nfa, dict);
      nfa->AddEpsilonTransition(s, g.start);
      nfa->AddEpsilonTransition(s, t);  // skip
      nfa->AddEpsilonTransition(g.accept, g.start);  // loop
      nfa->AddEpsilonTransition(g.accept, t);
      return {s, t};
    }
    case RegexNode::Kind::kPlus: {
      uint32_t s = nfa->AddState();
      uint32_t t = nfa->AddState();
      Fragment g = Build(*node.children.front(), nfa, dict);
      nfa->AddEpsilonTransition(s, g.start);
      nfa->AddEpsilonTransition(g.accept, g.start);  // loop, but no skip
      nfa->AddEpsilonTransition(g.accept, t);
      return {s, t};
    }
    case RegexNode::Kind::kOptional: {
      uint32_t s = nfa->AddState();
      uint32_t t = nfa->AddState();
      Fragment g = Build(*node.children.front(), nfa, dict);
      nfa->AddEpsilonTransition(s, g.start);
      nfa->AddEpsilonTransition(s, t);  // skip
      nfa->AddEpsilonTransition(g.accept, t);
      return {s, t};
    }
  }
  return {0, 0};  // unreachable; silences -Wreturn-type
}

}  // namespace thompson_detail

/// Compiles \p re into an epsilon-NFA, interning atom labels through
/// \p dict (idempotently, so compiling against a live Database is safe).
inline Nfa ThompsonNfa(const RegexNode& re, LabelDictionary* dict) {
  Nfa nfa;
  thompson_detail::Fragment f = thompson_detail::Build(re, &nfa, dict);
  nfa.AddInitial(f.start);
  nfa.AddFinal(f.accept);
  return nfa;
}

}  // namespace dsw

#endif  // DSW_AUTOMATON_THOMPSON_H_
