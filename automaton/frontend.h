// Per-query front-end selection: compile a regex AST through Thompson
// or Glushkov, whichever yields the cheaper automaton for the
// word-parallel pipeline — the E9 follow-up turned into a policy.
//
// E9's finding: Thompson's O(|R|) epsilon-NFA wins end-to-end at small
// m (atom count), but from m >= 32 the Glushkov pipeline edges ahead —
// epsilon-closures enlarge Thompson's per-vertex annotated sets, and
// what actually drives annotate/trim cost in this codebase is
// words_per_set = ceil(|Q| / 64): every frontier move, delta-row OR and
// trim sweep is linear in machine *words*, not states. So the heuristic
// compares the two constructions' state counts in words: Thompson is
// built first (O(|R|), exact state count for free), and we switch to
// Glushkov's m + 1 position states iff they pack into strictly fewer
// words. At m = 32 that is exactly the measured crossover: Glushkov's
// 33 states fit one word while Thompson's ~2m epsilon-machine needs
// two. Ties keep Thompson — same word cost, and its O(|R|) build is
// cheaper than Glushkov's O(|R|^2).
//
// CompileRegex canonicalizes first (regex/canonical.h), so equivalent
// queries make the same choice and produce byte-identical automata —
// which is what lets the plan cache key on the canonical automaton
// serialization (automaton/canonical_hash.h).

#ifndef DSW_AUTOMATON_FRONTEND_H_
#define DSW_AUTOMATON_FRONTEND_H_

#include <memory>
#include <utility>

#include "automaton/glushkov.h"
#include "automaton/thompson.h"
#include "core/database.h"
#include "core/nfa.h"
#include "regex/canonical.h"
#include "regex/regex_parser.h"
#include "util/state_set.h"

namespace dsw {

enum class Frontend {
  kThompson,  // O(|R|) epsilon-NFA
  kGlushkov,  // O(|R|^2) epsilon-free position NFA, |R| + 1 states
};

struct CompiledRegex {
  Nfa nfa;
  Frontend frontend = Frontend::kThompson;
  std::unique_ptr<RegexNode> canonical;  // normalized AST the nfa was built from
};

/// Canonicalizes \p ast and compiles it through the front-end the size
/// heuristic picks, interning labels through \p dict. Deterministic:
/// equivalent ASTs yield the same choice and a byte-identical automaton.
inline CompiledRegex CompileRegex(const RegexNode& ast,
                                  LabelDictionary* dict) {
  CompiledRegex out;
  out.canonical = CanonicalizeRegex(ast);
  // Thompson first: O(|R|) build, and its state count is the other half
  // of the comparison. Both constructions intern the same label set, so
  // building Thompson before deciding leaves the dictionary identical
  // either way.
  Nfa thompson = ThompsonNfa(*out.canonical, dict);
  const uint32_t glushkov_states =
      static_cast<uint32_t>(out.canonical->NumAtoms()) + 1;
  if (state_set_detail::WordsFor(glushkov_states) <
      state_set_detail::WordsFor(thompson.num_states())) {
    out.nfa = GlushkovNfa(*out.canonical, dict);
    out.frontend = Frontend::kGlushkov;
  } else {
    out.nfa = std::move(thompson);
    out.frontend = Frontend::kThompson;
  }
  return out;
}

}  // namespace dsw

#endif  // DSW_AUTOMATON_FRONTEND_H_
