// Glushkov's position construction: translates a regex AST into an
// *epsilon-free* NFA with NumAtoms(regex) + 1 states and up to
// O(|R|^2) transitions, built in O(|R|^2) time. Each atom occurrence
// (position) becomes one state; transitions follow the classic
// nullable/First/Last/Follow sets, with state 0 the sole initial state.
//
// The quadratic transition count is exactly what E9 (bench_regex)
// measures against Thompson's linear epsilon-NFA: both yield the same
// answers, but preprocessing is O(|D| x |A|), so the automaton size
// drives the end-to-end cost (Corollary 20 prefers Thompson).

#ifndef DSW_AUTOMATON_GLUSHKOV_H_
#define DSW_AUTOMATON_GLUSHKOV_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "core/nfa.h"
#include "regex/regex_parser.h"
#include "util/state_set.h"

namespace dsw {
namespace glushkov_detail {

// Positions are atom occurrences numbered 0..n-1 in left-to-right order.
// First/Last sets are position vectors (subtrees own disjoint positions,
// so unions never duplicate); Follow is a bitset per position because
// star/plus nodes merge overlapping sets.
struct Builder {
  std::vector<uint32_t> labels;   // position -> interned label id
  std::vector<StateSet> follow;   // position -> follow positions
  LabelDictionary* dict;
};

struct Info {
  bool nullable;
  std::vector<uint32_t> first;
  std::vector<uint32_t> last;
};

inline void AddFollow(Builder* b, const std::vector<uint32_t>& lasts,
                      const std::vector<uint32_t>& firsts) {
  for (uint32_t p : lasts)
    for (uint32_t q : firsts) b->follow[p].Set(q);
}

inline Info Traverse(const RegexNode& node, Builder* b) {
  switch (node.kind) {
    case RegexNode::Kind::kAtom: {
      uint32_t p = static_cast<uint32_t>(b->labels.size());
      b->labels.push_back(b->dict->Intern(node.label));
      return {false, {p}, {p}};
    }
    case RegexNode::Kind::kConcat: {
      Info acc = Traverse(*node.children.front(), b);
      for (size_t i = 1; i < node.children.size(); ++i) {
        Info next = Traverse(*node.children[i], b);
        AddFollow(b, acc.last, next.first);
        if (acc.nullable)
          acc.first.insert(acc.first.end(), next.first.begin(),
                           next.first.end());
        if (next.nullable)
          acc.last.insert(acc.last.end(), next.last.begin(),
                          next.last.end());
        else
          acc.last = std::move(next.last);
        acc.nullable = acc.nullable && next.nullable;
      }
      return acc;
    }
    case RegexNode::Kind::kAlternation: {
      Info acc{false, {}, {}};
      for (const auto& child : node.children) {
        Info next = Traverse(*child, b);
        acc.nullable = acc.nullable || next.nullable;
        acc.first.insert(acc.first.end(), next.first.begin(),
                         next.first.end());
        acc.last.insert(acc.last.end(), next.last.begin(),
                        next.last.end());
      }
      return acc;
    }
    case RegexNode::Kind::kStar: {
      Info inner = Traverse(*node.children.front(), b);
      AddFollow(b, inner.last, inner.first);
      inner.nullable = true;
      return inner;
    }
    case RegexNode::Kind::kPlus: {
      Info inner = Traverse(*node.children.front(), b);
      AddFollow(b, inner.last, inner.first);
      return inner;
    }
    case RegexNode::Kind::kOptional: {
      Info inner = Traverse(*node.children.front(), b);
      inner.nullable = true;
      return inner;
    }
  }
  return {false, {}, {}};  // unreachable; silences -Wreturn-type
}

}  // namespace glushkov_detail

/// Compiles \p re into an epsilon-free position NFA, interning atom
/// labels through \p dict. Position p occupies state p + 1; state 0 is
/// the initial state (final too iff the regex is nullable).
inline Nfa GlushkovNfa(const RegexNode& re, LabelDictionary* dict) {
  uint32_t n = static_cast<uint32_t>(re.NumAtoms());
  glushkov_detail::Builder b;
  b.labels.reserve(n);
  b.follow.assign(n, StateSet(n));
  b.dict = dict;
  glushkov_detail::Info info = glushkov_detail::Traverse(re, &b);

  Nfa nfa(n + 1);
  nfa.AddInitial(0);
  if (info.nullable) nfa.AddFinal(0);
  for (uint32_t p : info.last) nfa.AddFinal(p + 1);
  for (uint32_t p : info.first) nfa.AddTransition(0, b.labels[p], p + 1);
  for (uint32_t p = 0; p < n; ++p)
    b.follow[p].ForEach(
        [&](uint32_t q) { nfa.AddTransition(p + 1, b.labels[q], q + 1); });
  return nfa;
}

}  // namespace dsw

#endif  // DSW_AUTOMATON_GLUSHKOV_H_
