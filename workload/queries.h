// Query automata and regex families used by the experiments. Label ids
// are 0..L-1 and match the interning order of the generators ("l0",
// "l1", ...).

#ifndef DSW_WORKLOAD_QUERIES_H_
#define DSW_WORKLOAD_QUERIES_H_

#include <cstdint>
#include <string>

#include "core/nfa.h"

namespace dsw {

/// "Staircase" NFA with width + 1 states: every state loops on all L
/// labels and nondeterministically advances to the next on all L labels;
/// the last state is final. Accepts every word of length >= width and
/// gives a word of length n about C(n, width) accepting runs — the
/// duplicate factory of E7. |Delta| = L * (2 * width + 1), so sweeping
/// width at L = 2 grows |Delta| as ~4 * width (E2).
inline Nfa StaircaseNfa(uint32_t width, uint32_t num_labels) {
  Nfa nfa(width + 1);
  nfa.AddInitial(0);
  nfa.AddFinal(width);
  for (uint32_t q = 0; q <= width; ++q)
    for (uint32_t l = 0; l < num_labels; ++l) {
      nfa.AddTransition(q, l, q);
      if (q < width) nfa.AddTransition(q, l, q + 1);
    }
  return nfa;
}

/// DFA accepting exactly the words of length k (over L labels): a simple
/// chain, deterministic, one run per word. The [11, 17] "simple setting"
/// query for the fast-path experiments.
inline Nfa AnyKDfa(uint32_t k, uint32_t num_labels) {
  Nfa dfa(k + 1);
  dfa.AddInitial(0);
  dfa.AddFinal(k);
  for (uint32_t q = 0; q < k; ++q)
    for (uint32_t l = 0; l < num_labels; ++l) dfa.AddTransition(q, l, q + 1);
  return dfa;
}

/// Complete NFA: every state reaches every state on every label
/// (|Delta| = n^2 * L). State 0 is initial, state n - 1 final; accepts
/// every nonempty word when n >= 2. Maximizes per-step state sets and
/// run counts — the |A| stressor of E2b/E5.
inline Nfa CompleteNfa(uint32_t num_states, uint32_t num_labels) {
  Nfa nfa(num_states);
  nfa.AddInitial(0);
  nfa.AddFinal(num_states - 1);
  for (uint32_t from = 0; from < num_states; ++from)
    for (uint32_t to = 0; to < num_states; ++to)
      for (uint32_t l = 0; l < num_labels; ++l)
        nfa.AddTransition(from, l, to);
  return nfa;
}

/// The query half of the DeadFanout stressor (workload/generators.h):
/// accepts exactly l0 l0 l0^tail and l1 l1 l0^tail. The two branches
/// (states 1 and 2) keep both prefix edges of the data annotated at the
/// fork, but each fanout edge survives for only one branch's state —
/// the dead-candidate setup of the Theorem 2 delay experiments (E3b).
/// lambda = tail + 2; |Q| = tail + 4.
inline Nfa ForkChainNfa(uint32_t tail) {
  Nfa nfa(tail + 4);
  nfa.AddInitial(0);
  nfa.AddTransition(0, 0u, 1);  // l0 branch
  nfa.AddTransition(0, 1u, 2);  // l1 branch
  nfa.AddTransition(1, 0u, 3);  // must continue with l0
  nfa.AddTransition(2, 1u, 3);  // must continue with l1
  for (uint32_t p = 0; p < tail; ++p)
    nfa.AddTransition(3 + p, 0u, 4 + p);
  nfa.AddFinal(tail + 3);
  return nfa;
}

/// The E9 regex family (l0|...|l_{m-1})* l0 (l0|...|l_{m-1})*: words
/// over {l0..l_{m-1}} containing at least one l0. |R| = 2m + 1 atoms;
/// Thompson compiles it to O(m) transitions, Glushkov to O(m^2) — the
/// crossover family of Corollary 20. Shared by bench_regex and the
/// front-end equivalence tests so both always measure the same family.
inline std::string ContainsL0Regex(uint32_t m) {
  std::string any = "(";
  for (uint32_t i = 0; i < m; ++i) {
    if (i > 0) any += "|";
    any += "l";
    any += std::to_string(i);
  }
  any += ")*";
  return any + " l0 " + any;
}

}  // namespace dsw

#endif  // DSW_WORKLOAD_QUERIES_H_
