// The paper's worked example: a five-vertex database and a two-state
// nondeterministic query with exactly four distinct shortest answers,
// small enough to trace the whole pipeline by hand.
//
// Vertices: alix, mid1, mid2, carl, bob. Labels: a, b.
//
//        a,b         a,b
//   alix ====> mid1 ====> bob          (parallel a- and b-edges)
//   alix --a-> mid2 --b-> bob
//   alix --b-> carl --b-> mid2         (dead end: too long, trimmed)
//
// Query: (a|b)* b (a|b)* — "the word contains at least one b". The NFA
// has states q0 (initial, loops on a and b, steps to q1 on b) and q1
// (final, loops on a and b); a word with k b's has k accepting runs.
//
// lambda = 2 and the four answers are
//   alix --a-> mid1 --b-> bob
//   alix --b-> mid1 --a-> bob
//   alix --b-> mid1 --b-> bob          (word "bb": two runs, one walk)
//   alix --a-> mid2 --b-> bob
// The walk through carl reaches mid2 only at level 2 > lambda - 1, so
// trimming removes carl — the pruning the TrimmedIndex exists for. The
// "bb" answer is the distinctness trap: product-path enumeration emits
// it once per run.

#ifndef DSW_WORKLOAD_FIGURE1_H_
#define DSW_WORKLOAD_FIGURE1_H_

#include <cstdint>

#include "core/database.h"
#include "core/nfa.h"

namespace dsw {

struct Figure1 {
  Database db;
  Nfa query;
  uint32_t alix = 0;
  uint32_t mid1 = 0;
  uint32_t mid2 = 0;
  uint32_t carl = 0;
  uint32_t bob = 0;
  static constexpr uint32_t kNumAnswers = 4;
  static constexpr uint32_t kLambda = 2;
};

inline Figure1 MakeFigure1() {
  Figure1 fig;
  fig.alix = fig.db.AddVertex();
  fig.mid1 = fig.db.AddVertex();
  fig.mid2 = fig.db.AddVertex();
  fig.carl = fig.db.AddVertex();
  fig.bob = fig.db.AddVertex();

  fig.db.AddEdge(fig.alix, "a", fig.mid1);
  fig.db.AddEdge(fig.alix, "b", fig.mid1);
  fig.db.AddEdge(fig.mid1, "a", fig.bob);
  fig.db.AddEdge(fig.mid1, "b", fig.bob);
  fig.db.AddEdge(fig.alix, "a", fig.mid2);
  fig.db.AddEdge(fig.mid2, "b", fig.bob);
  fig.db.AddEdge(fig.alix, "b", fig.carl);
  fig.db.AddEdge(fig.carl, "b", fig.mid2);

  uint32_t a = fig.db.labels().Find("a");
  uint32_t b = fig.db.labels().Find("b");
  Nfa nfa(2);
  nfa.AddInitial(0);
  nfa.AddFinal(1);
  nfa.AddTransition(0, a, 0);
  nfa.AddTransition(0, b, 0);
  nfa.AddTransition(0, b, 1);
  nfa.AddTransition(1, a, 1);
  nfa.AddTransition(1, b, 1);
  fig.query = std::move(nfa);
  return fig;
}

}  // namespace dsw

#endif  // DSW_WORKLOAD_FIGURE1_H_
