// Synthetic database families behind the experiments E1-E7. Each
// generator returns an Instance{db, source, target}; all randomness is
// mt19937_64-seeded and fully reproducible.

#ifndef DSW_WORKLOAD_GENERATORS_H_
#define DSW_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <random>
#include <string>

#include "core/database.h"

namespace dsw {

struct Instance {
  Database db;
  uint32_t source = 0;
  uint32_t target = 0;
};

namespace workload_detail {

inline void InternLabels(Database* db, uint32_t num_labels) {
  for (uint32_t l = 0; l < num_labels; ++l) {
    std::string name("l");
    name += std::to_string(l);
    db->labels().Intern(name);
  }
}

}  // namespace workload_detail

/// rows x cols grid, single label, edges rightward and downward; source
/// top-left, target bottom-right. With a length-accepting query, lambda
/// = rows + cols - 2 and the answers are the C(rows+cols-2, rows-1)
/// monotone lattice paths (E6).
inline Instance Grid(uint32_t rows, uint32_t cols) {
  Instance inst;
  workload_detail::InternLabels(&inst.db, 1);
  inst.db.AddVertices(rows * cols);
  auto id = [cols](uint32_t r, uint32_t c) { return r * cols + c; };
  for (uint32_t r = 0; r < rows; ++r)
    for (uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) inst.db.AddEdge(id(r, c), 0u, id(r, c + 1));
      if (r + 1 < rows) inst.db.AddEdge(id(r, c), 0u, id(r + 1, c));
    }
  inst.source = id(0, 0);
  inst.target = id(rows - 1, cols - 1);
  return inst;
}

/// Chain of k two-path "bubbles": hub_i splits into a top and a bottom
/// branch that rejoin at hub_{i+1}. 2^k answers, lambda = 2k. With
/// num_labels >= 2 the top branch is labeled l0 and the bottom l1, so
/// answer words range over all k-bit choices (E3/E7).
inline Instance BubbleChain(uint32_t k, uint32_t num_labels) {
  Instance inst;
  workload_detail::InternLabels(&inst.db, num_labels);
  uint32_t top_label = 0;
  uint32_t bot_label = num_labels > 1 ? 1 : 0;
  uint32_t hub = inst.db.AddVertex();
  inst.source = hub;
  for (uint32_t i = 0; i < k; ++i) {
    uint32_t top = inst.db.AddVertex();
    uint32_t bot = inst.db.AddVertex();
    uint32_t next = inst.db.AddVertex();
    inst.db.AddEdge(hub, top_label, top);
    inst.db.AddEdge(top, top_label, next);
    inst.db.AddEdge(hub, bot_label, bot);
    inst.db.AddEdge(bot, bot_label, next);
    hub = next;
  }
  inst.target = hub;
  return inst;
}

/// d disjoint chains of length `depth` from source to target: d answers,
/// lambda = depth, and the target's in-degree is exactly d — the reseek
/// stressor of E8. Labels cycle over the alphabet along each chain.
inline Instance StarOfChains(uint32_t d, uint32_t depth,
                             uint32_t num_labels) {
  Instance inst;
  workload_detail::InternLabels(&inst.db, num_labels);
  inst.source = inst.db.AddVertex();
  inst.target = inst.db.AddVertex();
  for (uint32_t j = 0; j < d; ++j) {
    uint32_t prev = inst.source;
    for (uint32_t p = 1; p < depth; ++p) {
      uint32_t v = inst.db.AddVertex();
      inst.db.AddEdge(prev, (j + p - 1) % num_labels, v);
      prev = v;
    }
    inst.db.AddEdge(prev, (j + depth - 1) % num_labels, inst.target);
  }
  return inst;
}

struct LayeredGraphParams {
  uint32_t layers = 8;
  uint32_t width = 16;
  uint32_t edges_per_vertex = 4;
  uint32_t num_labels = 2;      // labels the staircase queries accept
  uint32_t extra_labels = 0;    // selective labels outside the query
  double multi_label_p = 0.0;   // P(edge gets a parallel extra-label twin)
  uint64_t seed = 1;
};

/// source -> layer_0 -> ... -> layer_{layers-1} -> target with random
/// inter-layer edges. Every vertex keeps at least one forward edge and
/// the extra-label twins never remove base-label connectivity, so an
/// accepting walk always exists and lambda = layers + 1. |E| scales with
/// width x edges_per_vertex (the E1 sweep).
inline Instance LayeredGraph(const LayeredGraphParams& params) {
  Instance inst;
  uint32_t total_labels = params.num_labels + params.extra_labels;
  workload_detail::InternLabels(&inst.db, total_labels);
  std::mt19937_64 rng(params.seed);
  auto base_label = [&] {
    return static_cast<uint32_t>(rng() % params.num_labels);
  };

  inst.source = inst.db.AddVertex();
  uint32_t first_layer = inst.db.AddVertices(params.layers * params.width);
  inst.target = inst.db.AddVertex();
  auto vertex = [&](uint32_t layer, uint32_t i) {
    return first_layer + layer * params.width + i;
  };

  auto add_edge = [&](uint32_t src, uint32_t dst) {
    inst.db.AddEdge(src, base_label(), dst);
    if (params.extra_labels > 0 &&
        std::uniform_real_distribution<double>(0.0, 1.0)(rng) <
            params.multi_label_p) {
      uint32_t extra = params.num_labels +
                       static_cast<uint32_t>(rng() % params.extra_labels);
      inst.db.AddEdge(src, extra, dst);
    }
  };

  for (uint32_t i = 0; i < params.width; ++i)
    add_edge(inst.source, vertex(0, i));
  for (uint32_t layer = 0; layer + 1 < params.layers; ++layer)
    for (uint32_t i = 0; i < params.width; ++i) {
      add_edge(vertex(layer, i), vertex(layer + 1, i));  // connectivity
      for (uint32_t e = 1; e < params.edges_per_vertex; ++e)
        add_edge(vertex(layer, i),
                 vertex(layer + 1, static_cast<uint32_t>(rng() %
                                                         params.width)));
    }
  for (uint32_t i = 0; i < params.width; ++i)
    add_edge(vertex(params.layers - 1, i), inst.target);
  return inst;
}

/// Dead-candidate stressor for the Theorem 2 certificate machinery
/// (pairs with ForkChainNfa(tail) from workload/queries.h). Two prefix
/// branches leave the source for the same fork vertex v — edge 0 labeled
/// l0, edge 1 labeled l1 — and v fans out into one l0-edge plus \p d
/// parallel l1-edges, all into the same successor, followed by an
/// l0-chain of length \p tail to the target. Under ForkChainNfa the l0
/// prefix must continue with l0 and the l1 prefix with l1, so every
/// l1-edge out of v is a *candidate* (the l1 prefix uses it) but *dead*
/// for the l0 prefix's reachable-run set: an enumerator that trial-
/// filters candidates scans all d dead edges between the l0-branch
/// answer and the first l1-branch answer, while the certificate
/// machinery skips them outright. lambda = tail + 2; answers = d + 1.
inline Instance DeadFanout(uint32_t d, uint32_t tail) {
  Instance inst;
  workload_detail::InternLabels(&inst.db, 2);
  inst.source = inst.db.AddVertex();
  uint32_t fork = inst.db.AddVertex();
  uint32_t join = inst.db.AddVertex();
  inst.db.AddEdge(inst.source, 0u, fork);  // edge 0: the l0 prefix
  inst.db.AddEdge(inst.source, 1u, fork);  // edge 1: the l1 prefix
  inst.db.AddEdge(fork, 0u, join);         // live for the l0 prefix only
  for (uint32_t j = 0; j < d; ++j)
    inst.db.AddEdge(fork, 1u, join);  // live for the l1 prefix only
  uint32_t prev = join;
  for (uint32_t p = 0; p < tail; ++p) {
    uint32_t v = inst.db.AddVertex();
    inst.db.AddEdge(prev, 0u, v);
    prev = v;
  }
  inst.target = prev;
  return inst;
}

/// Copies \p core and grafts a noise subgraph onto its source: the noise
/// is reachable (so annotation must wade through it) but never reaches
/// the target (so the answer set, lambda, and the trimmed structure are
/// unchanged) — exactly the |D|-independence setup of E3.
inline Instance EmbedInNoise(const Instance& core, uint32_t noise_vertices,
                             uint32_t noise_edges, uint64_t seed) {
  Instance inst = core;
  if (noise_vertices == 0) return inst;
  std::mt19937_64 rng(seed);
  uint32_t first = inst.db.AddVertices(noise_vertices);
  auto noise_vertex = [&] {
    return first + static_cast<uint32_t>(rng() % noise_vertices);
  };
  uint32_t num_labels = inst.db.labels().size();
  uint32_t entry_edges = noise_vertices < 8 ? noise_vertices : 8;
  for (uint32_t i = 0; i < entry_edges; ++i)
    inst.db.AddEdge(inst.source, static_cast<uint32_t>(rng() % num_labels),
                    noise_vertex());
  for (uint32_t i = entry_edges; i < noise_edges; ++i)
    inst.db.AddEdge(noise_vertex(),
                    static_cast<uint32_t>(rng() % num_labels),
                    noise_vertex());
  return inst;
}

}  // namespace dsw

#endif  // DSW_WORKLOAD_GENERATORS_H_
